//! Out-of-core equivalence: random join/group-by/sort pipelines over
//! nullable int/float/dict tables must produce byte-identical results
//! whether they run fully in memory or spill under a budget of roughly
//! 10% of the input size.
//!
//! Every op's state estimate is at least the byte size of a table it
//! holds transient (the join adds 16 bytes per probe row on top), so a
//! 10% budget guarantees each pipeline step takes the spill path —
//! asserted via `bytes_spilled > 0` — while the hidden row-id machinery
//! in `ops::spill` restores the exact in-memory row order.
//!
//! Tables stay well under the 32k-row morsel threshold so a default
//! (parallel) build and a `--no-default-features` (serial) build take
//! the same kernel fold paths; the property must hold bit-for-bit on
//! either scheduler, float aggregates included.

use datachat::engine::ops::{
    group_by_with_mem, join_with_mem, sort_by_with_mem, AggFunc, AggSpec, JoinType, SortKey,
};
use datachat::engine::{Column, MemContext, Table};
use proptest::prelude::*;

/// Cheap deterministic stream so a case is fully described by its seed
/// (proptest shrinks the seed, not 3000-element vectors).
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Fact side: nullable int key, nullable float value, nullable
/// dictionary-encoded category, and a unique row id for sort ties.
fn fact(n: usize, seed: u64) -> Table {
    let mut r = xorshift(seed);
    let ks: Vec<Option<i64>> = (0..n)
        .map(|_| {
            let x = r();
            (x % 13 != 0).then_some((x % 37) as i64)
        })
        .collect();
    let vs: Vec<Option<f64>> = (0..n)
        .map(|_| {
            let x = r();
            (x % 11 != 0).then_some((x % 1000) as f64 * 0.5 - 100.0)
        })
        .collect();
    let cs: Vec<Option<String>> = (0..n)
        .map(|_| {
            let x = r();
            (x % 7 != 0).then_some(format!("c{}", x % 11))
        })
        .collect();
    Table::new(vec![
        ("k", Column::from_opt_ints(ks)),
        ("v", Column::from_opt_floats(vs)),
        ("c", Column::from_opt_strs(cs)),
        ("id", Column::from_ints((0..n as i64).collect())),
    ])
    .expect("fact builds")
    .encode_strings()
}

/// Dimension side: the same nullable key domain plus one payload column.
fn dim(m: usize, seed: u64, payload: &str) -> Table {
    let mut r = xorshift(seed);
    let ks: Vec<Option<i64>> = (0..m)
        .map(|_| {
            let x = r();
            (x % 17 != 0).then_some((x % 37) as i64)
        })
        .collect();
    let ws: Vec<f64> = (0..m).map(|_| (r() % 500) as f64 * 0.25).collect();
    Table::new(vec![
        ("k", Column::from_opt_ints(ks)),
        (payload, Column::from_floats(ws)),
    ])
    .expect("dim builds")
}

/// One of nine pipeline shapes over the governed entry points. Shapes
/// with a group-by place it after any joins (its output schema drops the
/// value columns the other ops need), and sorts pick keys that exist at
/// that point in the pipeline.
fn run_pipeline(
    shape: u8,
    how: JoinType,
    t: &Table,
    d1: &Table,
    d2: &Table,
    mem: Option<&MemContext>,
) -> Table {
    let join = |cur: &Table, d: &Table| {
        join_with_mem(cur, d, &["k"], &["k"], how, mem).expect("pipeline join")
    };
    let group = |cur: &Table| {
        let aggs = [
            AggSpec::new(AggFunc::Sum, "v", "s"),
            AggSpec::new(AggFunc::Min, "v", "mn"),
            AggSpec::count_records("n"),
        ];
        group_by_with_mem(cur, &["k", "c"], &aggs, mem).expect("pipeline group-by")
    };
    let sort = |cur: &Table| {
        let keys = [SortKey::desc("v"), SortKey::asc("id")];
        sort_by_with_mem(cur, &keys, mem).expect("pipeline sort")
    };
    let sort_grouped = |cur: &Table| {
        let keys = [SortKey::asc("s"), SortKey::desc("n"), SortKey::asc("k")];
        sort_by_with_mem(cur, &keys, mem).expect("pipeline grouped sort")
    };
    match shape {
        0 => sort(t),
        1 => join(t, d1),
        2 => group(t),
        3 => sort(&join(t, d1)),
        4 => group(&join(t, d1)),
        5 => join(&sort(t), d1),
        6 => join(&join(t, d1), d2),
        7 => sort_grouped(&group(&join(t, d1))),
        _ => sort_grouped(&group(t)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Unlimited vs ~10%-budget runs of the same random pipeline are
    /// identical, the constrained run provably spills, and no spill
    /// files survive the ops.
    #[test]
    fn spilled_pipelines_match_in_memory(
        n in 600usize..3000,
        m in 40usize..300,
        seed in 0u64..1_000_000,
        shape in 0u8..9,
        how_sel in 0u8..4,
    ) {
        let how = [JoinType::Inner, JoinType::Left, JoinType::Right, JoinType::Full]
            [how_sel as usize];
        let t = fact(n, seed);
        let d1 = dim(m, seed ^ 0x9e37_79b9, "w1");
        let d2 = dim(m / 2 + 1, seed ^ 0x51ab_3c44, "w2");

        let expect = run_pipeline(shape, how, &t, &d1, &d2, None);
        let budget = (t.byte_size() as u64 / 10).max(1);
        let ctx = MemContext::with_budget(budget).expect("spill context builds");
        let got = run_pipeline(shape, how, &t, &d1, &d2, Some(&ctx));
        prop_assert_eq!(got, expect, "shape {} under a {}-byte budget diverged", shape, budget);

        let snap = ctx.metrics.snapshot();
        prop_assert!(snap.bytes_spilled > 0, "pipeline never spilled under a 10% budget");
        prop_assert!(snap.spill_partitions > 0);
        let leaked = std::fs::read_dir(&ctx.spill_root).map(|rd| rd.count()).unwrap_or(0);
        prop_assert_eq!(leaked, 0, "spill files leaked");
    }
}
