//! Golden-file diagnostics tests for the static analyzer.
//!
//! Each `tests/golden/*.gel` file is a recipe annotated with the exact
//! diagnostics the analyzer must produce, one `-- expect:` comment per
//! finding:
//!
//! ```text
//! -- expect: DC0002 @ step 2      (code anchored to a 1-based recipe step)
//! -- expect: DC0401 @ line 3      (code anchored to a 1-based source line)
//! -- expect: DC0101               (code with no span constraint)
//! ```
//!
//! A file with no `-- expect:` lines asserts the recipe analyzes clean.
//! The harness requires the *multiset* of emitted codes to equal the
//! expected one — extra or missing findings both fail — and every
//! anchored expectation to match at least one finding at that span.

//! Two per-file directives configure the estimation pass (PR 8), so only
//! scenarios that opt in can trigger the DC03xx family:
//!
//! ```text
//! -- budget: 1000            (tenant's remaining byte budget)
//! -- cache_capacity: 2000    (shared materialized-cache capacity)
//! ```

use std::fs;
use std::path::PathBuf;

use datachat::analyze::{AnalysisContext, TableStats};
use datachat::engine::{DataType, Field, Schema};
use datachat::storage::BlockTable;

fn schema(fields: &[(&str, DataType)]) -> Schema {
    Schema::new(
        fields
            .iter()
            .map(|(n, t)| Field::new(*n, *t))
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

/// A real blocked table whose stats feed the estimation pass: the other
/// context tables are stats-only literals (no block detail, so the
/// estimator degrades conservatively on them), while these let goldens
/// exercise tight, zone-map-priced bounds.
fn block_backed(csv: &str, block_rows: usize) -> (Schema, TableStats) {
    let t = datachat::engine::csv::read_csv(csv)
        .expect("golden csv parses")
        .encode_strings();
    let bt = BlockTable::new(&t, block_rows).expect("blocked table builds");
    (bt.schema().clone(), TableStats::from_block_table(&bt))
}

/// `history`: `day` rises monotonically (i / 10 over 1000 rows, 100-row
/// blocks), so zone maps genuinely prune day-range filters.
fn history_table() -> (Schema, TableStats) {
    let mut csv = String::from("day,label\n");
    for i in 0..1000 {
        csv.push_str(&format!("{},r{}\n", i / 10, i % 3));
    }
    block_backed(&csv, 100)
}

/// `wide_metrics`: seven numeric columns over 2500 rows. Recipes that
/// read only a couple of them leave well over DC0206's 32 KB dead-byte
/// floor in columns the scan pays for and nothing reads.
fn wide_metrics_table() -> (Schema, TableStats) {
    let mut csv = String::from("day,m1,m2,m3,m4,m5,m6\n");
    for i in 0..2500 {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            i / 50,
            i % 97,
            i % 89,
            i % 83,
            i % 79,
            i % 73,
            i % 71
        ));
    }
    block_backed(&csv, 250)
}

/// A star for the join-order lint: `fact` (40 rows) joins `dim_fan`
/// (40 rows, 10 distinct keys → ×31 intermediate-row bound) and
/// `dim_uniq` (provably unique int key → ×1). Written fan-first, the
/// chain's intermediate bound is 31× the unique-first order's.
fn star_tables() -> Vec<(&'static str, (Schema, TableStats))> {
    let mut fact = String::from("gk,uk,val\n");
    let mut fan = String::from("k,fan_rate\n");
    let mut uniq = String::from("k,u_val\n");
    for i in 0..40 {
        fact.push_str(&format!("g{},{},{}\n", i % 10, i, i % 7));
        fan.push_str(&format!("g{},{}\n", i % 10, i));
        uniq.push_str(&format!("{},{}\n", i, i * 2));
    }
    vec![
        ("fact", block_backed(&fact, 8)),
        ("dim_fan", block_backed(&fan, 8)),
        ("dim_uniq", block_backed(&uniq, 8)),
    ]
}

/// A table whose `k` column provably holds one constant — the degenerate
/// join key that turns a join into a cross product.
fn constant_key_table(value_col: &str) -> (Schema, TableStats) {
    let mut csv = format!("k,{value_col}\n");
    for i in 0..40 {
        csv.push_str(&format!("7,{i}\n"));
    }
    block_backed(&csv, 8)
}

/// The world every golden scenario is analyzed against.
fn golden_context() -> AnalysisContext {
    let sales = schema(&[
        ("order_id", DataType::Int),
        ("order_date", DataType::Date),
        ("region", DataType::Str),
        ("product", DataType::Str),
        ("price", DataType::Float),
        ("discount", DataType::Float),
        ("quantity", DataType::Int),
        ("PurchaseStatus", DataType::Str),
    ]);
    let events = schema(&[
        ("event_id", DataType::Int),
        ("region", DataType::Str),
        ("ts", DataType::Date),
    ]);
    let big_log = schema(&[("line", DataType::Str)]);
    let mut ctx = AnalysisContext::new();
    ctx.add_table(
        "MainDatabase",
        "sales",
        sales.clone(),
        TableStats {
            rows: 1000,
            blocks: 4,
            bytes: 65_536,
            ..TableStats::default()
        },
    )
    .add_table(
        "MainDatabase",
        "events",
        events,
        TableStats {
            rows: 100,
            blocks: 1,
            bytes: 4_096,
            ..TableStats::default()
        },
    )
    .add_table(
        "MainDatabase",
        "big_log",
        big_log.clone(),
        TableStats {
            rows: 100_000,
            blocks: 16,
            bytes: 1_048_576,
            ..TableStats::default()
        },
    )
    // session_id is one-distinct-value-per-row: its dictionary is ~99% of
    // the row count, which is what DC0203 flags. url dedups fine.
    .add_table(
        "MainDatabase",
        "clickstream",
        schema(&[("session_id", DataType::Str), ("url", DataType::Str)]),
        TableStats {
            rows: 50_000,
            blocks: 8,
            bytes: 2_097_152,
            dict_sizes: vec![("session_id".to_string(), 49_500), ("url".to_string(), 120)],
            ..TableStats::default()
        },
    )
    // A snapshot shadowing big_log: scanning the table triggers DC0202.
    .add_snapshot("big_log", big_log)
    .add_snapshot(
        "archived",
        schema(&[("region", DataType::Str), ("total", DataType::Int)]),
    )
    .add_saved("sales_backup", sales)
    .add_saved(
        "other3col",
        schema(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
        ]),
    )
    .add_model(
        "pricer",
        "price",
        vec!["quantity".into(), "discount".into()],
        DataType::Float,
    )
    .add_file(
        "nums.csv",
        schema(&[("x", DataType::Int), ("y", DataType::Int)]),
    );
    let (history_schema, history_stats) = history_table();
    ctx.add_table("MainDatabase", "history", history_schema, history_stats);
    let (pairs_schema, pairs_stats) = constant_key_table("v");
    ctx.add_table("MainDatabase", "pairs", pairs_schema, pairs_stats);
    let (pairs2_schema, pairs2_stats) = constant_key_table("w");
    ctx.add_table("MainDatabase", "pairs2", pairs2_schema, pairs2_stats);
    let (wide_schema, wide_stats) = wide_metrics_table();
    ctx.add_table("MainDatabase", "wide_metrics", wide_schema, wide_stats);
    for (name, (schema, stats)) in star_tables() {
        ctx.add_table("MainDatabase", name, schema, stats);
    }
    ctx
}

/// Per-file estimation knobs (`-- budget:`, `-- cache_capacity:`,
/// `-- mem_budget:`).
fn parse_knobs(text: &str) -> (Option<u64>, Option<u64>, Option<u64>) {
    let mut budget = None;
    let mut capacity = None;
    let mut mem_budget = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("-- budget:") {
            budget = Some(v.trim().parse().expect("budget parses"));
        } else if let Some(v) = line.strip_prefix("-- cache_capacity:") {
            capacity = Some(v.trim().parse().expect("cache_capacity parses"));
        } else if let Some(v) = line.strip_prefix("-- mem_budget:") {
            mem_budget = Some(v.trim().parse().expect("mem_budget parses"));
        }
    }
    (budget, capacity, mem_budget)
}

/// One `-- expect:` annotation.
struct Expect {
    code: String,
    /// `Some((true, n))` = step n; `Some((false, n))` = line n.
    anchor: Option<(bool, usize)>,
}

fn parse_expects(text: &str) -> Vec<Expect> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("-- expect:") else {
            continue;
        };
        let rest = rest.trim();
        let (code, anchor) = match rest.split_once('@') {
            None => (rest.to_string(), None),
            Some((code, at)) => {
                let mut words = at.split_whitespace();
                let kind = words.next().expect("anchor kind");
                let n: usize = words
                    .next()
                    .expect("anchor number")
                    .parse()
                    .expect("anchor number parses");
                let is_step = match kind {
                    "step" => true,
                    "line" => false,
                    other => panic!("unknown anchor kind {other:?}"),
                };
                (code.trim().to_string(), Some((is_step, n)))
            }
        };
        out.push(Expect { code, anchor });
    }
    out
}

#[test]
fn golden_corpus_matches_expected_diagnostics() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let ctx = golden_context();
    let mut names: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/golden exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("gel"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 15,
        "golden corpus has only {} scenarios",
        names.len()
    );
    for path in names {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = fs::read_to_string(&path).unwrap();
        let expects = parse_expects(&text);
        let (budget, capacity, mem_budget) = parse_knobs(&text);
        let mut ctx = ctx.clone();
        if let Some(b) = budget {
            ctx.set_remaining_budget(b);
        }
        if let Some(c) = capacity {
            ctx.set_cache_capacity(c);
        }
        if let Some(m) = mem_budget {
            ctx.set_mem_budget(m);
        }
        let analysis = datachat::gel::analyze_gel(&text, &ctx);

        let mut actual: Vec<&str> = analysis
            .diagnostics
            .iter()
            .map(|d| d.code.as_str())
            .collect();
        let mut wanted: Vec<&str> = expects.iter().map(|e| e.code.as_str()).collect();
        actual.sort_unstable();
        wanted.sort_unstable();
        assert_eq!(
            actual,
            wanted,
            "{name}: diagnostic codes mismatch; analyzer said:\n{}",
            analysis.render()
        );

        for e in &expects {
            let Some((is_step, n)) = e.anchor else {
                continue;
            };
            let hit = analysis.diagnostics.iter().any(|d| {
                d.code.as_str() == e.code
                    && if is_step {
                        d.span.step == Some(n)
                    } else {
                        d.span.line == Some(n)
                    }
            });
            assert!(
                hit,
                "{name}: no {} anchored at {} {n}; analyzer said:\n{}",
                e.code,
                if is_step { "step" } else { "line" },
                analysis.render()
            );
        }
    }
}
