//! Property test for the estimation pass's soundness contract (PR 8).
//!
//! Random blocked tables (nullable ints, floats with NaN, dictionary
//! strings, including zero-row tables) are loaded through random
//! predicate/join shapes, and the executed result is checked against the
//! static estimate:
//!
//! - `bytes_lo <= actual scanned bytes <= bytes_hi` on a cold cache, for
//!   both the wave scheduler (`Executor::run`) and the resilient
//!   scheduler (`Executor::run_resilient`);
//! - `rows_lo <= actual output rows`, and `rows_hi >= actual output
//!   rows` whenever the estimator claims an upper bound at all.
//!
//! Executions that fail (e.g. type-confused predicates the analyzer
//! flags separately) are out of scope: soundness is a statement about
//! runs that produce an answer.

use proptest::prelude::*;

use datachat::analyze::{analyze_dag, AnalysisContext};
use datachat::engine::{Column, Expr, JoinType, Table};
use datachat::skills::{plan_pushdown, Env, ExecPolicy, Executor, NodeId, SkillCall, SkillDag};

/// One generated column value set plus the table it assembles into.
#[derive(Debug, Clone)]
struct GenTable {
    days: Vec<Option<i64>>,
    scores: Vec<Option<f64>>,
    labels: Vec<String>,
    block_rows: usize,
}

impl GenTable {
    fn to_table(&self) -> Table {
        Table::new(vec![
            ("day", Column::from_opt_ints(self.days.clone())),
            ("score", Column::from_opt_floats(self.scores.clone())),
            (
                "label",
                Column::from_strs(self.labels.iter().map(|s| s.as_str()).collect::<Vec<_>>())
                    .dict_encode(),
            ),
        ])
        .expect("generated columns are same-length")
    }
}

fn gen_table(max_rows: usize) -> impl Strategy<Value = GenTable> {
    // The vendored proptest's `prop_oneof!` is unweighted; repeated arms
    // stand in for weights. Columns are generated at `max_rows` length
    // and truncated to a random row count so all three stay aligned
    // (the stand-in has no `prop_flat_map`).
    let day = prop_oneof![
        (-5i64..60).prop_map(Some),
        (-5i64..60).prop_map(Some),
        (-5i64..60).prop_map(Some),
        Just(None),
    ];
    let score = prop_oneof![
        (-2.0f64..100.0).prop_map(Some),
        (-2.0f64..100.0).prop_map(Some),
        (-2.0f64..100.0).prop_map(Some),
        (-2.0f64..100.0).prop_map(Some),
        Just(Some(f64::NAN)),
        Just(None),
    ];
    let label = prop_oneof![
        Just("r0".to_string()),
        Just("r1".to_string()),
        Just("r2".to_string()),
        Just("zzz".to_string()),
    ];
    (
        0..=max_rows,
        1usize..8,
        prop::collection::vec(day, max_rows..max_rows + 1),
        prop::collection::vec(score, max_rows..max_rows + 1),
        prop::collection::vec(label, max_rows..max_rows + 1),
    )
        .prop_map(|(rows, block_rows, mut days, mut scores, mut labels)| {
            days.truncate(rows);
            scores.truncate(rows);
            labels.truncate(rows);
            GenTable {
                days,
                scores,
                labels,
                block_rows,
            }
        })
}

/// A comparison leaf over a real column (or a column the table does not
/// have — the scan ignores such predicates wholesale and the estimator
/// must mirror that).
fn leaf() -> impl Strategy<Value = Expr> {
    let int_lit = -10i64..70;
    let float_lit = -5.0f64..110.0;
    let pair = prop_oneof![
        (Just("day"), int_lit.clone()).prop_map(|(c, v)| (c, Expr::lit(v))),
        (Just("score"), float_lit).prop_map(|(c, v)| (c, Expr::lit(v))),
        prop_oneof![Just("r0"), Just("r1"), Just("zzz"), Just("nope")]
            .prop_map(|v| ("label", Expr::lit(v))),
        (Just("ghost"), int_lit).prop_map(|(c, v)| (c, Expr::lit(v))),
    ];
    (pair, 0u8..5, 0u8..2).prop_map(|((col, lit), op, negate)| {
        let col = Expr::col(col);
        let e = match op {
            0 => col.eq(lit),
            1 => col.lt(lit),
            2 => col.le(lit),
            3 => col.gt(lit),
            _ => col.ge(lit),
        };
        if negate == 1 {
            e.not()
        } else {
            e
        }
    })
}

fn predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        leaf(),
        leaf(),
        leaf(),
        (leaf(), leaf(), 0u8..2).prop_map(|(a, b, conj)| {
            if conj == 1 {
                a.and(b)
            } else {
                a.or(b)
            }
        }),
        (leaf(), leaf(), 0u8..2).prop_map(|(a, b, conj)| {
            if conj == 1 {
                a.and(b)
            } else {
                a.or(b)
            }
        }),
    ]
}

/// The DAG shapes under test: bare load, filtered load (both polarities,
/// so pushdown rewrites fire), and an equi-join of two distinct tables.
#[derive(Debug, Clone)]
enum Shape {
    Plain,
    Keep(Expr),
    Drop(Expr),
    Join,
}

fn shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Plain),
        predicate().prop_map(Shape::Keep),
        predicate().prop_map(Shape::Keep),
        predicate().prop_map(Shape::Keep),
        predicate().prop_map(Shape::Drop),
        predicate().prop_map(Shape::Drop),
        Just(Shape::Join),
    ]
}

fn build_env(t: &GenTable, t2: &GenTable) -> Env {
    let mut env = Env::new();
    let mut db =
        datachat::storage::CloudDatabase::new("Main", datachat::storage::Pricing::default_cloud());
    db.create_table_with_blocks("t", &t.to_table(), t.block_rows)
        .unwrap();
    db.create_table_with_blocks("t2", &t2.to_table(), t2.block_rows)
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

fn build_dag(shape: &Shape) -> (SkillDag, NodeId) {
    let mut dag = SkillDag::new();
    let load = dag
        .add(
            SkillCall::LoadTable {
                database: "Main".into(),
                table: "t".into(),
            },
            vec![],
        )
        .unwrap();
    let target = match shape {
        Shape::Plain => load,
        Shape::Keep(p) => dag
            .add(
                SkillCall::KeepRows {
                    predicate: p.clone(),
                },
                vec![load],
            )
            .unwrap(),
        Shape::Drop(p) => dag
            .add(
                SkillCall::DropRows {
                    predicate: p.clone(),
                },
                vec![load],
            )
            .unwrap(),
        Shape::Join => {
            let right = dag
                .add(
                    SkillCall::LoadTable {
                        database: "Main".into(),
                        table: "t2".into(),
                    },
                    vec![],
                )
                .unwrap();
            dag.add(
                SkillCall::Join {
                    other: "t2".into(),
                    left_on: vec!["day".into()],
                    right_on: vec!["day".into()],
                    how: JoinType::Inner,
                },
                vec![load, right],
            )
            .unwrap()
        }
    };
    (dag, target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn estimates_bound_actual_execution(
        t in gen_table(40),
        t2 in gen_table(12),
        shape in shape(),
    ) {
        let (dag, target) = build_dag(&shape);
        let ctx = AnalysisContext::from_env(&build_env(&t, &t2));
        let analysis = analyze_dag(&dag, &[target], &ctx);
        let est = analysis.estimates.get(target);

        // The executed plan is the same pushed-down plan the estimator
        // priced (targets protected, nothing vetoed).
        let planned = plan_pushdown(&dag, &[target], &[]).unwrap_or_else(|| dag.clone());

        // Wave scheduler, cold cache.
        let mut env = build_env(&t, &t2);
        let Ok(out) = Executor::new().run(&planned, target, &mut env) else {
            // Failed runs (e.g. type-confused residual predicates) are
            // covered by the analyzer's own diagnostics, not soundness.
            return Ok(());
        };
        let actual_rows = out.as_table().map(|t| t.num_rows() as u64);
        let wave_bytes = env.scan_tally.bytes_scanned;

        // Resilient scheduler, cold cache, no faults.
        let mut env2 = build_env(&t, &t2);
        let report = Executor::new()
            .run_resilient(&planned, target, &mut env2, &ExecPolicy::default());
        prop_assert!(report.is_ok(), "wave succeeded but resilient failed");
        let resilient_bytes = env2.scan_tally.bytes_scanned;

        let lo = analysis.estimates.scan_bytes_lo;
        let hi = analysis.estimates.scan_bytes_hi;
        for (sched, actual) in [("wave", wave_bytes), ("resilient", resilient_bytes)] {
            prop_assert!(
                actual <= hi,
                "{sched}: scanned {actual} bytes > estimated upper bound {hi}"
            );
            prop_assert!(
                lo <= actual,
                "{sched}: guaranteed lower bound {lo} > actual {actual} bytes"
            );
        }

        if let (Some(est), Some(rows)) = (est, actual_rows) {
            prop_assert!(
                est.rows_lo <= rows,
                "rows_lo {} > actual {rows} rows",
                est.rows_lo
            );
            if let Some(hi) = est.rows_hi {
                prop_assert!(rows <= hi, "actual {rows} rows > rows_hi {hi}");
            }
        }
    }
}
