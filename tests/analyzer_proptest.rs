//! The analyzer's soundness property, fuzzed: any DAG the analyzer
//! *accepts* (no Error-severity findings) must execute without schema
//! errors on the serial engine. The generator deliberately mixes valid
//! and invalid column references and type combinations so both the
//! accept and the reject paths are exercised.

use datachat::analyze::{analyze_dag, AnalysisContext};
use datachat::engine::{AggFunc, AggSpec, DataType, Expr};
use datachat::skills::{Env, Executor, SkillCall, SkillDag};
use proptest::prelude::*;

/// Column pool: six real sales columns plus two that do not exist, so
/// generated programs are rejected roughly as often as they are accepted.
fn column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("order_id".to_string()),
        Just("order_date".to_string()),
        Just("region".to_string()),
        Just("product".to_string()),
        Just("price".to_string()),
        Just("quantity".to_string()),
        Just("bogus".to_string()),
        Just("ghost_col".to_string()),
    ]
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::CountRecords),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn dtype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Str),
    ]
}

/// One chained transform over the current dataset. Every variant here is
/// fully modeled by the schema pass, so analyzer acceptance must imply
/// runtime success.
fn transform() -> impl Strategy<Value = SkillCall> {
    prop_oneof![
        (column(), -50i64..50).prop_map(|(c, v)| SkillCall::KeepRows {
            predicate: Expr::col(c).gt(Expr::lit(v)),
        }),
        prop::collection::vec(column(), 1..4).prop_map(|mut columns| {
            columns.sort();
            columns.dedup();
            SkillCall::KeepColumns { columns }
        }),
        (column(), "[a-z]{3,8}").prop_map(|(from, to)| SkillCall::RenameColumn { from, to }),
        (column(), column()).prop_map(|(a, b)| SkillCall::CreateColumn {
            name: "derived".into(),
            expr: Expr::col(a).add(Expr::col(b)),
        }),
        (agg_func(), column(), column()).prop_map(|(func, col, key)| {
            let agg_column = (func != AggFunc::CountRecords).then_some(col);
            let output = AggSpec::default_output(func, agg_column.as_deref());
            SkillCall::Compute {
                aggs: vec![AggSpec {
                    func,
                    column: agg_column,
                    output,
                }],
                for_each: vec![key],
            }
        }),
        column().prop_map(|c| SkillCall::Sort {
            keys: vec![(c, true)],
        }),
        (1usize..50).prop_map(|n| SkillCall::Limit { n }),
        Just(SkillCall::Distinct { columns: vec![] }),
        Just(SkillCall::DropMissing { columns: vec![] }),
        (1u64..100, 0u64..8).prop_map(|(pct, seed)| SkillCall::Sample {
            fraction: pct as f64 / 100.0,
            seed,
        }),
        (column(), dtype()).prop_map(|(column, to)| SkillCall::CastColumn { column, to }),
        (column(), -3i64..10).prop_map(|(column, width)| SkillCall::BinColumn {
            column,
            width,
            name: None,
        }),
        column().prop_map(|column| SkillCall::TrimColumn { column }),
    ]
}

fn sales_env() -> Env {
    let mut env = Env::new();
    let table = datachat::storage::demo::sales(40, 3);
    let mut db = datachat::storage::CloudDatabase::new(
        "MainDatabase",
        datachat::storage::Pricing::default_cloud(),
    );
    db.create_table("sales", &table).unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

proptest! {
    #[test]
    fn accepted_dags_execute_cleanly(calls in prop::collection::vec(transform(), 1..7)) {
        let mut env = sales_env();
        let ctx = AnalysisContext::from_env(&env);

        let mut dag = SkillDag::new();
        let mut cur = dag
            .add(
                SkillCall::LoadTable {
                    database: "MainDatabase".into(),
                    table: "sales".into(),
                },
                vec![],
            )
            .unwrap();
        for call in calls {
            cur = dag.add(call, vec![cur]).unwrap();
        }

        let analysis = analyze_dag(&dag, &[cur], &ctx);
        if analysis.has_errors() {
            // Rejected programs are out of scope here (the golden corpus
            // covers rejection shapes); the property is about acceptance.
            return Ok(());
        }

        // Analyzer accepted: the serial engine must execute it cleanly.
        let mut ex = Executor::new();
        let result = ex.run(&dag, cur, &mut env);
        prop_assert!(
            result.is_ok(),
            "analyzer accepted but execution failed: {}\nDAG:\n{:?}",
            result.err().map(|e| e.to_string()).unwrap_or_default(),
            dag
        );
    }
}
