//! Failure-injection tests: malformed inputs, corrupted model output,
//! mid-recipe errors — the platform must degrade with typed errors, never
//! panics or silent corruption.

use datachat::core::Platform;
use datachat::gel::{parse_gel, GelError, Recipe, RecipeEditor, RunState};
use datachat::nl::{check, NlError, SchemaHints};
use datachat::skills::{Env, SkillError};

#[test]
fn malformed_csv_fails_typed_and_recoverably() {
    let mut env = Env::new();
    env.add_file("bad.csv", "a,b\n1\n"); // ragged row
    env.add_file("good.csv", "a,b\n1,2\n");
    let recipe = Recipe::parse("Load data from the file bad.csv\nKeep the first 1 rows").unwrap();
    let mut ed = RecipeEditor::new(recipe);
    let err = ed.step(&mut env).unwrap_err();
    assert!(matches!(err, GelError::Skill(SkillError::Engine(_))));
    // The editor survives: fix the step and run to completion.
    ed.edit_step(0, "Load data from the file good.csv").unwrap();
    assert_eq!(ed.run(&mut env).unwrap(), RunState::Done);
}

#[test]
fn unknown_column_mid_recipe_stops_at_the_bad_step() {
    let mut env = Env::new();
    env.add_file("d.csv", "x\n1\n2\n3\n");
    let recipe = Recipe::parse(
        "Load data from the file d.csv\n\
         Keep the rows where nope > 1\n\
         Keep the first 1 rows",
    )
    .unwrap();
    let mut ed = RecipeEditor::new(recipe);
    ed.step(&mut env).unwrap();
    let err = ed.step(&mut env).unwrap_err();
    assert!(err.to_string().contains("nope"));
    // Position did not advance past the failing step.
    assert_eq!(ed.position(), 1);
}

#[test]
fn corrupted_model_output_is_caught_by_the_checker() {
    let schema = SchemaHints::single("sales", vec!["price".into(), "region".into()]);
    // Syntax corruption → hard error.
    assert!(matches!(
        check("sales.filter(", &schema),
        Err(NlError::PySyntax { .. })
    ));
    // Reference corruption (the simulated LLM's column-swap failure
    // mode) → invalid program with a pointed message.
    let checked = check("sales.filter(\"ghost > 1\")", &schema).unwrap();
    assert!(!checked.is_valid());
    assert!(checked.errors()[0].message.contains("ghost"));
    // Composition corruption: sorting by a column the aggregate consumed.
    let checked = check(
        "sales.compute(aggregates = [Count(\"price\")], for_each = [\"region\"]).sort(by = [\"price\"])",
        &schema,
    )
    .unwrap();
    assert!(!checked.is_valid());
}

#[test]
fn chat_surfaces_generation_failures_instead_of_guessing() {
    let mut p = Platform::new();
    // No catalog at all: the LLM path has no schema to ground in.
    let h = p.open_session("ann");
    let r = p.chat(&h, "summon the quarterly numbers from the void");
    assert!(r.is_err(), "no dataset → typed error, not a made-up answer");
}

#[test]
fn gel_parser_rejects_garbage_without_panicking() {
    for input in [
        "",
        "   ",
        "Keep the rows where",
        "Compute the of for each",
        "Join with the dataset",
        "Sample % of the rows",
        "Train a model named to predict",
        "\u{0}\u{1}\u{2}",
        "Load data from the file", // empty path is accepted as a name...
    ] {
        let _ = parse_gel(input); // Ok or Err, never a panic
    }
}

#[test]
fn engine_expression_errors_are_typed() {
    use datachat::engine::{Column, Expr, ScalarFunc, Table};
    let t = Table::new(vec![("s", Column::from_strs(vec!["a"]))]).unwrap();
    // Numeric function over a string column.
    let err = datachat::engine::eval::eval(&t, &Expr::func(ScalarFunc::Sqrt, vec![Expr::col("s")]))
        .unwrap_err();
    assert!(matches!(
        err,
        datachat::engine::EngineError::TypeMismatch { .. }
    ));
    // Comparing incomparable types.
    let err = datachat::engine::eval::eval(&t, &Expr::col("s").gt(Expr::lit(1i64))).unwrap_err();
    assert!(matches!(err, datachat::engine::EngineError::Eval { .. }));
}

#[test]
fn snapshot_capacity_failure_leaves_store_unchanged() {
    let mut store = datachat::storage::SnapshotStore::with_capacity(16);
    let big = datachat::storage::demo::sales(1000, 1);
    assert!(store.create("big", big, "src", vec![], None).is_err());
    assert!(store.names().is_empty());
    assert_eq!(store.used_bytes(), 0);
}

#[test]
fn executor_error_does_not_poison_the_cache() {
    use datachat::skills::{Executor, SkillCall, SkillDag};
    let mut env = Env::new();
    env.add_file("d.csv", "x\n1\n2\n");
    let mut dag = SkillDag::new();
    let load = dag
        .add(
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
            vec![],
        )
        .unwrap();
    let bad = dag
        .add(
            SkillCall::KeepColumns {
                columns: vec!["ghost".into()],
            },
            vec![load],
        )
        .unwrap();
    let good = dag.add(SkillCall::Limit { n: 1 }, vec![load]).unwrap();
    let mut ex = Executor::new();
    assert!(ex.run(&dag, bad, &mut env).is_err());
    // The shared load result is still usable afterwards.
    let out = ex.run(&dag, good, &mut env).unwrap();
    assert_eq!(out.as_table().unwrap().num_rows(), 1);
    assert!(
        ex.stats.cache_hits >= 1,
        "load was cached despite the error"
    );
}
