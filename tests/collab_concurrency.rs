//! §2.4's session-level lock under real concurrency: "requests sent
//! concurrently will fail with a message to the user indicating that
//! another execution was already running."

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use datachat::collab::{CollabError, Permission, Session};
use datachat::engine::{Column, Table};
use datachat::skills::SkillCall;

#[test]
fn racing_submissions_one_wins_rest_get_busy() {
    // The session env is thread-local, so give every thread its own data.
    let make_table = || {
        Table::new(vec![(
            "x",
            Column::from_ints((0..50_000).collect::<Vec<i64>>()),
        )])
        .unwrap()
    };

    let session = Session::new(1, "ann");
    for u in ["u0", "u1", "u2", "u3"] {
        session.share_with(u, Permission::Edit);
    }
    // Seed each worker thread's env and load the dataset once from the
    // owner so transforms have an input.
    datachat::collab::with_env(|env| {
        env.save_table("big", make_table());
    });
    session
        .submit(
            "ann",
            SkillCall::UseDataset {
                name: "big".into(),
                version: None,
            },
        )
        .unwrap();

    let threads = 4;
    let barrier = Arc::new(Barrier::new(threads));
    let successes = Arc::new(AtomicUsize::new(0));
    let busies = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for i in 0..threads {
        let session = Arc::clone(&session);
        let barrier = Arc::clone(&barrier);
        let successes = Arc::clone(&successes);
        let busies = Arc::clone(&busies);
        handles.push(std::thread::spawn(move || {
            // Each thread needs the dataset in its own thread-local env
            // because execution reads files/models from there — the DAG
            // itself is shared platform-side.
            datachat::collab::with_env(|env| {
                env.save_table(
                    "big",
                    Table::new(vec![(
                        "x",
                        Column::from_ints((0..50_000).collect::<Vec<i64>>()),
                    )])
                    .unwrap(),
                );
            });
            barrier.wait();
            let user = format!("u{i}");
            match session.submit(
                &user,
                SkillCall::Sort {
                    keys: vec![("x".into(), false)],
                },
            ) {
                Ok(_) => {
                    successes.fetch_add(1, Ordering::SeqCst);
                }
                Err(CollabError::SessionBusy { session: id }) => {
                    assert_eq!(id, 1);
                    busies.fetch_add(1, Ordering::SeqCst);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ok = successes.load(Ordering::SeqCst);
    let busy = busies.load(Ordering::SeqCst);
    assert_eq!(ok + busy, threads);
    assert!(ok >= 1, "at least one racer must win the lock");
    // With a 50k-row sort the winner usually holds the lock long enough
    // to reject at least one racer; tolerate a lucky schedule but verify
    // serialization via the log either way.
    assert!(
        session.log().len() == 1 + ok,
        "only lock winners may append to the session log"
    );
}

#[test]
fn sequential_retries_succeed_after_busy() {
    datachat::collab::with_env(|env| {
        *env = datachat::skills::Env::new();
        env.add_file("d.csv", "x\n1\n2\n");
    });
    let session = Session::new(9, "ann");
    session
        .submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
    // After any rejected attempt the lock is free again; a retry works.
    for _ in 0..3 {
        session.submit("ann", SkillCall::Limit { n: 1 }).unwrap();
    }
    assert_eq!(session.log().len(), 4);
}
