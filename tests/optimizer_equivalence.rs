//! The cost-based optimizer's defining property, fuzzed: for any DAG,
//! executing with the optimizer on must produce exactly the output of
//! executing the plan as written — under both the serial executor and
//! the resilient wave scheduler. Programs that fail must fail either
//! way (the optimizer never rescues or invents an error), though the
//! failing node's attribution may shift when adjacent filters merge.
//!
//! The generator mixes plain column transforms with inner-join chains
//! against a unique-key dimension and a fan-out dimension, plus
//! self-concats, so every rewrite family (projection pushdown, filter
//! hoisting, join reordering, dedup, filter merging) gets exercised.

use datachat::engine::{AggFunc, AggSpec, Column, DataType, Expr, JoinType, Table};
use datachat::skills::{Env, ExecPolicy, Executor, SkillCall, SkillDag};
use datachat::storage::{CloudDatabase, Pricing};
use proptest::prelude::*;

/// Mostly-real columns with a couple of ghosts, so the error path (both
/// plans must fail) is exercised alongside the success path.
fn column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("order_id".to_string()),
        Just("order_date".to_string()),
        Just("region".to_string()),
        Just("product".to_string()),
        Just("price".to_string()),
        Just("quantity".to_string()),
        Just("tax".to_string()),
        Just("ghost_col".to_string()),
    ]
}

/// One chained transform over the current dataset.
fn transform() -> impl Strategy<Value = SkillCall> {
    prop_oneof![
        (column(), -50i64..50).prop_map(|(c, v)| SkillCall::KeepRows {
            predicate: Expr::col(c).gt(Expr::lit(v)),
        }),
        (column(), column(), -20i64..20).prop_map(|(a, b, v)| SkillCall::KeepRows {
            predicate: Expr::col(a)
                .gt(Expr::lit(v))
                .and(Expr::col(b).lt(Expr::lit(40))),
        }),
        prop::collection::vec(column(), 1..4).prop_map(|mut columns| {
            columns.sort();
            columns.dedup();
            SkillCall::KeepColumns { columns }
        }),
        (AggFunc::Sum as u8..=AggFunc::Sum as u8, column(), column()).prop_map(|(_, col, key)| {
            SkillCall::Compute {
                aggs: vec![AggSpec {
                    func: AggFunc::Sum,
                    column: Some(col.clone()),
                    output: AggSpec::default_output(AggFunc::Sum, Some(&col)),
                }],
                for_each: vec![key],
            }
        }),
        column().prop_map(|c| SkillCall::Sort {
            keys: vec![(c, true)],
        }),
        (1usize..50).prop_map(|n| SkillCall::Limit { n }),
        Just(SkillCall::Distinct { columns: vec![] }),
        Just(SkillCall::DropMissing { columns: vec![] }),
        (column(), DataType::Float as u8..=DataType::Float as u8).prop_map(|(column, _)| {
            SkillCall::CastColumn {
                column,
                to: DataType::Float,
            }
        }),
    ]
}

/// One structural step: a chained transform, an inner join against one
/// of the two dimension tables, or a self-concat (fan-out consumer).
#[derive(Debug, Clone)]
enum Step {
    Chain(SkillCall),
    JoinUnique,
    JoinFanout,
    SelfConcat,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        transform().prop_map(Step::Chain),
        transform().prop_map(Step::Chain),
        transform().prop_map(Step::Chain),
        Just(Step::JoinUnique),
        Just(Step::JoinFanout),
        Just(Step::SelfConcat),
    ]
}

/// Sales facts plus a provably-unique dimension (one row per region)
/// and a fan-out dimension (three rows per region).
fn world() -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
    db.create_table_with_blocks("sales", &datachat::storage::demo::sales(60, 5), 10)
        .unwrap();
    let regions = ["north", "south", "east", "west"];
    let info = Table::new(vec![
        (
            "region",
            Column::from_strs(regions.iter().map(|r| r.to_string()).collect::<Vec<_>>())
                .dict_encode(),
        ),
        ("tax", Column::from_floats(vec![0.1, 0.2, 0.05, 0.15])),
    ])
    .unwrap();
    db.create_table_with_blocks("region_info", &info, 2)
        .unwrap();
    let mut fan_region = Vec::new();
    let mut note = Vec::new();
    for r in regions {
        for i in 0..3 {
            fan_region.push(r.to_string());
            note.push(format!("{r}-{i}"));
        }
    }
    let notes = Table::new(vec![
        ("region", Column::from_strs(fan_region).dict_encode()),
        ("note", Column::from_strs(note).dict_encode()),
    ])
    .unwrap();
    db.create_table_with_blocks("region_notes", &notes, 4)
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

fn build_dag(steps: &[Step]) -> (SkillDag, datachat::skills::NodeId) {
    let mut dag = SkillDag::new();
    let load = |dag: &mut SkillDag, table: &str| {
        dag.add(
            SkillCall::LoadTable {
                database: "MainDatabase".into(),
                table: table.into(),
            },
            vec![],
        )
        .unwrap()
    };
    let mut cur = load(&mut dag, "sales");
    for step in steps {
        cur = match step {
            Step::Chain(call) => dag.add(call.clone(), vec![cur]).unwrap(),
            Step::JoinUnique | Step::JoinFanout => {
                let table = match step {
                    Step::JoinUnique => "region_info",
                    _ => "region_notes",
                };
                let dim = load(&mut dag, table);
                dag.add(
                    SkillCall::Join {
                        other: table.into(),
                        left_on: vec!["region".into()],
                        right_on: vec!["region".into()],
                        how: JoinType::Inner,
                    },
                    vec![cur, dim],
                )
                .unwrap()
            }
            Step::SelfConcat => dag
                .add(
                    SkillCall::Concat {
                        other: "self".into(),
                        remove_duplicates: false,
                    },
                    vec![cur, cur],
                )
                .unwrap(),
        };
    }
    (dag, cur)
}

proptest! {
    /// Serial executor: optimized and as-written runs agree exactly.
    #[test]
    fn optimized_run_matches_as_written(steps in prop::collection::vec(step(), 1..7)) {
        let (dag, target) = build_dag(&steps);

        let mut env_on = world();
        let mut on = Executor::new();
        let got_on = on.run(&dag, target, &mut env_on);

        let mut env_off = world();
        let mut off = Executor::new();
        off.optimize = false;
        let got_off = off.run(&dag, target, &mut env_off);

        match (&got_on, &got_off) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "outputs diverge\nDAG:\n{:?}", dag),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "one plan failed, the other succeeded: on={:?} off={:?}\nDAG:\n{:?}",
                a.is_ok(), b.is_ok(), dag
            ),
        }
    }

    /// Resilient wave scheduler: same property, through the
    /// preflight/poisoning path.
    #[test]
    fn optimized_resilient_matches_as_written(steps in prop::collection::vec(step(), 1..7)) {
        let (dag, target) = build_dag(&steps);

        let mut env_on = world();
        let mut on = Executor::new();
        let report_on = on
            .run_resilient(&dag, target, &mut env_on, &ExecPolicy::default())
            .expect("structurally valid DAG");

        let mut env_off = world();
        let mut off = Executor::new();
        let policy_off = ExecPolicy { optimize: false, ..ExecPolicy::default() };
        let report_off = off
            .run_resilient(&dag, target, &mut env_off, &policy_off)
            .expect("structurally valid DAG");

        prop_assert_eq!(
            report_on.output.is_some(),
            report_off.output.is_some(),
            "one plan reached the target, the other did not\nDAG:\n{:?}",
            dag
        );
        if let (Some(a), Some(b)) = (&report_on.output, &report_off.output) {
            prop_assert_eq!(a, b, "outputs diverge\nDAG:\n{:?}", dag);
        }
    }
}
