//! Integration tests spanning the full stack: platform facade → NL2Code →
//! skills → SQL/engine → storage, exercising the paper's demo scenarios.

use datachat::core::{ChatPath, Platform};
use datachat::gel::{parse_gel, Recipe, RecipeEditor, RunState};
use datachat::skills::{Env, SkillOutput};
use datachat::storage::{demo, CloudDatabase, Pricing};

fn collisions_platform() -> Platform {
    let p = Platform::new();
    let (collisions, parties, victims) = demo::california_collisions(800, 5);
    let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
    db.create_table("collisions", &collisions).unwrap();
    db.create_table("parties", &parties).unwrap();
    db.create_table("victims", &victims).unwrap();
    p.add_database(db).unwrap();
    p
}

#[test]
fn figure1_interactive_session() {
    let mut p = collisions_platform();
    let h = p.open_session("analyst");

    // Dataset panel.
    let listing = h.run_gel("List the datasets").unwrap();
    match listing {
        SkillOutput::Text(text) => {
            assert!(text.contains("parties"));
            assert!(text.contains("collisions"));
        }
        other => panic!("unexpected {other:?}"),
    }

    // Spreadsheet view + the six-chart Visualize.
    h.run_gel("Load the table parties from the database MainDatabase")
        .unwrap();
    let reply = p
        .chat(
            &h,
            "Visualize at_fault by party_age, party_sex, cellphone_in_use",
        )
        .unwrap();
    let charts = reply.output.as_charts().unwrap();
    assert_eq!(charts.len(), 6);
    assert!(charts
        .iter()
        .any(|c| c.chart == datachat::viz::ChartType::Bubble
            && c.size.as_deref() == Some("CountOfRecords")));
}

#[test]
fn figure2_gdp_recipe_replays() {
    let mut env = Env::new();
    env.add_url(
        "https://fred.example/gdp.csv",
        datachat::engine::csv::write_csv(&demo::fred_gdp()),
    );
    let mut recipe = Recipe::new();
    for line in [
        "Load data from the URL https://fred.example/gdp.csv",
        "Keep the rows where DATE is between the dates 01-01-2005 to 12-31-2020",
        "Predict time series with measure columns GDPC1 for the next 12 values of DATE",
        "Keep the columns DATE, GDPC1, RecordType",
        "Use the dataset fredgraph, version 1",
        "Create a new column RecordType with text Actual",
        "Keep the columns DATE, GDPC1, RecordType",
        "Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
        "Keep the rows where DATE is after Today - 10 years",
        "Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType",
    ] {
        recipe.push(parse_gel(line).unwrap());
    }
    recipe.bind(0, "fredgraph").unwrap();
    recipe.bind(3, "PredictedTimeSeries_GDPC1").unwrap();

    let mut ed = RecipeEditor::new(recipe);
    assert_eq!(ed.run(&mut env).unwrap(), RunState::Done);
    let charts = ed.last_output().unwrap().as_charts().unwrap();
    assert_eq!(charts[0].for_each.as_deref(), Some("RecordType"));
    // Both series present in the plotted data.
    let kinds: Vec<String> = charts[0]
        .data
        .column("RecordType")
        .unwrap()
        .iter_values()
        .map(|v| v.render())
        .collect();
    assert!(kinds.iter().any(|k| k == "Actual"));
    assert!(kinds.iter().any(|k| k == "Predicted"));

    // Replay is cheap (cached) and deterministic.
    ed.replay();
    assert_eq!(ed.run(&mut env).unwrap(), RunState::Done);
}

#[test]
fn chat_routes_through_all_three_paths() {
    let mut p = collisions_platform();
    p.nl.model = Box::new(datachat::nl::SimulatedLlm::oracle());
    let h = p.open_session("analyst");

    // GEL path.
    let r = p
        .chat(&h, "Load the table parties from the database MainDatabase")
        .unwrap();
    assert_eq!(r.path, ChatPath::Gel);

    // Phrase path (needs a filter clause so plain GEL can't parse it).
    p.nl.semantics
        .define_phrase("drivers only", "party_type = 'driver'");
    let r = p
        .chat(&h, "Visualize party_age by party_sex where drivers only")
        .unwrap();
    assert_eq!(r.path, ChatPath::Phrase);
    assert!(r.output.as_charts().is_some());

    // LLM path.
    let r = p
        .chat(&h, "How many parties are there for each party_sobriety")
        .unwrap();
    assert_eq!(r.path, ChatPath::Llm);
    let t = r.output.as_table().unwrap();
    assert!(t.num_rows() >= 2);
}

#[test]
fn artifact_lifecycle_save_share_refresh() {
    let mut p = collisions_platform();
    let h = p.open_session("ann");
    h.run_gel("Load the table victims from the database MainDatabase")
        .unwrap();
    h.run_gel("Keep the rows where victim_age is not null")
        .unwrap();
    h.run_gel("Compute the count of records for each victim_degree_of_injury")
        .unwrap();

    let a = p.save_artifact(&h, "injury-histogram").unwrap();
    let rows_v1 = match &a.output {
        SkillOutput::Table(t) => t.num_rows(),
        other => panic!("unexpected {other:?}"),
    };
    assert!(rows_v1 >= 2);
    assert!(a.recipe_gel().len() <= 4, "sliced recipe stays small");

    let link = p
        .share_artifact_link("injury-histogram", datachat::collab::Permission::View)
        .unwrap();
    assert_eq!(
        p.open_shared(&link.key, &link.secret).unwrap().name,
        "injury-histogram"
    );

    assert_eq!(p.refresh_artifact("injury-histogram").unwrap(), 2);
}

#[test]
fn sql_skill_against_catalog_matches_engine_ops() {
    let mut p = collisions_platform();
    let h = p.open_session("ann");
    let via_sql = h
        .run_gel("Run the SQL query SELECT party_sobriety, COUNT(*) AS n FROM parties GROUP BY party_sobriety")
        .unwrap();
    let sql_table = via_sql.as_table().unwrap().clone();
    h.run_gel("Load the table parties from the database MainDatabase")
        .unwrap();
    let via_skills = h
        .run_gel(
            "Compute the count of records for each party_sobriety and call the computed columns n",
        )
        .unwrap();
    let skills_table = via_skills.as_table().unwrap();
    assert_eq!(sql_table.num_rows(), skills_table.num_rows());
    // Same group → count mapping.
    let read = |t: &datachat::engine::Table| {
        let mut pairs: Vec<(String, String)> = (0..t.num_rows())
            .map(|r| {
                (
                    t.value(r, "party_sobriety").unwrap().render(),
                    t.value(r, "n").unwrap().render(),
                )
            })
            .collect();
        pairs.sort();
        pairs
    };
    assert_eq!(read(&sql_table), read(skills_table));
}

#[test]
fn snapshot_flow_reduces_cloud_cost() {
    let p = collisions_platform();
    let h = {
        let mut p2 = collisions_platform();
        p2.open_session("ann")
    };
    drop(h);
    let mut p = p;
    let h = p.open_session("ann");
    h.run_gel("Load the table parties from the database MainDatabase")
        .unwrap();
    h.run_gel("Snapshot this as parties_snap").unwrap();
    let before = p.env(|env| {
        env.catalog
            .database("MainDatabase")
            .unwrap()
            .meter()
            .dollars()
    });
    // Iterate on the snapshot: no further cloud scans.
    for _ in 0..5 {
        h.run_gel("Use the snapshot parties_snap").unwrap();
        h.run_gel("Keep the first 10 rows").unwrap();
    }
    let after = p.env(|env| {
        env.catalog
            .database("MainDatabase")
            .unwrap()
            .meter()
            .dollars()
    });
    assert_eq!(
        before, after,
        "snapshot iteration must not touch the cloud meter"
    );
}

#[test]
fn multi_turn_decomposition_of_a_complex_question() {
    // §4.6: "users can decide to decompose a complex analytical question
    // into a sequence of easier, targeted questions, whose responses are
    // individually editable" — each chat turn extends the same session
    // chain, so later turns operate on earlier answers.
    let mut p = collisions_platform();
    p.nl.model = Box::new(datachat::nl::SimulatedLlm::oracle());
    let h = p.open_session("analyst");
    p.chat(&h, "Load the table parties from the database MainDatabase")
        .unwrap();
    // Turn 1: narrow.
    let r1 = p
        .chat(&h, "Keep the rows where party_age is not null")
        .unwrap();
    let narrowed = r1.output.as_table().unwrap().num_rows();
    // Turn 2: aggregate what turn 1 produced.
    let r2 = p
        .chat(&h, "Compute the count of records for each party_sobriety")
        .unwrap();
    let grouped = r2.output.as_table().unwrap();
    let total: i64 = (0..grouped.num_rows())
        .map(|r| {
            grouped
                .value(r, "CountOfRecords")
                .unwrap()
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(total as usize, narrowed, "turn 2 consumed turn 1's result");
    // Turn 3: the recipe so far is visible and editable as a DAG.
    let dot = h.session.dag_snapshot().to_dot();
    assert!(dot.contains("KeepRows"));
    assert!(dot.contains("Compute"));
}
