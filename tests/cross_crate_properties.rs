//! Cross-crate property tests: the GEL ↔ skill ↔ Python round-trips and
//! the invariants that hold across the whole stack for randomized inputs.

use datachat::engine::{AggFunc, AggSpec, Expr, Value};
use datachat::gel::{format_skill, parse_gel};
use datachat::nl::{format_program, parse_pyapi};
use datachat::skills::SkillCall;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("keyword-free identifiers", |s| {
        // Avoid GEL grammar words inside list items and condition slots.
        ![
            "and", "or", "by", "to", "as", "for", "each", "with", "where", "the", "of", "is",
            "not", "null", "rows", "version", "using", "seed", "call",
        ]
        .contains(&s.as_str())
    })
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::CountRecords),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Median),
    ]
}

fn simple_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0..100.0f64).prop_map(|f| Value::Float((f * 4.0).round() / 4.0)),
        ident().prop_map(Value::Str),
    ]
}

fn skill_call() -> impl Strategy<Value = SkillCall> {
    prop_oneof![
        ident().prop_map(|path| SkillCall::LoadFile {
            path: format!("{path}.csv")
        }),
        (ident(), -1000i64..1000).prop_map(|(c, v)| SkillCall::KeepRows {
            predicate: Expr::col(c).gt(Expr::lit(v)),
        }),
        prop::collection::vec(ident(), 1..4).prop_map(|mut columns| {
            columns.dedup();
            SkillCall::KeepColumns { columns }
        }),
        (ident(), ident())
            .prop_filter("distinct names", |(a, b)| a != b)
            .prop_map(|(from, to)| SkillCall::RenameColumn { from, to },),
        (agg_func(), ident(), ident()).prop_map(|(func, col, key)| {
            let column = (func != AggFunc::CountRecords).then_some(col.clone());
            let output = AggSpec::default_output(func, column.as_deref());
            SkillCall::Compute {
                aggs: vec![AggSpec {
                    func,
                    column,
                    output,
                }],
                for_each: vec![key],
            }
        }),
        (1usize..1000).prop_map(|n| SkillCall::Limit { n }),
        (ident(), 1usize..100).prop_map(|(column, n)| SkillCall::Top { column, n }),
        (ident(), simple_value())
            .prop_map(|(column, value)| SkillCall::FillMissing { column, value }),
        (ident(), 1i64..100).prop_map(|(column, width)| SkillCall::BinColumn {
            column,
            width,
            name: None,
        }),
        (1u64..100, 0u64..100).prop_map(|(pct, seed)| SkillCall::Sample {
            // Whole percents round-trip exactly through the GEL text.
            fraction: pct as f64 / 100.0,
            seed,
        }),
        ident().prop_map(|name| SkillCall::SaveArtifact { name }),
        (ident(), ident()).prop_map(|(phrase, expansion)| SkillCall::Define { phrase, expansion }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every formatted GEL sentence parses back to the identical call —
    /// the recipe round-trip §2.3 depends on.
    #[test]
    fn gel_roundtrip(call in skill_call()) {
        let text = format_skill(&call);
        let parsed = parse_gel(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed: {e}"));
        prop_assert_eq!(parsed, call);
    }

    /// The polyglot invariant of §4: GEL and the Python API describe the
    /// same skill for every call that has a Python form.
    #[test]
    fn python_roundtrip_agrees_with_gel(call in skill_call()) {
        let Ok(python) = format_program("data", std::slice::from_ref(&call)) else {
            return Ok(()); // ingestion/collab calls have no Python form
        };
        let parsed = parse_pyapi(&python)
            .unwrap_or_else(|e| panic!("{python:?} failed: {e}"));
        prop_assert_eq!(&parsed.statements[0].calls[0], &call, "python was {}", python);
    }

    /// Difficulty metrics are total and bounded on arbitrary questions.
    #[test]
    fn metrics_total_and_bounded(q in "[ -~]{0,80}") {
        let schema = datachat::nl::SchemaHints::single(
            "t",
            vec!["alpha".into(), "beta_gamma".into()],
        );
        let m = datachat::nl::misalignment(&q, &schema, &datachat::nl::SemanticLayer::new());
        prop_assert!((0.0..=1.0).contains(&m), "m = {m}");
        let c = datachat::nl::composition(&q);
        prop_assert!(c >= 0.0);
    }

    /// Recipes built from random calls render to text and re-parse.
    #[test]
    fn recipe_text_roundtrip(calls in prop::collection::vec(skill_call(), 1..6)) {
        let mut recipe = datachat::gel::Recipe::new();
        for c in &calls {
            recipe.push(c.clone());
        }
        let text: String = recipe
            .steps()
            .iter()
            .map(format_skill)
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = datachat::gel::Recipe::parse(&text).unwrap();
        prop_assert_eq!(reparsed.steps(), recipe.steps());
    }
}
