//! Small-scale assertions of every experiment's headline claim — the
//! same properties the `dc-bench` binaries report at full scale.

use datachat::engine::{Column, Expr, Table};
use datachat::nl::metrics::Zone;
use datachat::skills::{plan, slice, ExecutionTask, SkillCall, SkillDag};
use datachat::spider::{t_custom, t_spider, zone_histogram};
use datachat::sql::{execute, generate_sql, ExecStats, QueryStep};
use datachat::storage::{demo, CloudDatabase, Pricing, ScanOptions};

#[test]
fn sec3_block_sampling_cost_proportionality() {
    let mut db = CloudDatabase::new("c", Pricing::default_cloud());
    db.create_table("iot", &demo::iot_readings(100_000, 3))
        .unwrap();
    let (_, full) = db.scan("iot", &ScanOptions::full()).unwrap();
    let (_, sampled) = db.scan("iot", &ScanOptions::block_sampled(0.1, 5)).unwrap();
    let ratio = full.bytes_scanned as f64 / sampled.bytes_scanned as f64;
    assert!(
        (5.0..20.0).contains(&ratio),
        "10% sample ratio = {ratio:.1}"
    );
    assert!(full.bytes_read <= full.bytes_scanned);
    assert!(sampled.bytes_read <= sampled.bytes_scanned);
    // Row sampling scans everything (the §3 contrast).
    let (_, rowwise) = db.scan("iot", &ScanOptions::row_sampled(0.1, 5)).unwrap();
    assert_eq!(rowwise.bytes_scanned, full.bytes_scanned);
    assert!(rowwise.bytes_read <= rowwise.bytes_scanned);
}

#[test]
fn sec22_flattening_reduces_blocks_and_rows() {
    let mut provider = std::collections::HashMap::new();
    provider.insert(
        "base_table".to_string(),
        Table::new(vec![
            ("a", Column::from_ints((0..10_000).collect::<Vec<i64>>())),
            ("b", Column::from_ints((0..10_000).collect::<Vec<i64>>())),
            ("c", Column::from_ints((0..10_000).collect::<Vec<i64>>())),
        ])
        .unwrap(),
    );
    let steps = vec![
        QueryStep::Scan {
            table: "base_table".into(),
        },
        QueryStep::SelectColumns {
            columns: vec!["a".into(), "b".into(), "c".into()],
        },
        QueryStep::SelectColumns {
            columns: vec!["a".into(), "b".into()],
        },
        QueryStep::SelectColumns {
            columns: vec!["a".into()],
        },
    ];
    let nested = generate_sql(&steps, false).unwrap();
    let flat = generate_sql(&steps, true).unwrap();
    assert_eq!(flat.to_sql(), "SELECT a FROM base_table");
    let mut sn = ExecStats::default();
    let mut sf = ExecStats::default();
    let rn = execute(&nested, &provider, &mut sn).unwrap();
    let rf = execute(&flat, &provider, &mut sf).unwrap();
    assert_eq!(rn, rf);
    assert!(sn.query_blocks > sf.query_blocks);
    assert!(sn.rows_materialized >= 3 * sf.rows_materialized);
}

#[test]
fn fig4_three_skills_one_task() {
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            vec![],
        )
        .unwrap();
    let f = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").gt(Expr::lit(1i64)),
            },
            vec![l],
        )
        .unwrap();
    let lim = dag.add(SkillCall::Limit { n: 100 }, vec![f]).unwrap();
    let tasks = plan(&dag, lim).unwrap();
    assert_eq!(tasks.len(), 1);
    assert!(matches!(&tasks[0], ExecutionTask::Sql { covers, .. } if covers.len() == 3));
}

#[test]
fn fig5_slicing_shrinks_exploratory_dags() {
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            vec![],
        )
        .unwrap();
    let _peek = dag.add(SkillCall::DescribeDataset, vec![l]).unwrap();
    let dead = dag
        .add(
            SkillCall::Sort {
                keys: vec![("x".into(), true)],
            },
            vec![l],
        )
        .unwrap();
    let _dead2 = dag.add(SkillCall::Limit { n: 5 }, vec![dead]).unwrap();
    let f1 = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").gt(Expr::lit(1i64)),
            },
            vec![l],
        )
        .unwrap();
    let f2 = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("y").lt(Expr::lit(5i64)),
            },
            vec![f1],
        )
        .unwrap();
    let (sliced, stats) = slice(&dag, f2).unwrap();
    assert_eq!(sliced.len(), 2); // load + merged filter
    assert!(stats.final_nodes < stats.original_nodes / 2);
}

#[test]
fn fig7_zone_marginals_and_table2_stratification() {
    // The full dev split is exercised by the fig7 binary; here the
    // stratified test sets assert the Table 2 sample counts.
    let spider = t_spider(3);
    assert_eq!(spider.len(), 100);
    for (_, n) in zone_histogram(&spider) {
        assert_eq!(n, 25);
    }
    let custom = t_custom(3);
    let hist = zone_histogram(&custom);
    let count = |z: Zone| hist.iter().find(|(h, _)| *h == z).unwrap().1;
    assert_eq!(
        (
            count(Zone::LowLow),
            count(Zone::LowHigh),
            count(Zone::HighLow),
            count(Zone::HighHigh)
        ),
        (20, 22, 26, 22)
    );
}

#[test]
fn table2_shape_holds_on_a_small_slice() {
    // A 20-sample smoke version of the Table 2 harness: easy zone beats
    // the hardest zone.
    let system = datachat::spider::spider_system(7);
    let samples: Vec<_> = t_spider(7)
        .into_iter()
        .filter(|s| matches!(s.zone, Zone::LowLow | Zone::HighHigh))
        .take(24)
        .collect();
    let rows = datachat::spider::evaluate(&samples, &system, 60);
    let ea = |z: Zone| rows.iter().find(|r| r.zone == z).unwrap().mean_ea;
    assert!(
        ea(Zone::LowLow) >= ea(Zone::HighHigh),
        "(low,low) {} must beat (high,high) {}",
        ea(Zone::LowLow),
        ea(Zone::HighHigh)
    );
}

#[test]
fn snapshots_make_iteration_free() {
    let mut store = datachat::storage::SnapshotStore::new();
    let data = demo::sales(1_000, 1);
    store
        .create(
            "s",
            data,
            "cloud.sales",
            vec!["Use the dataset sales".into()],
            None,
        )
        .unwrap();
    for _ in 0..10 {
        store.read("s").unwrap();
    }
    assert_eq!(store.meter().dollars(), 0.0);
    assert_eq!(store.meter().queries(), 10);
}
