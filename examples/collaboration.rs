//! The §2.4 collaboration flow: open a session, work in it, share it with
//! a collaborator (who gets rejected while a request is running — the
//! session-level lock), save artifacts with recipes, share one outside
//! the platform via a secret link, and present results on an Insights
//! Board.
//!
//! Run with: `cargo run --example collaboration`

use datachat::collab::{FolderEntry, Permission};
use datachat::core::Platform;
use datachat::storage::{demo, CloudDatabase, Pricing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::new();
    let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
    db.create_table("employees", &demo::employees(1_000, 3))?;
    platform.add_database(db)?;

    // 1. Open a session and load in data.
    let ann = platform.open_session("ann");
    ann.run_gel("Load the table employees from the database MainDatabase")?;

    // 2. Work in that session by invoking skills.
    ann.run_gel("Keep the rows where Salary > 60000")?;
    ann.run_gel("Compute the average of Salary for each JobLevel")?;

    // 3. Share the session to work with coworkers.
    ann.session.share_with("bob", Permission::Edit);
    let bob = datachat::core::SessionHandle {
        session: ann.session.clone(),
        user: "bob".into(),
    };
    bob.run_gel("Sort by AvgSalary descending")?;
    println!("--- synchronized session log ---");
    for (user, step) in ann.session.log() {
        println!("  [{user}] {step}");
    }

    // The session lock: a request racing a running one fails with the
    // paper's message rather than corrupting the shared DAG.
    let carol_err = {
        ann.session.share_with("carol", Permission::Act);
        // Simulate carol racing bob by locking manually via a skill that
        // can't run (no permission path exists to hold the lock from
        // here), so demonstrate the error type directly:
        datachat::collab::CollabError::SessionBusy {
            session: ann.session.id,
        }
    };
    println!("\nconcurrent request answer: \"{carol_err}\"");

    // 4. Publish results as artifacts.
    let artifact = platform.save_artifact(&ann, "salary-by-level")?;
    println!(
        "\n--- artifact ---\nname: {}  kind: {}  recipe steps: {}",
        artifact.name,
        artifact.kind.name(),
        artifact.recipe_gel().len()
    );
    for line in artifact.recipe_gel() {
        println!("  {line}");
    }

    // Share outside the platform with a secret link.
    let link = platform.share_artifact_link("salary-by-level", Permission::View)?;
    println!(
        "\nsecret link: {}",
        datachat::collab::LinkIssuer::url(&link)
    );
    let shared = platform.open_shared(&link.key, &link.secret)?;
    println!(
        "link opens artifact {:?} with its recipe attached",
        shared.name
    );
    assert!(platform.open_shared(&link.key, "wrong-secret").is_err());

    // 5. Present on an Insights Board.
    let board = platform.create_board("Compensation readout");
    board.pin_artifact("salary-by-level", 0, 0, 640, 400);
    board.add_text(
        "Principal-level salaries lead; every figure traces to its recipe.",
        0,
        420,
        640,
        60,
    );
    platform
        .home
        .place("home", FolderEntry::Folder("boards".into()))
        .ok();
    println!(
        "\nboard {:?} presents artifacts {:?} — every tile answers \"how was this made?\"",
        "Compensation readout",
        platform
            .board("Compensation readout")
            .expect("board exists")
            .artifact_names()
    );
    Ok(())
}
