//! The Figure 2 recipe: load a quarterly GDP series, keep the pre-2020
//! window, forecast 12 quarters, label and concatenate actual vs
//! predicted, and plot the gap — then step through the recipe in the GEL
//! IDE with a breakpoint, exactly like the paper's editor screenshot.
//!
//! Run with: `cargo run --example gdp_forecast`

use datachat::gel::{parse_gel, Recipe, RecipeEditor, RunState};
use datachat::skills::Env;
use datachat::storage::demo;
use datachat::viz::render_ascii;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper pulls GDPC1 from FRED; offline we register a synthetic
    // quarterly series with the same 2020 shock (DESIGN.md §1).
    let mut env = Env::new();
    let gdp_csv = datachat::engine::csv::write_csv(&demo::fred_gdp());
    env.add_url(
        "https://fred.stlouisfed.org/graph/fredgraph.csv?id=GDPC1&fq=Quarterly",
        gdp_csv,
    );

    // The recipe, line for line from Figure 2a.
    let mut recipe = Recipe::new();
    let lines = [
        "Load data from the URL https://fred.stlouisfed.org/graph/fredgraph.csv?id=GDPC1&fq=Quarterly",
        "Keep the rows where DATE is between the dates 01-01-2005 to 12-31-2020",
        "Predict time series with measure columns GDPC1 for the next 12 values of DATE",
        "Keep the columns DATE, GDPC1, RecordType",
        "Use the dataset fredgraph, version 1",
        "Create a new column RecordType with text Actual",
        "Keep the columns DATE, GDPC1, RecordType",
        "Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
        "Keep the rows where DATE is after Today - 10 years",
        "Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType",
    ];
    for line in lines {
        recipe.push(parse_gel(line)?);
    }
    // Name the intermediate results the recipe references.
    recipe.bind(0, "fredgraph")?;
    recipe.bind(3, "PredictedTimeSeries_GDPC1")?;

    println!("--- recipe (GEL editor) ---\n{}\n", recipe.to_text());

    // IDE semantics: breakpoint on the forecast step, run, inspect, resume.
    let mut editor = RecipeEditor::new(recipe);
    editor.toggle_breakpoint(2)?;
    let state = editor.run(&mut env)?;
    assert_eq!(state, RunState::Paused);
    println!(
        "paused before step {} (breakpoint); last output has {} rows",
        editor.position() + 1,
        editor
            .last_output()
            .and_then(|o| o.as_table())
            .map(|t| t.num_rows())
            .unwrap_or(0)
    );
    editor.resume(&mut env)?;
    assert_eq!(editor.state(), RunState::Done);

    // The final chart artifact (Figure 2b).
    let charts = editor
        .last_output()
        .and_then(|o| o.as_charts())
        .expect("the last step plots a chart");
    let chart = &charts[0];
    println!("\n--- Real Per Capita GDP over time: Actual vs Prediction ---");
    println!("{}", render_ascii(chart, 76)?);
    println!(
        "The '+' series projects the pre-2020 trend; the '*' series is actual.\n\
         The gap between them is the economic-activity shortfall the caption describes."
    );
    Ok(())
}
