//! The Figure 1 session: California car collisions in a cloud database,
//! the dataset-listing panel, a spreadsheet view of `parties`, and
//! `Visualize at_fault by party_age, party_sex, cellphone_in_use`
//! answering with six charts (donuts, violin, histogram, and the bubble
//! chart sized by CountOfRecords over binned ages).
//!
//! Run with: `cargo run --example car_collisions`

use datachat::core::Platform;
use datachat::storage::{demo, CloudDatabase, Pricing};
use datachat::viz::render_ascii;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::new();

    // The paper demos on the 9.4M-row SWITRS database; this reproduction
    // generates a synthetic equivalent with the same schema (DESIGN.md §1).
    let (collisions, parties, victims) = demo::california_collisions(2_000, 42);
    let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
    db.create_table("collisions", &collisions)?;
    db.create_table("parties", &parties)?;
    db.create_table("victims", &victims)?;
    platform.add_database(db)?;

    // The dataset listing panel (top-right of Figure 1).
    let session = platform.open_session("analyst");
    let listing = session.run_gel("List the datasets")?;
    if let datachat::skills::SkillOutput::Text(text) = &listing {
        println!("--- datasets ---");
        println!("{:<14} {:<12} {:>10}", "Database", "DatasetName", "Rows");
        for line in text.lines() {
            let mut parts = line.split('\t');
            let (db, name, rows) = (
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
            );
            println!("{db:<14} {name:<12} {rows:>10}");
        }
    }

    // Spreadsheet view of parties.
    session.run_gel("Load the table parties from the database MainDatabase")?;
    let head = session.run_gel("Show the first 8 rows")?;
    if let datachat::skills::SkillOutput::Text(grid) = &head {
        println!("\n--- parties (spreadsheet view) ---\n{grid}");
    }

    // The chat request from Figure 1's bottom-right panel.
    let reply = platform.chat(
        &session,
        "Visualize at_fault by party_age, party_sex, cellphone_in_use",
    )?;
    let charts = reply
        .output
        .as_charts()
        .expect("visualize answers with charts");
    println!("--- chat ---");
    println!("Here are {} charts to visualize the data\n", charts.len());
    for (i, chart) in charts.iter().enumerate() {
        println!("{}. {}", i + 1, chart.chat_line());
    }

    // Render the bubble chart (the big panel in the screenshot).
    let bubble = charts
        .iter()
        .find(|c| c.chart == datachat::viz::ChartType::Bubble)
        .expect("a bubble chart is part of the answer");
    println!("\n--- {} ---", bubble.title);
    println!("{}", render_ascii(bubble, 72)?);

    // And the first donut.
    println!("{}", render_ascii(&charts[0], 72)?);
    Ok(())
}
