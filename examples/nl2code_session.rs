//! The Figure 6 NL2Code flow, end to end: a natural-language question
//! runs through semantic retrieval, example retrieval, prompt
//! composition, (simulated) LLM generation, the program checker, and
//! polyglot translation — with the full step trace printed, then the
//! recipe executed against a sales dataset. Also demonstrates §4.8's
//! deterministic phrase-based translation for `Visualize`.
//!
//! Run with: `cargo run --example nl2code_session`

use datachat::gel::RecipeEditor;
use datachat::nl::{translate_visualize, Nl2Code, SchemaHints, SimulatedLlm};
use datachat::skills::Env;
use datachat::storage::demo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sales = demo::sales(400, 7);
    let schema = SchemaHints::single(
        "sales",
        sales
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );

    // The default stack with the sales-demo semantic layer. The oracle
    // model keeps the example deterministic; swap in SimulatedLlm::new(n)
    // (or a real LanguageModel impl) for the noisy/production setting.
    let mut system = Nl2Code::with_defaults(42);
    system.model = Box::new(SimulatedLlm::oracle());

    // The §4.2 walkthrough question.
    let question = "How many purchases were successful";
    let result = system.generate(question, &schema)?;

    println!("--- Figure 6 trace ---");
    for line in &result.trace {
        println!("{line}");
    }

    println!("\n--- polyglot output (§4: Python / GEL / SQL) ---");
    println!("Python:\n  {}", result.python.replace('\n', "\n  "));
    println!("GEL:");
    for line in &result.gel {
        println!("  {line}");
    }
    if let Some(sql) = &result.sql {
        println!("SQL:\n  {sql}");
    }

    // Step 12-13: execute on the platform.
    let mut env = Env::new();
    env.save_table("sales", sales);
    let recipe = Nl2Code::to_recipe(&result.checked)?;
    let mut editor = RecipeEditor::new(recipe);
    editor.run(&mut env)?;
    let answer = editor
        .last_output()
        .and_then(|o| o.as_table())
        .expect("the program answers with a table");
    println!("\n--- executed answer ---\n{}", answer.render(5));

    // §4.8: the phrase-based path — deterministic semantic-layer lookups.
    println!("--- §4.8 phrase-based translation ---");
    let phrase = "Visualize revenue by region where successful purchases";
    let translation = translate_visualize(phrase, &system.semantics, &schema)?;
    println!("input : {phrase}");
    println!(
        "phrases matched deterministically: {:?}",
        translation.matched_phrases
    );
    for call in &translation.calls {
        println!("  -> {}", datachat::gel::format_skill(call));
    }
    Ok(())
}
