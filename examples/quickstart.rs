//! Quickstart: load a CSV, wrangle it with GEL sentences, train a model,
//! and read the recipe back — the DataChat loop in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use datachat::core::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::new();

    // Register a CSV "file" (this reproduction runs offline; real
    // deployments connect to databases and object stores).
    let mut csv = String::from("day,visitors,signups\n");
    for day in 1..=60 {
        let visitors = 100 + day * 7 + (day % 5) * 11;
        let signups = visitors / 9 + day % 4;
        csv.push_str(&format!("{day},{visitors},{signups}\n"));
    }
    platform.add_csv_file("traffic.csv", csv);

    // Open a session and work in GEL — every sentence is one skill.
    let session = platform.open_session("you");
    session.run_gel("Load data from the file traffic.csv")?;
    session.run_gel("Create a new column conversion as signups / visitors")?;
    session.run_gel("Keep the rows where visitors > 150")?;
    let out = session.run_gel("Show the first 5 rows")?;
    if let datachat::skills::SkillOutput::Text(preview) = &out {
        println!("--- spreadsheet view ---\n{preview}");
    }

    // Data exploration.
    let described = session.run_gel("Describe the column conversion")?;
    if let datachat::skills::SkillOutput::Summaries(summaries) = &described {
        println!("--- describe ---\n{}\n", summaries[0].to_english());
    }

    // Machine learning, one sentence.
    session.run_gel("Train a model named growth to predict signups using day, visitors")?;
    let predicted = session.run_gel("Predict with the model growth")?;
    let table = predicted.as_table().expect("prediction table");
    println!(
        "--- predictions ---\ntrained on {} rows; first predicted value: {}\n",
        table.num_rows(),
        table.value(0, "Predicted_signups")?
    );

    // Save the result; the artifact carries its sliced recipe.
    let artifact = platform.save_artifact(&session, "conversion-analysis")?;
    println!(
        "--- artifact recipe ({} steps) ---",
        artifact.recipe_gel().len()
    );
    for (i, line) in artifact.recipe_gel().iter().enumerate() {
        println!("{:>2}. {line}", i + 1);
    }
    Ok(())
}
