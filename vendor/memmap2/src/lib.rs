//! Offline stand-in for the `memmap2` crate.
//!
//! The real crate wraps `mmap(2)`. This build environment vendors all
//! dependencies, so the stand-in provides the same read-only API surface
//! (`Mmap::map`, `Deref<Target = [u8]>`) backed by one buffered read of
//! the whole file. Callers get identical semantics — an immutable byte
//! view of the file at map time — without the page-fault laziness, which
//! is why the engine's buffered-pread path stays the default and the
//! `mmap` feature is opt-in.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

/// A read-only memory map of a file.
#[derive(Debug)]
pub struct Mmap {
    data: Vec<u8>,
}

impl Mmap {
    /// Map `file` read-only.
    ///
    /// # Safety
    ///
    /// The real memmap2 marks this unsafe because the underlying file must
    /// not be truncated while mapped. The stand-in copies the bytes at map
    /// time, so no such hazard exists; the signature is kept for API
    /// compatibility.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(0))?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Ok(Mmap { data })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("memmap2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"hello mmap")
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&map[..], b"hello mmap");
        assert_eq!(map.len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
