//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendors the subset of
//! the proptest API the workspace's property tests use: the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros, the [`Strategy`]
//! trait with `prop_map` / `prop_filter`, `Just`, numeric-range and
//! tuple strategies, `prop::collection::vec`, `prop::option::of`, and a small
//! character-class regex subset for `&str` strategies (`"[ -~]{0,20}"` style).
//!
//! Differences from upstream are deliberate simplifications: no shrinking
//! (failing inputs are printed verbatim), and generation is deterministic per
//! test name so failures reproduce across runs.

pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!` block configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 128 keeps the suites brisk while
            // still exercising plenty of inputs.
            ProptestConfig { cases: 128 }
        }
    }

    /// Failure raised by `prop_assert!`-family macros inside a test body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator: seeded from the test name, so each property
    /// sees the same input stream on every run (no flaky CI, reproducible
    /// failures without shrinking).
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        pub fn deterministic(test_name: &str) -> Self {
            use rand::SeedableRng;
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }
    }

    impl rand::Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            rand::Rng::next_u64(&mut self.0)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Value-generation strategy (no shrinking in this stand-in).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Local rejection sampling instead of upstream's global rejects.
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 inputs in a row: {}",
                self.reason
            );
        }
    }

    /// `prop_oneof!` backing type: uniform choice over boxed alternatives.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Character-class regex subset for `&str` strategies: a sequence of
    /// `[class]` atoms (ranges like `a-z` plus literal chars) or literal
    /// characters, each optionally followed by `{lo,hi}`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_regex_subset(self, rng)
        }
    }

    fn generate_regex_subset(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a char class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut alpha = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                        for c in lo..=hi {
                            alpha.push(c);
                        }
                        j += 3;
                    } else {
                        alpha.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                alpha
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");

            // Optional {lo,hi} quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("bad quantifier"),
                        hi.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                };
                i = close + 1;
                (lo, hi)
            } else {
                (1, 1)
            };

            let count = rng.random_range(lo..=hi);
            for _ in 0..count {
                out.push(alphabet[rng.random_range(0..alphabet.len())]);
            }
        }
        out
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// `prop::collection::vec(strategy, lo..hi)`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        pub struct OptionStrategy<S>(S);

        /// `prop::option::of(strategy)`: `None` half the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.random_range(0..2u32) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;) => {};
    (@impl $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        // A diverging $body makes this unreachable; fine.
                        #[allow(unreachable_code)]
                        return ::std::result::Result::Ok(());
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    l,
                    r
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -10i64..10, y in 0usize..5) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!(y < 5);
        }

        /// Doc comments before test items must parse.
        #[test]
        fn combinators_compose(v in prop::collection::vec(prop::option::of(0i64..3), 0..10)) {
            prop_assert!(v.len() < 10);
            for item in v.iter().flatten() {
                prop_assert!((0..3).contains(item));
            }
            return Ok(());
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![
            Just("fixed".to_string()),
            (0u32..100).prop_map(|n| format!("n{n}")),
            "[a-z]{1,4}",
        ]) {
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn regex_subset_shapes(s in "[a-z][a-z0-9_]{0,10}") {
            prop_assert!(!s.is_empty() && s.len() <= 11, "bad shape: {s:?}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn filters_apply(x in (0i64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn printable_ascii_class() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("ascii");
        for _ in 0..200 {
            let s = "[ -~]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!((0i64..1000).generate(&mut a), (0i64..1000).generate(&mut b));
        }
    }
}
