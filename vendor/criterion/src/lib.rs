//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace benches use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple wall-clock measurement loop (warmup + N samples,
//! reporting the median per-iteration time). Statistical rigor is traded for
//! zero dependencies; trends across runs are still meaningful.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported inhibitor so `criterion::black_box` call sites compile.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("== group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 30,
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

/// Benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_samples(self.sample_size, &mut f);
        report(&self.name, id, &stats);
        self
    }

    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let stats = run_samples(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report(&self.name, &id.id, &stats);
        self
    }

    pub fn finish(&mut self) {}
}

fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> Vec<Duration> {
    // Warmup run, also used to size the inner iteration count so fast
    // closures are measured over enough iterations to rise above timer noise.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        out.push(b.elapsed / iters as u32);
    }
    out.sort_unstable();
    out
}

fn report(group: &str, id: &str, sorted: &[Duration]) {
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    println!(
        "{group}/{id}: median {median:?} (min {lo:?}, max {hi:?}, {} samples)",
        sorted.len()
    );
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sized", 5usize), &5usize, |b, &n| {
            b.iter(|| (0..n).count())
        });
        group.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
