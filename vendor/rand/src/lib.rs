//! Offline stand-in for the `rand` 0.9 crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! narrow API slice it actually uses: `StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{random, random_range}` over the primitive ranges that appear in the
//! codebase, `seq::SliceRandom::shuffle`, and `seq::index::sample`.
//!
//! Determinism is part of the contract here — seeds are used for reproducible
//! demo data, sampling, and tests — but the exact stream is *not* meant to be
//! bit-compatible with upstream `rand`. The generator is xoshiro256++ seeded
//! via SplitMix64, both public-domain algorithms.

/// Core random-value trait, mirroring the parts of `rand::Rng` in use.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T` (only `f64` and the basic
    /// integer widths are supported by this stand-in).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Seeding trait, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator seeded with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Marker for types producible by [`Rng::random`].
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction,
/// without the rejection step — bias is negligible for the bounds used here
/// and irrelevant for non-cryptographic demo/sampling data).
fn below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u: f64 = f64::from_rng(rng);
        lo + u * (hi - lo)
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = super::below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        use super::super::Rng;

        /// Result of [`sample`], mirroring `rand::seq::index::IndexVec`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// `amount` distinct indices drawn uniformly from `0..length`
        /// (partial Fisher–Yates over a scratch index vector).
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut idx: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + super::super::below(rng, (length - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(amount);
            IndexVec(idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.random_range(-40.0f64..40.0);
            assert!((-40.0..40.0).contains(&f));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn index_sample_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let picked: Vec<usize> = super::seq::index::sample(&mut rng, 50, 20)
            .into_iter()
            .collect();
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(picked.iter().all(|&i| i < 50));
    }
}
