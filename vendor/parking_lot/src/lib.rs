//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the API shape the workspace uses — `Mutex::lock()` and
//! `RwLock::read()/write()` returning guards directly rather than `Result`s.
//! Poisoning is recovered rather than propagated, matching `parking_lot`'s
//! "no poisoning" semantics closely enough for our usage (a poisoned lock
//! here means a panicking test thread, and the data is still consistent
//! enough to inspect).

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};
use std::time::Duration;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Whether a timed wait returned because the timeout elapsed (mirrors
/// `parking_lot::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with `parking_lot`'s in-place guard API: `wait`
/// borrows the guard mutably instead of consuming it. Internally the
/// std guard is moved out and back with `ptr::read`/`ptr::write`; the
/// window between them performs no call that can unwind (poisoning is
/// recovered, as everywhere in this stand-in), so the guard is never
/// double-dropped.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let owned = std::ptr::read(guard);
            let owned = self.0.wait(owned).unwrap_or_else(|p| p.into_inner());
            std::ptr::write(guard, owned);
        }
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let owned = std::ptr::read(guard);
            let (owned, result) = match self.0.wait_timeout(owned, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            std::ptr::write(guard, owned);
            WaitTimeoutResult(result.timed_out())
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        assert!(m.try_lock().is_some());
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals_across_threads() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cond) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cond.wait(&mut ready);
                }
            })
        };
        {
            let (lock, cond) = &*pair;
            *lock.lock() = true;
            cond.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cond = Condvar::new();
        let mut guard = lock.lock();
        let result = cond.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
