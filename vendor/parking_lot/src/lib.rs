//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the API shape the workspace uses — `Mutex::lock()` and
//! `RwLock::read()/write()` returning guards directly rather than `Result`s.
//! Poisoning is recovered rather than propagated, matching `parking_lot`'s
//! "no poisoning" semantics closely enough for our usage (a poisoned lock
//! here means a panicking test thread, and the data is still consistent
//! enough to inspect).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        assert!(m.try_lock().is_some());
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
