//! Property tests for the SQL layer: text round-trips and the
//! nested-vs-flattened semantic equivalence that §2.2's optimization
//! depends on.

use std::collections::HashMap;

use dc_engine::{AggFunc, AggSpec, Column, Expr, Table};
use dc_sql::{execute, generate_sql, parse, ExecStats, QueryStep};
use proptest::prelude::*;

fn base_table(rows: usize) -> HashMap<String, Table> {
    let mut m = HashMap::new();
    m.insert(
        "base_table".to_string(),
        Table::new(vec![
            ("a", Column::from_ints((0..rows as i64).collect())),
            (
                "b",
                Column::from_ints((0..rows as i64).map(|v| (v * 7) % 100).collect()),
            ),
            (
                "g",
                Column::from_strs((0..rows).map(|i| format!("k{}", i % 5)).collect::<Vec<_>>()),
            ),
        ])
        .unwrap(),
    );
    m
}

/// Random SQL-able step chains over the fixed schema (a, b: Int; g: Str).
fn step() -> impl Strategy<Value = QueryStep> {
    prop_oneof![
        (-50i64..150).prop_map(|v| QueryStep::Filter {
            predicate: Expr::col("b").gt(Expr::lit(v)),
        }),
        (-50i64..150).prop_map(|v| QueryStep::Filter {
            predicate: Expr::col("a").le(Expr::lit(v)),
        }),
        Just(QueryStep::SelectColumns {
            columns: vec!["a".into(), "b".into(), "g".into()],
        }),
        Just(QueryStep::SelectColumns {
            columns: vec!["a".into(), "g".into()],
        }),
        prop_oneof![Just(true), Just(false)].prop_map(|asc| QueryStep::Sort {
            keys: vec![("a".into(), asc)],
        }),
        (1usize..200).prop_map(|n| QueryStep::Limit { n }),
        Just(QueryStep::Distinct),
        Just(QueryStep::Compute {
            keys: vec!["g".into()],
            aggs: vec![AggSpec::new(AggFunc::Count, "a", "n")],
        }),
    ]
}

/// Chains whose steps are all applicable in sequence: projections may
/// drop `b`, so later steps must not reference it. Filter the generated
/// chains semantically by attempting nested execution first.
fn chain() -> impl Strategy<Value = Vec<QueryStep>> {
    prop::collection::vec(step(), 1..6).prop_map(|mut steps| {
        steps.insert(
            0,
            QueryStep::Scan {
                table: "base_table".into(),
            },
        );
        steps
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flattened and nested generation agree semantically whenever the
    /// chain is executable at all, and flattening never produces a deeper
    /// query.
    #[test]
    fn flattening_preserves_semantics(steps in chain()) {
        let provider = base_table(300);
        let nested = generate_sql(&steps, false).unwrap();
        let flat = generate_sql(&steps, true).unwrap();
        prop_assert!(flat.nesting_depth() <= nested.nesting_depth());
        let mut sn = ExecStats::default();
        let nested_result = execute(&nested, &provider, &mut sn);
        let mut sf = ExecStats::default();
        let flat_result = execute(&flat, &provider, &mut sf);
        match (nested_result, flat_result) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a, b);
                prop_assert!(sf.query_blocks <= sn.query_blocks);
            }
            // Invalid chains (dead references to dropped columns) may be
            // optimized away by flattening — the generator's documented
            // dead-code-elimination contract. The flat form must never
            // error where the nested form succeeds, though.
            (Err(_), _) => {}
            (Ok(a), Err(e)) => {
                prop_assert!(false, "flat errored where nested succeeded: {e} (nested gave {} rows)", a.num_rows());
            }
        }
    }

    /// SQL text round-trips: parse(to_sql(q)) == q for generated queries.
    #[test]
    fn sql_text_roundtrip(steps in chain()) {
        for flatten in [false, true] {
            let q = generate_sql(&steps, flatten).unwrap();
            let text = q.to_sql();
            let reparsed = parse(&text)
                .unwrap_or_else(|e| panic!("{text} failed to reparse: {e}"));
            prop_assert_eq!(reparsed, q, "text was {}", text);
        }
    }

    /// The executor never panics on arbitrary-but-lexable input: parse
    /// errors and plan errors are Errors, not crashes.
    #[test]
    fn executor_is_total(query in "[ -~]{0,60}") {
        let provider = base_table(10);
        let _ = dc_sql::run_sql(&query, &provider); // must not panic
    }

    /// Limits commute with the flattener's min-merge: two limits behave
    /// as the smaller one.
    #[test]
    fn limit_merge_is_min(a in 1usize..100, b in 1usize..100) {
        let provider = base_table(300);
        let steps = vec![
            QueryStep::Scan { table: "base_table".into() },
            QueryStep::Limit { n: a },
            QueryStep::Limit { n: b },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        prop_assert_eq!(flat.limit, Some(a.min(b)));
        let mut s = ExecStats::default();
        let out = execute(&flat, &provider, &mut s).unwrap();
        prop_assert_eq!(out.num_rows(), a.min(b));
    }
}
