//! Recursive-descent SQL parser for the DataChat dialect.
//!
//! The dialect covers what the platform's execution tasks generate:
//! `SELECT [DISTINCT] items FROM <table | (subquery) [AS alias]>
//! [JOIN ... ON a = b [AND ...]]* [WHERE expr] [GROUP BY cols]
//! [HAVING expr] [ORDER BY col [ASC|DESC], ...] [LIMIT n]`, with a full
//! scalar expression grammar (arithmetic, comparison, logic, `BETWEEN`,
//! `IN`, `IS NULL`, function calls, `CAST`, date literals).

use dc_engine::date::parse_date;
use dc_engine::{AggFunc, BinaryOp, DataType, Expr, JoinType, ScalarFunc, UnaryOp, Value};

use crate::ast::{JoinClause, Select, SelectItem, TableRef};
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Sym, Token};

/// Parse one SELECT statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Select> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let select = p.parse_select()?;
    if p.peek() == &Token::Symbol(Sym::Semicolon) {
        p.advance();
    }
    p.expect_eof()?;
    Ok(select)
}

/// Parse a scalar expression on its own (used by GEL's filter phrases).
pub fn parse_expr(text: &str) -> Result<Expr> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_or()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(
                format!("expected {}", kw.to_uppercase()),
                self.peek().describe(),
            ))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == &Token::Symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SqlError::parse(
                format!("expected {s:?}"),
                self.peek().describe(),
            ))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(SqlError::parse(
                "unexpected trailing input",
                self.peek().describe(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            t => Err(SqlError::parse("expected identifier", t.describe())),
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("from") {
            Some(self.parse_table_ref()?)
        } else {
            None
        };
        let mut joins = Vec::new();
        loop {
            let how = if self.peek().is_kw("join") || self.peek().is_kw("inner") {
                self.eat_kw("inner");
                JoinType::Inner
            } else if self.peek().is_kw("left") {
                self.advance();
                self.eat_kw("outer");
                JoinType::Left
            } else if self.peek().is_kw("right") {
                self.advance();
                self.eat_kw("outer");
                JoinType::Right
            } else if self.peek().is_kw("full") {
                self.advance();
                self.eat_kw("outer");
                JoinType::Full
            } else {
                break;
            };
            self.expect_kw("join")?;
            let table = self.parse_table_ref()?;
            self.expect_kw("on")?;
            let mut on = Vec::new();
            loop {
                let l = self.qualified_ident()?;
                self.expect_sym(Sym::Eq)?;
                let r = self.qualified_ident()?;
                on.push((l, r));
                if !self.eat_kw("and") {
                    break;
                }
            }
            joins.push(JoinClause { table, how, on });
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_or()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.qualified_ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_or()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.qualified_ident()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((col, asc));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Token::Int(n) if n >= 0 => Some(n as usize),
                t => return Err(SqlError::parse("expected non-negative LIMIT", t.describe())),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// An identifier, optionally qualified (`t.col` keeps only `col` —
    /// this dialect resolves columns by name after joins).
    fn qualified_ident(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat_sym(Sym::Dot) {
            self.ident()
        } else {
            Ok(first)
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate at the top level?
        if let Token::Ident(name) = self.peek() {
            if AggFunc::from_name(name).is_some() && self.peek2() == &Token::Symbol(Sym::LParen) {
                let func = AggFunc::from_name(name).unwrap();
                self.advance();
                self.advance(); // (
                let arg = if self.eat_sym(Sym::Star) {
                    None
                } else {
                    Some(self.qualified_ident()?)
                };
                self.expect_sym(Sym::RParen)?;
                let alias = self.parse_alias()?;
                // COUNT(*) maps to CountRecords.
                let func = if func == AggFunc::Count && arg.is_none() {
                    AggFunc::CountRecords
                } else {
                    func
                };
                return Ok(SelectItem::Aggregate { func, arg, alias });
            }
        }
        let expr = self.parse_or()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        // Bare alias: an identifier that is not a clause keyword.
        if let Token::Ident(s) = self.peek() {
            const CLAUSES: &[&str] = &[
                "from", "where", "group", "having", "order", "limit", "join", "inner", "left",
                "right", "full", "on", "and", "or", "as", "asc", "desc", "union",
            ];
            if !CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.advance();
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        if self.eat_sym(Sym::LParen) {
            let inner = self.parse_select()?;
            self.expect_sym(Sym::RParen)?;
            let alias = self.parse_alias()?;
            Ok(TableRef::Subquery(Box::new(inner), alias))
        } else {
            let mut name = self.ident()?;
            // Allow db.table qualification.
            if self.eat_sym(Sym::Dot) {
                name = self.ident()?;
            }
            Ok(TableRef::Named(name))
        }
    }

    // --- expression grammar: or > and > not > cmp > add > mul > unary ---

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(self.parse_not()?.not())
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.peek().is_kw("is") {
            self.advance();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(if negated {
                left.is_not_null()
            } else {
                left.is_null()
            });
        }
        // [NOT] BETWEEN / IN
        let negated = if self.peek().is_kw("not")
            && (self.peek2().is_kw("between") || self.peek2().is_kw("in"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_sym(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_literal_value()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(SqlError::parse(
                "expected BETWEEN or IN after NOT",
                self.peek().describe(),
            ));
        }
        let op = match self.peek() {
            Token::Symbol(Sym::Eq) => Some(BinaryOp::Eq),
            Token::Symbol(Sym::Neq) => Some(BinaryOp::Neq),
            Token::Symbol(Sym::Lt) => Some(BinaryOp::Lt),
            Token::Symbol(Sym::Le) => Some(BinaryOp::Le),
            Token::Symbol(Sym::Gt) => Some(BinaryOp::Gt),
            Token::Symbol(Sym::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Plus) => BinaryOp::Add,
                Token::Symbol(Sym::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Star) => BinaryOp::Mul,
                Token::Symbol(Sym::Slash) => BinaryOp::Div,
                Token::Symbol(Sym::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.parse_unary()?;
            // Fold negative literals.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                e => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(e),
                },
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Token::Int(i) => Ok(Expr::lit(i)),
            Token::Float(f) => Ok(Expr::lit(f)),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::QuotedIdent(s) => Ok(Expr::col(s)),
            Token::Symbol(Sym::LParen) => {
                let e = self.parse_or()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                // Keyword literals.
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::lit(false));
                }
                // DATE 'yyyy-mm-dd'
                if name.eq_ignore_ascii_case("date") {
                    if let Token::Str(s) = self.peek().clone() {
                        self.advance();
                        let d = parse_date(&s).map_err(|e| SqlError::plan(e.to_string()))?;
                        return Ok(Expr::Literal(Value::Date(d)));
                    }
                    // Fall through: a column literally named "date".
                }
                // CAST(expr AS type)
                if name.eq_ignore_ascii_case("cast") && self.peek() == &Token::Symbol(Sym::LParen) {
                    self.advance();
                    let e = self.parse_or()?;
                    self.expect_kw("as")?;
                    let tname = self.ident()?;
                    let to = parse_type(&tname)?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(e.cast(to));
                }
                // Scalar function call.
                if self.peek() == &Token::Symbol(Sym::LParen) {
                    if let Some(func) = ScalarFunc::from_name(&name) {
                        self.advance();
                        let mut args = Vec::new();
                        if self.peek() != &Token::Symbol(Sym::RParen) {
                            loop {
                                args.push(self.parse_or()?);
                                if !self.eat_sym(Sym::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect_sym(Sym::RParen)?;
                        return Ok(Expr::func(func, args));
                    }
                    return Err(SqlError::parse("unknown function", name));
                }
                // Qualified column `t.col`.
                if self.eat_sym(Sym::Dot) {
                    return Ok(Expr::col(self.ident()?));
                }
                Ok(Expr::col(name))
            }
            t => Err(SqlError::parse("expected expression", t.describe())),
        }
    }

    fn parse_literal_value(&mut self) -> Result<Value> {
        let negate = self.eat_sym(Sym::Minus);
        match self.advance() {
            Token::Int(i) => Ok(Value::Int(if negate { -i } else { i })),
            Token::Float(f) => Ok(Value::Float(if negate { -f } else { f })),
            Token::Str(s) if !negate => Ok(Value::Str(s)),
            Token::Ident(s) if !negate && s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Token::Ident(s) if !negate && s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Token::Ident(s) if !negate && s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Token::Ident(s) if !negate && s.eq_ignore_ascii_case("date") => {
                if let Token::Str(d) = self.advance() {
                    let days = parse_date(&d).map_err(|e| SqlError::plan(e.to_string()))?;
                    Ok(Value::Date(days))
                } else {
                    Err(SqlError::parse("expected date string", "DATE"))
                }
            }
            t => Err(SqlError::parse("expected literal", t.describe())),
        }
    }
}

fn parse_type(name: &str) -> Result<DataType> {
    match name.to_ascii_lowercase().as_str() {
        "int" | "integer" | "bigint" => Ok(DataType::Int),
        "float" | "double" | "real" => Ok(DataType::Float),
        "str" | "text" | "varchar" | "string" => Ok(DataType::Str),
        "bool" | "boolean" => Ok(DataType::Bool),
        "date" => Ok(DataType::Date),
        other => Err(SqlError::parse("unknown type", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT a, b FROM t").unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from, Some(TableRef::Named("t".into())));
    }

    #[test]
    fn select_star_with_where_limit() {
        let q = parse("SELECT * FROM t WHERE a > 1 AND b = 'x' LIMIT 5;").unwrap();
        assert_eq!(q.items, vec![SelectItem::Wildcard]);
        assert!(q.where_clause.is_some());
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse("SELECT party_sobriety, COUNT(case_id) AS NumberOfCases FROM parties GROUP BY party_sobriety").unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.group_by, vec!["party_sobriety"]);
        match &q.items[1] {
            SelectItem::Aggregate { func, arg, alias } => {
                assert_eq!(*func, AggFunc::Count);
                assert_eq!(arg.as_deref(), Some("case_id"));
                assert_eq!(alias.as_deref(), Some("NumberOfCases"));
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn count_star_is_count_records() {
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Aggregate { func, arg, .. } => {
                assert_eq!(*func, AggFunc::CountRecords);
                assert!(arg.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subquery_nesting() {
        let q = parse("SELECT a FROM (SELECT a, b FROM (SELECT * FROM base))").unwrap();
        assert_eq!(q.nesting_depth(), 3);
    }

    #[test]
    fn joins() {
        let q = parse(
            "SELECT * FROM collisions LEFT JOIN parties ON collisions.case_id = parties.case_id",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].how, JoinType::Left);
        assert_eq!(
            q.joins[0].on,
            vec![("case_id".to_string(), "case_id".to_string())]
        );
    }

    #[test]
    fn multi_condition_join() {
        let q = parse("SELECT * FROM a JOIN b ON a.x = b.x AND a.y = b.y").unwrap();
        assert_eq!(q.joins[0].on.len(), 2);
    }

    #[test]
    fn order_by_directions() {
        let q = parse("SELECT * FROM t ORDER BY a DESC, b ASC, c").unwrap();
        assert_eq!(
            q.order_by,
            vec![
                ("a".to_string(), false),
                ("b".to_string(), true),
                ("c".to_string(), true)
            ]
        );
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 = 7").unwrap();
        assert_eq!(e.to_sql(), "((1 + (2 * 3)) = 7)");
        let e = parse_expr("NOT a AND b OR c").unwrap();
        assert_eq!(e.to_sql(), "(((NOT a) AND b) OR c)");
    }

    #[test]
    fn between_in_isnull() {
        let e = parse_expr("age BETWEEN 18 AND 30").unwrap();
        assert!(matches!(e, Expr::Between { .. }));
        let e = parse_expr("x NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
        let e = parse_expr("x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNotNull(_)));
    }

    #[test]
    fn date_literal() {
        let e = parse_expr("d >= DATE '2005-01-01'").unwrap();
        let sql = e.to_sql();
        assert!(sql.contains("DATE '2005-01-01'"), "{sql}");
    }

    #[test]
    fn cast_and_functions() {
        let e = parse_expr("CAST(x AS float) + abs(y)").unwrap();
        assert_eq!(e.to_sql(), "(CAST(x AS Float) + abs(y))");
        assert!(parse_expr("nosuchfunc(x)").is_err());
    }

    #[test]
    fn negative_numbers() {
        let e = parse_expr("x > -5").unwrap();
        assert_eq!(e.to_sql(), "(x > -5)");
        let e = parse_expr("x IN (-1, -2.5)").unwrap();
        if let Expr::InList { list, .. } = e {
            assert_eq!(list[0], Value::Int(-1));
            assert_eq!(list[1], Value::Float(-2.5));
        } else {
            panic!("expected InList");
        }
    }

    #[test]
    fn quoted_identifiers_and_aliases() {
        let q = parse("SELECT \"party type\" AS pt, a b FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(*expr, Expr::col("party type"));
                assert_eq!(alias.as_deref(), Some("pt"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &q.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("b")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("FROM t").is_err());
        assert!(parse("SELECT a FROM t trailing garbage ,").is_err());
    }

    #[test]
    fn roundtrip_parse_to_sql_parse() {
        let sql = "SELECT a, SUM(b) AS s FROM t WHERE (a > 1) GROUP BY a ORDER BY s DESC LIMIT 3";
        let q = parse(sql).unwrap();
        let q2 = parse(&q.to_sql()).unwrap();
        assert_eq!(q, q2);
    }
}
