//! SQL tokenizer.

use crate::error::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased check happens in the parser).
    Ident(String),
    /// Double-quoted identifier (exact case, quotes stripped).
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string (escapes resolved).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
    /// End of input.
    Eof,
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Dot,
    Semicolon,
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Render for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => s.clone(),
            Token::QuotedIdent(s) => format!("\"{s}\""),
            Token::Int(i) => i.to_string(),
            Token::Float(f) => f.to_string(),
            Token::Str(s) => format!("'{s}'"),
            Token::Symbol(s) => format!("{s:?}"),
            Token::Eof => "<end of input>".to_string(),
        }
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                out.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Symbol(Sym::Neq));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Sym::Neq));
                i += 2;
            }
            '\'' => {
                let (s, next) = read_quoted(input, i, '\'')?;
                out.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let (s, next) = read_quoted(input, i, '"')?;
                out.push(Token::QuotedIdent(s));
                i = next;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        message: format!("bad float {text}"),
                        position: start,
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        message: format!("bad integer {text}"),
                        position: start,
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            c => {
                return Err(SqlError::Lex {
                    message: format!("unexpected character {c:?}"),
                    position: i,
                })
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn read_quoted(input: &str, start: usize, quote: char) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let q = quote as u8;
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                out.push(quote);
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Preserve UTF-8: find the char at byte i.
            let ch = input[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(SqlError::Lex {
        message: "unterminated quoted token".into(),
        position: start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 10").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Symbol(Sym::Comma));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"party type\"").unwrap();
        assert_eq!(toks[0], Token::QuotedIdent("party type".into()));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.25 1e3 7.5e-2").unwrap();
        assert_eq!(toks[0], Token::Int(42));
        assert_eq!(toks[1], Token::Float(3.25));
        assert_eq!(toks[2], Token::Float(1000.0));
        assert_eq!(toks[3], Token::Float(0.075));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        use Sym::*;
        let expected = [Lt, Le, Gt, Ge, Eq, Neq, Neq];
        for (t, e) in toks.iter().zip(expected) {
            assert_eq!(*t, Token::Symbol(e));
        }
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- comment\n a").unwrap();
        assert_eq!(toks.len(), 3); // SELECT, a, EOF
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(tokenize("SELECT #"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'héllo'").unwrap();
        assert_eq!(toks[0], Token::Str("héllo".into()));
    }
}
