//! SQL abstract syntax tree.

use dc_engine::{AggFunc, Expr, JoinType};

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A scalar expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
    /// An aggregate call (`COUNT(*)`, `SUM(x)`, ...) with an optional
    /// alias. Aggregates appear only at the top level of select items in
    /// this dialect.
    Aggregate {
        func: AggFunc,
        /// `None` encodes `COUNT(*)`.
        arg: Option<String>,
        alias: Option<String>,
    },
}

impl SelectItem {
    /// The output column name this item produces.
    pub fn output_name(&self, position: usize) -> String {
        match self {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column(c) => c.clone(),
                    _ => format!("col_{}", position + 1),
                },
            },
            SelectItem::Aggregate { func, arg, alias } => match alias {
                Some(a) => a.clone(),
                None => dc_engine::AggSpec::default_output(*func, arg.as_deref()),
            },
        }
    }
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base table.
    Named(String),
    /// A parenthesized subquery with an optional alias. Each subquery is
    /// its own query block at execution time — the §2.2 cost the
    /// flattening optimization removes.
    Subquery(Box<Select>, Option<String>),
}

/// One JOIN clause (equi-joins on column pairs).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: TableRef,
    pub how: JoinType,
    /// Pairs of (left column, right column) from the ON conjunction.
    pub on: Vec<(String, String)>,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<String>,
    pub having: Option<Expr>,
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
}

impl Select {
    /// A bare `SELECT * FROM name`.
    pub fn scan(name: impl Into<String>) -> Select {
        Select {
            items: vec![SelectItem::Wildcard],
            from: Some(TableRef::Named(name.into())),
            ..Select::default()
        }
    }

    /// Whether any select item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }))
    }

    /// Depth of subquery nesting (1 for a flat query).
    pub fn nesting_depth(&self) -> usize {
        let from_depth = match &self.from {
            Some(TableRef::Subquery(inner, _)) => inner.nesting_depth(),
            _ => 0,
        };
        let join_depth = self
            .joins
            .iter()
            .map(|j| match &j.table {
                TableRef::Subquery(inner, _) => inner.nesting_depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        1 + from_depth.max(join_depth)
    }

    /// Render back to SQL text.
    pub fn to_sql(&self) -> String {
        let mut s = String::from("SELECT ");
        if self.distinct {
            s.push_str("DISTINCT ");
        }
        let items: Vec<String> = self
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::Expr { expr, alias } => match alias {
                    Some(a) => format!("{} AS {}", expr.to_sql(), dc_engine::expr::quote_ident(a)),
                    None => expr.to_sql(),
                },
                SelectItem::Aggregate { func, arg, alias } => {
                    let call = match arg {
                        Some(c) => format!(
                            "{}({})",
                            func.name().to_uppercase(),
                            dc_engine::expr::quote_ident(c)
                        ),
                        None => "COUNT(*)".to_string(),
                    };
                    match alias {
                        Some(a) => {
                            format!("{call} AS {}", dc_engine::expr::quote_ident(a))
                        }
                        None => call,
                    }
                }
            })
            .collect();
        s.push_str(&items.join(", "));
        if let Some(from) = &self.from {
            s.push_str(" FROM ");
            s.push_str(&table_ref_sql(from));
        }
        for j in &self.joins {
            s.push(' ');
            s.push_str(j.how.sql());
            s.push(' ');
            s.push_str(&table_ref_sql(&j.table));
            s.push_str(" ON ");
            let conds: Vec<String> =
                j.on.iter()
                    .map(|(l, r)| {
                        format!(
                            "{} = {}",
                            dc_engine::expr::quote_ident(l),
                            dc_engine::expr::quote_ident(r)
                        )
                    })
                    .collect();
            s.push_str(&conds.join(" AND "));
        }
        if let Some(w) = &self.where_clause {
            s.push_str(" WHERE ");
            s.push_str(&w.to_sql());
        }
        if !self.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            let keys: Vec<String> = self
                .group_by
                .iter()
                .map(|k| dc_engine::expr::quote_ident(k))
                .collect();
            s.push_str(&keys.join(", "));
        }
        if let Some(h) = &self.having {
            s.push_str(" HAVING ");
            s.push_str(&h.to_sql());
        }
        if !self.order_by.is_empty() {
            s.push_str(" ORDER BY ");
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|(k, asc)| {
                    format!(
                        "{}{}",
                        dc_engine::expr::quote_ident(k),
                        if *asc { "" } else { " DESC" }
                    )
                })
                .collect();
            s.push_str(&keys.join(", "));
        }
        if let Some(n) = self.limit {
            s.push_str(&format!(" LIMIT {n}"));
        }
        s
    }
}

fn table_ref_sql(t: &TableRef) -> String {
    match t {
        TableRef::Named(n) => dc_engine::expr::quote_ident(n),
        TableRef::Subquery(q, alias) => match alias {
            Some(a) => format!("({}) AS {}", q.to_sql(), dc_engine::expr::quote_ident(a)),
            None => format!("({})", q.to_sql()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_to_sql() {
        assert_eq!(Select::scan("parties").to_sql(), "SELECT * FROM parties");
    }

    #[test]
    fn nesting_depth_counts() {
        let inner = Select::scan("base");
        let mid = Select {
            items: vec![SelectItem::Wildcard],
            from: Some(TableRef::Subquery(Box::new(inner), None)),
            ..Select::default()
        };
        let outer = Select {
            items: vec![SelectItem::Wildcard],
            from: Some(TableRef::Subquery(Box::new(mid), None)),
            ..Select::default()
        };
        assert_eq!(outer.nesting_depth(), 3);
        assert_eq!(Select::scan("t").nesting_depth(), 1);
    }

    #[test]
    fn output_names() {
        let item = SelectItem::Aggregate {
            func: AggFunc::Avg,
            arg: Some("Age".into()),
            alias: None,
        };
        assert_eq!(item.output_name(0), "AvgAge");
        let item = SelectItem::Expr {
            expr: Expr::col("x").add(Expr::lit(1i64)),
            alias: None,
        };
        assert_eq!(item.output_name(2), "col_3");
    }

    #[test]
    fn full_query_roundtrips_text() {
        let q = Select {
            distinct: true,
            items: vec![
                SelectItem::Expr {
                    expr: Expr::col("a"),
                    alias: None,
                },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: Some("b".into()),
                    alias: Some("n".into()),
                },
            ],
            from: Some(TableRef::Named("t".into())),
            where_clause: Some(Expr::col("a").gt(Expr::lit(1i64))),
            group_by: vec!["a".into()],
            order_by: vec![("n".into(), false)],
            limit: Some(10),
            ..Select::default()
        };
        let sql = q.to_sql();
        assert_eq!(
            sql,
            "SELECT DISTINCT a, COUNT(b) AS n FROM t WHERE (a > 1) GROUP BY a ORDER BY n DESC LIMIT 10"
        );
    }
}
