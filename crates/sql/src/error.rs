//! SQL-layer errors.

use std::fmt;

/// Errors from lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error with byte offset.
    Lex { message: String, position: usize },
    /// Parse error with the offending token.
    Parse { message: String, token: String },
    /// Unknown table.
    TableNotFound { name: String },
    /// Semantic error (unknown column, bad aggregate use, ...).
    Plan { message: String },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
}

impl SqlError {
    /// Convenience constructor for [`SqlError::Plan`].
    pub fn plan(message: impl Into<String>) -> Self {
        SqlError::Plan {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SqlError::Parse`].
    pub fn parse(message: impl Into<String>, token: impl Into<String>) -> Self {
        SqlError::Parse {
            message: message.into(),
            token: token.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { message, token } => {
                write!(f, "parse error near {token:?}: {message}")
            }
            SqlError::TableNotFound { name } => write!(f, "table not found: {name:?}"),
            SqlError::Plan { message } => write!(f, "planning error: {message}"),
            SqlError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dc_engine::EngineError> for SqlError {
    fn from(e: dc_engine::EngineError) -> Self {
        SqlError::Engine(e)
    }
}

/// Result alias for the SQL crate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert!(SqlError::parse("expected FROM", "WHERE")
            .to_string()
            .contains("WHERE"));
        assert!(SqlError::plan("unknown column x").to_string().contains("x"));
        let e = SqlError::Lex {
            message: "bad char".into(),
            position: 3,
        };
        assert!(e.to_string().contains("byte 3"));
    }
}
