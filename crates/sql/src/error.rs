//! SQL-layer errors.

use std::fmt;
use std::sync::Arc;

/// Errors from lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone)]
pub enum SqlError {
    /// Lexical error with byte offset.
    Lex { message: String, position: usize },
    /// Parse error with the offending token.
    Parse { message: String, token: String },
    /// Unknown table.
    TableNotFound { name: String },
    /// Semantic error (unknown column, bad aggregate use, ...).
    Plan { message: String },
    /// A table provider failed. Keeps the provider's error as a live
    /// `source()` (instead of flattening it to a string) and records
    /// whether the failure is worth retrying, since this crate cannot
    /// name the provider's concrete error type without a dependency
    /// cycle.
    Provider {
        retryable: bool,
        source: Arc<dyn std::error::Error + Send + Sync>,
    },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
}

impl SqlError {
    /// Convenience constructor for [`SqlError::Plan`].
    pub fn plan(message: impl Into<String>) -> Self {
        SqlError::Plan {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SqlError::Parse`].
    pub fn parse(message: impl Into<String>, token: impl Into<String>) -> Self {
        SqlError::Parse {
            message: message.into(),
            token: token.into(),
        }
    }

    /// Wrap a table-provider failure, preserving it as `source()`.
    pub fn provider(
        source: impl std::error::Error + Send + Sync + 'static,
        retryable: bool,
    ) -> Self {
        SqlError::Provider {
            retryable,
            source: Arc::new(source),
        }
    }

    /// Whether retrying the query can plausibly succeed. Only provider
    /// failures flagged retryable (e.g. a transient storage fault)
    /// qualify; syntax and planning errors never do.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SqlError::Provider {
                retryable: true,
                ..
            }
        )
    }
}

impl PartialEq for SqlError {
    fn eq(&self, other: &Self) -> bool {
        use SqlError::*;
        match (self, other) {
            (
                Lex {
                    message: m1,
                    position: p1,
                },
                Lex {
                    message: m2,
                    position: p2,
                },
            ) => m1 == m2 && p1 == p2,
            (
                Parse {
                    message: m1,
                    token: t1,
                },
                Parse {
                    message: m2,
                    token: t2,
                },
            ) => m1 == m2 && t1 == t2,
            (TableNotFound { name: n1 }, TableNotFound { name: n2 }) => n1 == n2,
            (Plan { message: m1 }, Plan { message: m2 }) => m1 == m2,
            // Provider sources are type-erased; compare by effect.
            (
                Provider {
                    retryable: r1,
                    source: s1,
                },
                Provider {
                    retryable: r2,
                    source: s2,
                },
            ) => r1 == r2 && s1.to_string() == s2.to_string(),
            (Engine(e1), Engine(e2)) => e1 == e2,
            _ => false,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { message, token } => {
                write!(f, "parse error near {token:?}: {message}")
            }
            SqlError::TableNotFound { name } => write!(f, "table not found: {name:?}"),
            SqlError::Plan { message } => write!(f, "planning error: {message}"),
            SqlError::Provider { source, .. } => write!(f, "table provider error: {source}"),
            SqlError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Engine(e) => Some(e),
            SqlError::Provider { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<dc_engine::EngineError> for SqlError {
    fn from(e: dc_engine::EngineError) -> Self {
        SqlError::Engine(e)
    }
}

/// Result alias for the SQL crate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_all_variants() {
        assert!(SqlError::parse("expected FROM", "WHERE")
            .to_string()
            .contains("WHERE"));
        assert!(SqlError::plan("unknown column x").to_string().contains("x"));
        let e = SqlError::Lex {
            message: "bad char".into(),
            position: 3,
        };
        assert!(e.to_string().contains("byte 3"));
    }

    #[test]
    fn provider_preserves_source_and_retryability() {
        let inner = dc_engine::EngineError::column_not_found("c");
        let e = SqlError::provider(inner.clone(), true);
        assert!(e.is_retryable());
        assert!(e.to_string().contains("table provider error"));
        // The source chain survives instead of being flattened.
        let src = e.source().expect("provider keeps its source");
        assert_eq!(src.to_string(), inner.to_string());
        assert!(!SqlError::provider(inner, false).is_retryable());
        assert!(!SqlError::plan("x").is_retryable());
    }

    #[test]
    fn provider_equality_by_effect() {
        let a = SqlError::provider(dc_engine::EngineError::column_not_found("c"), true);
        let b = SqlError::provider(dc_engine::EngineError::column_not_found("c"), true);
        let c = SqlError::provider(dc_engine::EngineError::column_not_found("d"), true);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, SqlError::plan("x"));
    }
}
