//! # dc-sql — SQL layer
//!
//! A small SQL dialect sufficient for the execution tasks DataChat
//! generates (§2.2): lexer, recursive-descent parser, executor over
//! `dc-engine` tables, and a step-chain → SQL generator.
//!
//! Two properties matter for the paper's experiments:
//!
//! * **Query blocks are real.** Every `SELECT` — including each subquery —
//!   materializes its full output and is counted in [`exec::ExecStats`],
//!   so the nested-vs-flattened comparison of §2.2 measures actual work.
//! * **Flattening is an optimization pass.** [`gen::generate_sql`] turns a
//!   linear chain of logical steps into either the naive nested form or a
//!   single flattened block, merging steps only when semantics are
//!   preserved.

pub mod ast;
pub mod error;
pub mod exec;
pub mod gen;
pub mod lexer;
pub mod parser;

pub use ast::{JoinClause, Select, SelectItem, TableRef};
pub use error::{Result, SqlError};
pub use exec::{execute, run_sql, ExecStats, TableProvider};
pub use gen::{generate_sql, QueryStep};
pub use parser::{parse, parse_expr};
