//! Lowering a chain of logical query steps to SQL.
//!
//! §2.2: a naive client nests each new request around the previous result,
//! producing `SELECT a FROM (SELECT a, b FROM (SELECT a, b, c FROM base))`
//! — a deep query that "will incur significant performance costs compared
//! to its flattened equivalent". DataChat keeps the logical skill DAG and
//! re-generates execution tasks from scratch per request, so flattening
//! happens naturally. [`generate_sql`] implements both modes; the skills
//! planner uses `flatten = true`, the benchmarks compare the two.

use dc_engine::{AggSpec, Expr};

use crate::ast::{Select, SelectItem, TableRef};
use crate::error::{Result, SqlError};

/// One logical step in a linear query chain (the relational subset of the
/// skill vocabulary — the part that lowers to SQL).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryStep {
    /// Read a base table.
    Scan { table: String },
    /// Keep rows matching a predicate.
    Filter { predicate: Expr },
    /// Keep (and reorder to) the named columns.
    SelectColumns { columns: Vec<String> },
    /// Create a computed column.
    WithColumn { name: String, expr: Expr },
    /// Group-by aggregation.
    Compute {
        keys: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    /// Sort by `(column, ascending)` keys.
    Sort { keys: Vec<(String, bool)> },
    /// Keep the first `n` rows.
    Limit { n: usize },
    /// Remove duplicate rows.
    Distinct,
}

/// Generate SQL for a step chain. The chain must begin with a
/// [`QueryStep::Scan`].
///
/// With `flatten = false`, each step wraps the previous query in a
/// subquery (the naive client of §2.2). With `flatten = true`, steps merge
/// into the current query block whenever the combination is semantics-
/// preserving, and only start a new block when it is not (e.g. a filter
/// over an aggregate output becomes a HAVING-less outer block).
///
/// Contract: for *valid* chains (every step references columns its input
/// actually has), the nested and flattened forms execute to identical
/// results. For invalid chains the nested form errors at the offending
/// block; the flattened form may instead succeed when merging eliminates
/// the dead invalid reference (e.g. a projection that was immediately
/// replaced by an aggregate) — standard dead-code-elimination behaviour.
pub fn generate_sql(steps: &[QueryStep], flatten: bool) -> Result<Select> {
    let mut iter = steps.iter();
    let first = iter
        .next()
        .ok_or_else(|| SqlError::plan("empty step chain"))?;
    let QueryStep::Scan { table } = first else {
        return Err(SqlError::plan("step chain must start with a Scan"));
    };
    let mut current = Select::scan(table.clone());
    for step in iter {
        if let QueryStep::Scan { .. } = step {
            return Err(SqlError::plan("Scan only allowed as the first step"));
        }
        if flatten && can_merge(&current, step) {
            merge(&mut current, step);
        } else {
            current = wrap(current);
            merge(&mut current, step);
        }
    }
    Ok(current)
}

/// Wrap a query as the FROM of a fresh `SELECT *` block.
fn wrap(inner: Select) -> Select {
    Select {
        items: vec![SelectItem::Wildcard],
        from: Some(TableRef::Subquery(Box::new(inner), None)),
        ..Select::default()
    }
}

/// Whether `step` can merge into `current` without changing semantics.
///
/// The executor evaluates a block in SQL order: WHERE and GROUP BY run
/// against the block's *input*, before the SELECT list. So steps whose
/// expressions reference a **computed alias** (a `WithColumn` output)
/// cannot merge into WHERE/GROUP BY — they must wrap, exactly like the
/// nested form. `SelectColumns` may still merge by keeping the computed
/// item itself (see [`merge`]).
fn can_merge(current: &Select, step: &QueryStep) -> bool {
    let plain_projection = !current.has_aggregates() && current.group_by.is_empty();
    let no_tail = current.limit.is_none() && current.order_by.is_empty() && !current.distinct;
    match step {
        QueryStep::Scan { .. } => false,
        QueryStep::Filter { predicate } => {
            // A filter can move into WHERE only while the block is a plain
            // projection with no LIMIT/ORDER/DISTINCT applied yet, and only
            // if every referenced column exists in the block's *input*
            // (WHERE cannot see SELECT aliases).
            plain_projection && no_tail && refs_base_visible(current, predicate)
        }
        QueryStep::SelectColumns { columns } => {
            // Narrowing a plain projection is safe when every requested
            // name is either an input column that survives or the output
            // name of an existing (possibly computed) item.
            plain_projection
                && current.limit.is_none()
                && !current.distinct
                && columns.iter().all(|c| output_visible(current, c))
                // Reordering/narrowing under ORDER BY is fine only if sort
                // keys survive the projection.
                && current
                    .order_by
                    .iter()
                    .all(|(k, _)| columns.iter().any(|c| c.eq_ignore_ascii_case(k)))
        }
        QueryStep::WithColumn { expr, .. } => {
            // The new expression is evaluated against the block's input.
            plain_projection && no_tail && refs_base_visible(current, expr)
        }
        QueryStep::Compute { keys, aggs } => {
            // GROUP BY keys and aggregate arguments also bind to the
            // block's input, not to SELECT aliases.
            plain_projection
                && no_tail
                && keys.iter().all(|k| base_visible(current, k))
                && aggs
                    .iter()
                    .all(|a| a.column.as_deref().is_none_or(|c| base_visible(current, c)))
        }
        QueryStep::Sort { keys } => {
            // ORDER BY runs after projection, so output names are fine.
            current.limit.is_none() && keys.iter().all(|(k, _)| output_visible(current, k))
        }
        QueryStep::Limit { .. } => true,
        QueryStep::Distinct => current.limit.is_none() && current.order_by.is_empty(),
    }
}

/// Whether every column the expression references is visible in the
/// block's *input* (wildcard or pure pass-through; never a computed
/// alias).
fn refs_base_visible(current: &Select, expr: &Expr) -> bool {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    cols.iter().all(|c| base_visible(current, c))
}

/// Whether `name` is an input column that flows through the block
/// unchanged: the block projects `*`, or projects the column without
/// renaming it. Computed aliases and renames do NOT qualify — WHERE and
/// GROUP BY cannot see them.
fn base_visible(current: &Select, name: &str) -> bool {
    // A name this block *defines* as a computed alias or rename does not
    // exist in the input, even under `SELECT *` — and if it shadows an
    // input column, the merged meaning would be ambiguous. Wrap instead.
    let defined_here = current.items.iter().any(|i| match i {
        SelectItem::Expr {
            expr,
            alias: Some(a),
        } => {
            a.eq_ignore_ascii_case(name)
                && !matches!(expr, Expr::Column(c) if c.eq_ignore_ascii_case(a))
        }
        SelectItem::Aggregate { .. } => false,
        _ => false,
    });
    if defined_here {
        return false;
    }
    current.items.iter().any(|i| match i {
        SelectItem::Wildcard => true,
        SelectItem::Expr {
            expr: Expr::Column(c),
            alias,
        } => {
            c.eq_ignore_ascii_case(name)
                && alias.as_deref().is_none_or(|a| a.eq_ignore_ascii_case(c))
        }
        _ => false,
    })
}

/// Whether a name is visible in the block's output (includes aggregate
/// output names; used for ORDER BY merging).
fn output_visible(current: &Select, name: &str) -> bool {
    current
        .items
        .iter()
        .enumerate()
        .any(|(i, item)| match item {
            SelectItem::Wildcard => true,
            other => other.output_name(i).eq_ignore_ascii_case(name),
        })
}

/// Merge a step into the current block (caller has verified legality or
/// freshly wrapped).
fn merge(current: &mut Select, step: &QueryStep) {
    match step {
        QueryStep::Scan { .. } => unreachable!("rejected by generate_sql"),
        QueryStep::Filter { predicate } => {
            current.where_clause = Some(match current.where_clause.take() {
                Some(w) => w.and(predicate.clone()),
                None => predicate.clone(),
            });
        }
        QueryStep::SelectColumns { columns } => {
            // Keep computed items (expr + alias) when the requested name
            // is an existing output; plain names become column refs.
            let old_items = current.items.clone();
            current.items = columns
                .iter()
                .map(|c| {
                    old_items
                        .iter()
                        .enumerate()
                        .find(|(i, item)| {
                            !matches!(item, SelectItem::Wildcard)
                                && item.output_name(*i).eq_ignore_ascii_case(c)
                        })
                        .map(|(_, item)| item.clone())
                        .unwrap_or_else(|| SelectItem::Expr {
                            expr: Expr::col(c.clone()),
                            alias: None,
                        })
                })
                .collect();
        }
        QueryStep::WithColumn { name, expr } => {
            // Keep existing outputs and add the computed column.
            if current.items == vec![SelectItem::Wildcard] {
                current.items = vec![SelectItem::Wildcard];
            }
            current.items.push(SelectItem::Expr {
                expr: expr.clone(),
                alias: Some(name.clone()),
            });
        }
        QueryStep::Compute { keys, aggs } => {
            current.group_by = keys.clone();
            current.items = keys
                .iter()
                .map(|k| SelectItem::Expr {
                    expr: Expr::col(k.clone()),
                    alias: None,
                })
                .chain(aggs.iter().map(|a| SelectItem::Aggregate {
                    func: a.func,
                    arg: a.column.clone(),
                    alias: Some(a.output.clone()),
                }))
                .collect();
        }
        QueryStep::Sort { keys } => {
            current.order_by = keys.clone();
        }
        QueryStep::Limit { n } => {
            current.limit = Some(current.limit.map_or(*n, |old| old.min(*n)));
        }
        QueryStep::Distinct => {
            current.distinct = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::AggFunc;

    fn scan() -> QueryStep {
        QueryStep::Scan {
            table: "base_table".into(),
        }
    }

    #[test]
    fn the_paper_example_flattens() {
        // SELECT a FROM (SELECT a,b FROM (SELECT a,b,c FROM base_table))
        let steps = vec![
            scan(),
            QueryStep::SelectColumns {
                columns: vec!["a".into(), "b".into(), "c".into()],
            },
            QueryStep::SelectColumns {
                columns: vec!["a".into(), "b".into()],
            },
            QueryStep::SelectColumns {
                columns: vec!["a".into()],
            },
        ];
        let nested = generate_sql(&steps, false).unwrap();
        assert_eq!(nested.nesting_depth(), 4);
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 1);
        assert_eq!(flat.to_sql(), "SELECT a FROM base_table");
    }

    #[test]
    fn load_filter_limit_consolidates() {
        // Figure 4: Load + Filter + Limit → one SQL query.
        let steps = vec![
            scan(),
            QueryStep::Filter {
                predicate: Expr::col("x").gt(Expr::lit(5i64)),
            },
            QueryStep::Limit { n: 100 },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 1);
        assert_eq!(
            flat.to_sql(),
            "SELECT * FROM base_table WHERE (x > 5) LIMIT 100"
        );
    }

    #[test]
    fn filters_conjoin() {
        let steps = vec![
            scan(),
            QueryStep::Filter {
                predicate: Expr::col("x").gt(Expr::lit(1i64)),
            },
            QueryStep::Filter {
                predicate: Expr::col("y").lt(Expr::lit(9i64)),
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(
            flat.to_sql(),
            "SELECT * FROM base_table WHERE ((x > 1) AND (y < 9))"
        );
    }

    #[test]
    fn filter_after_limit_must_wrap() {
        // Filtering after LIMIT changes which rows survive — no merge.
        let steps = vec![
            scan(),
            QueryStep::Limit { n: 10 },
            QueryStep::Filter {
                predicate: Expr::col("x").gt(Expr::lit(1i64)),
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 2);
    }

    #[test]
    fn filter_on_dropped_column_wraps() {
        let steps = vec![
            scan(),
            QueryStep::SelectColumns {
                columns: vec!["a".into()],
            },
            QueryStep::Filter {
                predicate: Expr::col("b").gt(Expr::lit(1i64)),
            },
        ];
        // The merged form would reference a dropped column; semantics say
        // the filter fails (b is gone), so the generator must also wrap —
        // preserving the error behavior rather than silently resurrecting b.
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 2);
    }

    #[test]
    fn compute_merges_into_group_by() {
        let steps = vec![
            scan(),
            QueryStep::Filter {
                predicate: Expr::col("age").ge(Expr::lit(18i64)),
            },
            QueryStep::Compute {
                keys: vec!["party_sobriety".into()],
                aggs: vec![AggSpec::new(AggFunc::Count, "case_id", "NumberOfCases")],
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 1);
        assert_eq!(
            flat.to_sql(),
            "SELECT party_sobriety, COUNT(case_id) AS NumberOfCases FROM base_table WHERE (age >= 18) GROUP BY party_sobriety"
        );
    }

    #[test]
    fn filter_after_compute_wraps() {
        let steps = vec![
            scan(),
            QueryStep::Compute {
                keys: vec!["k".into()],
                aggs: vec![AggSpec::new(AggFunc::Sum, "v", "total")],
            },
            QueryStep::Filter {
                predicate: Expr::col("total").gt(Expr::lit(10i64)),
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 2);
    }

    #[test]
    fn limits_take_minimum() {
        let steps = vec![
            scan(),
            QueryStep::Limit { n: 100 },
            QueryStep::Limit { n: 10 },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.limit, Some(10));
        assert_eq!(flat.nesting_depth(), 1);
    }

    #[test]
    fn sort_then_select_keeping_key_merges() {
        let steps = vec![
            scan(),
            QueryStep::Sort {
                keys: vec![("a".into(), false)],
            },
            QueryStep::SelectColumns {
                columns: vec!["a".into()],
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 1);
    }

    #[test]
    fn sort_then_select_dropping_key_wraps() {
        let steps = vec![
            scan(),
            QueryStep::Sort {
                keys: vec![("a".into(), true)],
            },
            QueryStep::SelectColumns {
                columns: vec!["b".into()],
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 2);
    }

    #[test]
    fn filter_on_computed_alias_wraps() {
        // WHERE cannot see SELECT aliases: the flattener must wrap, not
        // merge (regression for a confirmed nested-vs-flat divergence).
        let steps = vec![
            scan(),
            QueryStep::WithColumn {
                name: "n".into(),
                expr: Expr::col("a").add(Expr::lit(1i64)),
            },
            QueryStep::Filter {
                predicate: Expr::col("n").gt(Expr::lit(5i64)),
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 2);
    }

    #[test]
    fn select_of_computed_alias_keeps_the_expression() {
        let steps = vec![
            scan(),
            QueryStep::WithColumn {
                name: "n".into(),
                expr: Expr::col("a").add(Expr::lit(1i64)),
            },
            QueryStep::SelectColumns {
                columns: vec!["n".into()],
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 1);
        assert_eq!(flat.to_sql(), "SELECT (a + 1) AS n FROM base_table");
    }

    #[test]
    fn compute_over_computed_alias_wraps() {
        let steps = vec![
            scan(),
            QueryStep::WithColumn {
                name: "n".into(),
                expr: Expr::col("a").add(Expr::lit(1i64)),
            },
            QueryStep::Compute {
                keys: vec!["n".into()],
                aggs: vec![AggSpec::count_records("c")],
            },
        ];
        let flat = generate_sql(&steps, true).unwrap();
        assert_eq!(flat.nesting_depth(), 2);
    }

    #[test]
    fn alias_chains_agree_nested_vs_flat() {
        use std::collections::HashMap;
        let mut provider: HashMap<String, dc_engine::Table> = HashMap::new();
        provider.insert(
            "base_table".into(),
            dc_engine::Table::new(vec![("a", dc_engine::Column::from_ints(vec![1, 5, 9]))])
                .unwrap(),
        );
        for steps in [
            vec![
                scan(),
                QueryStep::WithColumn {
                    name: "n".into(),
                    expr: Expr::col("a").add(Expr::lit(1i64)),
                },
                QueryStep::Filter {
                    predicate: Expr::col("n").gt(Expr::lit(5i64)),
                },
            ],
            vec![
                scan(),
                QueryStep::WithColumn {
                    name: "n".into(),
                    expr: Expr::col("a").add(Expr::lit(1i64)),
                },
                QueryStep::SelectColumns {
                    columns: vec!["n".into()],
                },
                QueryStep::Sort {
                    keys: vec![("n".into(), false)],
                },
            ],
        ] {
            let nested = generate_sql(&steps, false).unwrap();
            let flat = generate_sql(&steps, true).unwrap();
            let mut s1 = crate::exec::ExecStats::default();
            let mut s2 = crate::exec::ExecStats::default();
            let r1 = crate::exec::execute(&nested, &provider, &mut s1).unwrap();
            let r2 = crate::exec::execute(&flat, &provider, &mut s2).unwrap();
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn chain_must_start_with_scan() {
        assert!(generate_sql(&[], true).is_err());
        assert!(generate_sql(&[QueryStep::Distinct], true).is_err());
        assert!(generate_sql(&[scan(), scan()], true).is_err());
    }

    #[test]
    fn nested_and_flat_agree_semantically() {
        use std::collections::HashMap;
        let mut provider: HashMap<String, dc_engine::Table> = HashMap::new();
        provider.insert(
            "base_table".into(),
            dc_engine::Table::new(vec![
                ("a", dc_engine::Column::from_ints(vec![3, 1, 2, 5, 4])),
                ("b", dc_engine::Column::from_ints(vec![30, 10, 20, 50, 40])),
                (
                    "c",
                    dc_engine::Column::from_strs(vec!["x", "y", "z", "w", "v"]),
                ),
            ])
            .unwrap(),
        );
        let steps = vec![
            scan(),
            QueryStep::SelectColumns {
                columns: vec!["a".into(), "b".into()],
            },
            QueryStep::Filter {
                predicate: Expr::col("a").gt(Expr::lit(1i64)),
            },
            QueryStep::Sort {
                keys: vec![("b".into(), false)],
            },
            QueryStep::Limit { n: 2 },
        ];
        let nested = generate_sql(&steps, false).unwrap();
        let flat = generate_sql(&steps, true).unwrap();
        let mut s1 = crate::exec::ExecStats::default();
        let mut s2 = crate::exec::ExecStats::default();
        let r1 = crate::exec::execute(&nested, &provider, &mut s1).unwrap();
        let r2 = crate::exec::execute(&flat, &provider, &mut s2).unwrap();
        assert_eq!(r1, r2);
        assert!(s1.query_blocks > s2.query_blocks);
        assert!(s1.rows_materialized > s2.rows_materialized);
    }
}
