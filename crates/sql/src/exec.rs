//! SQL execution against the engine.
//!
//! Each `SELECT` — including every subquery — is one *query block*:
//! resolved, computed and fully materialized before its parent runs.
//! [`ExecStats`] counts blocks and materialized rows/bytes so the §2.2
//! nested-vs-flattened comparison is observable, not anecdotal.

use std::collections::HashMap;

use dc_engine::ops::{distinct, filter, group_by, join, limit, project, sort_by, SortKey};
use dc_engine::{AggSpec, Expr, Table};

use crate::ast::{Select, SelectItem, TableRef};
use crate::error::{Result, SqlError};

/// Source of base tables for the executor.
pub trait TableProvider {
    /// Fetch a base table by name.
    fn get_table(&self, name: &str) -> Result<Table>;
}

impl TableProvider for HashMap<String, Table> {
    fn get_table(&self, name: &str) -> Result<Table> {
        self.iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.clone())
            .ok_or_else(|| SqlError::TableNotFound {
                name: name.to_string(),
            })
    }
}

impl TableProvider for std::collections::BTreeMap<String, Table> {
    fn get_table(&self, name: &str) -> Result<Table> {
        self.iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.clone())
            .ok_or_else(|| SqlError::TableNotFound {
                name: name.to_string(),
            })
    }
}

/// Counters describing one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of query blocks executed (1 for a flat query).
    pub query_blocks: u64,
    /// Rows materialized across all blocks (every block's output counts).
    pub rows_materialized: u64,
    /// Bytes materialized across all blocks.
    pub bytes_materialized: u64,
    /// Base-table scans performed.
    pub base_scans: u64,
}

/// Execute a parsed SELECT, accumulating stats.
pub fn execute(
    select: &Select,
    provider: &dyn TableProvider,
    stats: &mut ExecStats,
) -> Result<Table> {
    stats.query_blocks += 1;

    // FROM
    let mut current = match &select.from {
        Some(t) => resolve_table_ref(t, provider, stats)?,
        None => {
            // SELECT without FROM: evaluate items against a 1-row dummy.
            dc_engine::Table::new(vec![("__dummy", dc_engine::Column::from_ints(vec![0]))])?
        }
    };

    // JOINs
    for j in &select.joins {
        let right = resolve_table_ref(&j.table, provider, stats)?;
        let lkeys: Vec<&str> = j.on.iter().map(|(l, _)| l.as_str()).collect();
        let rkeys: Vec<&str> = j.on.iter().map(|(_, r)| r.as_str()).collect();
        // ON order may be written either way round; swap if left keys
        // resolve only against the right table.
        let (lk, rk) = if lkeys.iter().all(|k| current.schema().index_of(k).is_some()) {
            (lkeys, rkeys)
        } else {
            (rkeys, lkeys)
        };
        current = join(&current, &right, &lk, &rk, j.how)?;
    }

    // WHERE
    if let Some(w) = &select.where_clause {
        current = filter(&current, w)?;
    }

    // GROUP BY / aggregates
    if select.has_aggregates() || !select.group_by.is_empty() {
        current = run_aggregation(select, &current)?;
        if let Some(h) = &select.having {
            current = filter(&current, h)?;
        }
    } else {
        if select.having.is_some() {
            return Err(SqlError::plan("HAVING requires GROUP BY or aggregates"));
        }
        // Plain projection.
        if !(select.items.len() == 1 && select.items[0] == SelectItem::Wildcard) {
            let mut exprs: Vec<(String, Expr)> = Vec::with_capacity(select.items.len());
            for (i, item) in select.items.iter().enumerate() {
                match item {
                    SelectItem::Wildcard => {
                        for f in current.schema().fields() {
                            exprs.push((f.name.clone(), Expr::col(f.name.clone())));
                        }
                    }
                    SelectItem::Expr { expr, .. } => {
                        exprs.push((item.output_name(i), expr.clone()));
                    }
                    SelectItem::Aggregate { .. } => unreachable!("handled above"),
                }
            }
            current = project(&current, &exprs)?;
        }
    }

    // DISTINCT
    if select.distinct {
        current = distinct(&current, &[])?;
    }

    // ORDER BY
    if !select.order_by.is_empty() {
        let keys: Vec<SortKey> = select
            .order_by
            .iter()
            .map(|(c, asc)| {
                if *asc {
                    SortKey::asc(c.clone())
                } else {
                    SortKey::desc(c.clone())
                }
            })
            .collect();
        current = sort_by(&current, &keys)?;
    }

    // LIMIT
    if let Some(n) = select.limit {
        current = limit(&current, n);
    }

    stats.rows_materialized += current.num_rows() as u64;
    stats.bytes_materialized += current.byte_size() as u64;
    Ok(current)
}

/// Parse and execute in one call.
pub fn run_sql(sql: &str, provider: &dyn TableProvider) -> Result<(Table, ExecStats)> {
    let select = crate::parser::parse(sql)?;
    let mut stats = ExecStats::default();
    let out = execute(&select, provider, &mut stats)?;
    Ok((out, stats))
}

fn resolve_table_ref(
    t: &TableRef,
    provider: &dyn TableProvider,
    stats: &mut ExecStats,
) -> Result<Table> {
    match t {
        TableRef::Named(name) => {
            stats.base_scans += 1;
            provider.get_table(name)
        }
        TableRef::Subquery(inner, _) => execute(inner, provider, stats),
    }
}

fn run_aggregation(select: &Select, input: &Table) -> Result<Table> {
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut key_items: Vec<String> = Vec::new();
    for (i, item) in select.items.iter().enumerate() {
        match item {
            SelectItem::Aggregate { func, arg, .. } => {
                aggs.push(AggSpec {
                    func: *func,
                    column: arg.clone(),
                    output: item.output_name(i),
                });
            }
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Column(c) => {
                    let is_key = select.group_by.iter().any(|g| g.eq_ignore_ascii_case(c));
                    if !is_key {
                        return Err(SqlError::plan(format!(
                            "column {c} must appear in GROUP BY or an aggregate"
                        )));
                    }
                    key_items.push(c.clone());
                }
                other => {
                    return Err(SqlError::plan(format!(
                        "non-column expression {} not allowed alongside aggregates",
                        other.to_sql()
                    )))
                }
            },
            SelectItem::Wildcard => {
                return Err(SqlError::plan(
                    "SELECT * cannot be combined with aggregates",
                ))
            }
        }
    }
    if aggs.is_empty() {
        // GROUP BY with no aggregates degenerates to DISTINCT over keys.
        let keys: Vec<&str> = select.group_by.iter().map(|s| s.as_str()).collect();
        let projected = input.select(&keys)?;
        return Ok(distinct(&projected, &[])?);
    }
    let keys: Vec<&str> = select.group_by.iter().map(|s| s.as_str()).collect();
    let grouped = group_by(input, &keys, &aggs)?;
    // Reorder output columns to match the SELECT list when group keys are
    // interleaved with aggregates.
    let mut order: Vec<String> = Vec::with_capacity(select.items.len());
    for (i, item) in select.items.iter().enumerate() {
        match item {
            SelectItem::Expr { expr, .. } => {
                if let Expr::Column(c) = expr {
                    order.push(c.clone());
                }
            }
            _ => order.push(item.output_name(i)),
        }
    }
    // Any group keys not selected stay out (SQL projection semantics).
    let refs: Vec<&str> = order.iter().map(|s| s.as_str()).collect();
    Ok(grouped.select(&refs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{Column, Value};

    fn provider() -> HashMap<String, Table> {
        let mut m = HashMap::new();
        m.insert(
            "parties".to_string(),
            Table::new(vec![
                ("case_id", Column::from_ints(vec![1, 1, 2, 3])),
                (
                    "party_sobriety",
                    Column::from_opt_strs(vec![
                        Some("sober".into()),
                        Some("drunk".into()),
                        Some("sober".into()),
                        None,
                    ]),
                ),
                (
                    "party_age",
                    Column::from_opt_ints(vec![Some(20), Some(45), Some(31), None]),
                ),
            ])
            .unwrap(),
        );
        m.insert(
            "collisions".to_string(),
            Table::new(vec![
                ("case_id", Column::from_ints(vec![1, 2, 3, 4])),
                (
                    "severity",
                    Column::from_strs(vec!["minor", "major", "fatal", "minor"]),
                ),
            ])
            .unwrap(),
        );
        m
    }

    #[test]
    fn select_star() {
        let (out, stats) = run_sql("SELECT * FROM parties", &provider()).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(stats.query_blocks, 1);
        assert_eq!(stats.base_scans, 1);
    }

    #[test]
    fn where_and_projection() {
        let (out, _) = run_sql(
            "SELECT case_id, party_age + 1 AS next_age FROM parties WHERE party_age > 25",
            &provider(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().names(), vec!["case_id", "next_age"]);
        assert_eq!(out.value(0, "next_age").unwrap(), Value::Int(46));
    }

    #[test]
    fn group_by_count() {
        let (out, _) = run_sql(
            "SELECT party_sobriety, COUNT(case_id) AS n FROM parties GROUP BY party_sobriety",
            &provider(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2)); // sober
    }

    #[test]
    fn global_aggregate() {
        let (out, _) =
            run_sql("SELECT COUNT(*), AVG(party_age) FROM parties", &provider()).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "CountOfRecords").unwrap(), Value::Int(4));
        assert_eq!(out.value(0, "AvgParty_age").unwrap(), Value::Float(32.0));
    }

    #[test]
    fn join_query() {
        let (out, stats) = run_sql(
            "SELECT severity, COUNT(*) AS n FROM collisions JOIN parties ON collisions.case_id = parties.case_id GROUP BY severity ORDER BY n DESC",
            &provider(),
        )
        .unwrap();
        assert_eq!(
            out.value(0, "severity").unwrap(),
            Value::Str("minor".into())
        );
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
        assert_eq!(stats.base_scans, 2);
    }

    #[test]
    fn nested_blocks_counted() {
        let (out, stats) = run_sql(
            "SELECT case_id FROM (SELECT case_id, party_age FROM (SELECT * FROM parties))",
            &provider(),
        )
        .unwrap();
        assert_eq!(out.num_columns(), 1);
        assert_eq!(stats.query_blocks, 3);
        // Each block materialized 4 rows.
        assert_eq!(stats.rows_materialized, 12);
        let (_, flat) = run_sql("SELECT case_id FROM parties", &provider()).unwrap();
        assert_eq!(flat.query_blocks, 1);
        assert_eq!(flat.rows_materialized, 4);
    }

    #[test]
    fn distinct_order_limit() {
        let (out, _) = run_sql(
            "SELECT DISTINCT case_id FROM parties ORDER BY case_id DESC LIMIT 2",
            &provider(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "case_id").unwrap(), Value::Int(3));
    }

    #[test]
    fn having_filters_groups() {
        let (out, _) = run_sql(
            "SELECT case_id, COUNT(*) AS n FROM parties GROUP BY case_id HAVING n > 1",
            &provider(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "case_id").unwrap(), Value::Int(1));
    }

    #[test]
    fn group_by_without_aggregates_is_distinct() {
        let (out, _) = run_sql(
            "SELECT party_sobriety FROM parties GROUP BY party_sobriety",
            &provider(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn plan_errors() {
        assert!(run_sql("SELECT party_age, COUNT(*) FROM parties", &provider()).is_err());
        assert!(run_sql("SELECT * , COUNT(*) FROM parties", &provider()).is_err());
        assert!(run_sql("SELECT a FROM nope", &provider()).is_err());
        assert!(run_sql(
            "SELECT case_id FROM parties HAVING case_id > 1",
            &provider()
        )
        .is_err());
    }

    #[test]
    fn select_without_from() {
        let (out, _) = run_sql("SELECT 1 + 2 AS three", &provider()).unwrap();
        assert_eq!(out.value(0, "three").unwrap(), Value::Int(3));
    }

    #[test]
    fn on_clause_order_insensitive() {
        let (out, _) = run_sql(
            "SELECT * FROM collisions JOIN parties ON parties.case_id = collisions.case_id",
            &provider(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4);
    }
}
