//! # dc-ml — machine-learning substrate
//!
//! The learners behind Table 1's Machine Learning skills, implemented from
//! scratch: linear/ridge regression ([`linear`]), trend + seasonality
//! time-series forecasting ([`timeseries`], powering the Figure 2 GDP
//! recipe), z-score and IQR outlier detection ([`outlier`]), k-means with
//! k-means++ seeding ([`kmeans`]), a CART decision tree ([`tree`]), and
//! evaluation metrics ([`metrics`]). [`model`] provides the table-level
//! train/predict API the skills layer calls.

pub mod error;
pub mod kmeans;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod outlier;
pub mod timeseries;
pub mod tree;

pub use error::{MlError, Result};
pub use kmeans::{fit_kmeans, KMeansModel};
pub use linear::{fit_linear, LinearModel};
pub use model::{predict, train_model, MlMethod, Model, ModelKind};
pub use outlier::{detect_outliers, OutlierMethod};
pub use timeseries::{fit_time_series, TimeSeriesModel};
pub use tree::{fit_tree, DecisionTree};
