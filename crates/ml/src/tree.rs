//! Decision-tree classifier (CART with Gini impurity).

use std::collections::HashMap;

use crate::error::{MlError, Result};

/// A trained decision tree over numeric features and string class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    pub classes: Vec<String>,
    pub max_depth: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Index into `classes`.
        class: usize,
        /// Fraction of training rows at this leaf with that class.
        confidence: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Fit a tree. `xs[i]` is the feature row of sample `i`; `ys[i]` its class
/// label. Deterministic.
pub fn fit_tree(xs: &[Vec<f64>], ys: &[&str], max_depth: usize) -> Result<DecisionTree> {
    if xs.len() != ys.len() {
        return Err(MlError::invalid("features and labels differ in length"));
    }
    if xs.len() < 2 {
        return Err(MlError::InsufficientData {
            needed: 2,
            got: xs.len(),
        });
    }
    let dim = xs[0].len();
    if dim == 0 || xs.iter().any(|r| r.len() != dim) {
        return Err(MlError::invalid(
            "feature rows must be non-empty and uniform",
        ));
    }
    if max_depth == 0 {
        return Err(MlError::invalid("max_depth must be positive"));
    }
    // Class index assignment in first-seen order for determinism.
    let mut classes: Vec<String> = Vec::new();
    let mut y_idx = Vec::with_capacity(ys.len());
    for &y in ys {
        let idx = match classes.iter().position(|c| c == y) {
            Some(i) => i,
            None => {
                classes.push(y.to_string());
                classes.len() - 1
            }
        };
        y_idx.push(idx);
    }
    let indices: Vec<usize> = (0..xs.len()).collect();
    let root = build(xs, &y_idx, classes.len(), &indices, max_depth);
    Ok(DecisionTree {
        root,
        classes,
        max_depth,
    })
}

fn class_counts(y: &[usize], n_classes: usize, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in indices {
        counts[y[i]] += 1;
    }
    counts
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority_leaf(counts: &[usize]) -> Node {
    let total: usize = counts.iter().sum();
    let (class, &best) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty class counts");
    Node::Leaf {
        class,
        confidence: if total == 0 {
            0.0
        } else {
            best as f64 / total as f64
        },
    }
}

// Indexed feature loop: `xs[i][f]` double-indexes per candidate split.
#[allow(clippy::needless_range_loop)]
fn build(xs: &[Vec<f64>], y: &[usize], n_classes: usize, indices: &[usize], depth: usize) -> Node {
    let counts = class_counts(y, n_classes, indices);
    let impurity = gini(&counts);
    if depth == 0 || impurity == 0.0 || indices.len() < 4 {
        return majority_leaf(&counts);
    }
    let dim = xs[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
    for f in 0..dim {
        // Candidate thresholds: midpoints of sorted unique values.
        let mut vals: Vec<f64> = indices.iter().map(|&i| xs[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals.dedup();
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let mut left = vec![0usize; n_classes];
            let mut right = vec![0usize; n_classes];
            for &i in indices {
                if xs[i][f] <= threshold {
                    left[y[i]] += 1;
                } else {
                    right[y[i]] += 1;
                }
            }
            let nl: usize = left.iter().sum();
            let nr: usize = right.iter().sum();
            if nl == 0 || nr == 0 {
                continue;
            }
            let weighted =
                (nl as f64 * gini(&left) + nr as f64 * gini(&right)) / indices.len() as f64;
            if best.as_ref().is_none_or(|(_, _, g)| weighted < *g - 1e-12) {
                best = Some((f, threshold, weighted));
            }
        }
    }
    match best {
        Some((feature, threshold, weighted)) if weighted < impurity - 1e-12 => {
            let (li, ri): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| xs[i][feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(xs, y, n_classes, &li, depth - 1)),
                right: Box::new(build(xs, y, n_classes, &ri, depth - 1)),
            }
        }
        _ => majority_leaf(&counts),
    }
}

impl DecisionTree {
    /// Predict the class label of one row.
    pub fn predict_row(&self, x: &[f64]) -> &str {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return &self.classes[*class],
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predict many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Result<Vec<String>> {
        let dim = self.num_features();
        if xs.iter().any(|r| r.len() != dim) {
            return Err(MlError::IncompatibleInput {
                message: format!("model expects {dim} features"),
            });
        }
        Ok(xs.iter().map(|r| self.predict_row(r).to_string()).collect())
    }

    /// Number of features the tree expects (max feature index + 1; the
    /// training dimensionality is preserved through any split).
    pub fn num_features(&self) -> usize {
        fn max_feat(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split {
                    feature,
                    left,
                    right,
                    ..
                } => (*feature + 1).max(max_feat(left)).max(max_feat(right)),
            }
        }
        max_feat(&self.root).max(1)
    }

    /// Tree depth (leaf-only tree = 1).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Per-class distribution of training predictions (for explanations).
    pub fn class_histogram(&self, xs: &[Vec<f64>]) -> Result<HashMap<String, usize>> {
        let preds = self.predict(xs)?;
        let mut h = HashMap::new();
        for p in preds {
            *h.entry(p).or_insert(0) += 1;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish() -> (Vec<Vec<f64>>, Vec<&'static str>) {
        // Axis-aligned separable: class depends on x < 5 then y < 5.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                xs.push(vec![x as f64, y as f64]);
                ys.push(if x < 5 {
                    if y < 5 {
                        "a"
                    } else {
                        "b"
                    }
                } else {
                    "c"
                });
            }
        }
        (xs, ys)
    }

    #[test]
    fn learns_axis_aligned_classes() {
        let (xs, ys) = xor_ish();
        let t = fit_tree(&xs, &ys, 5).unwrap();
        let preds = t.predict(&xs).unwrap();
        let correct = preds
            .iter()
            .zip(&ys)
            .filter(|(p, y)| p.as_str() == **y)
            .count();
        assert_eq!(correct, xs.len());
        assert!(t.depth() <= 5);
    }

    #[test]
    fn depth_limit_respected() {
        let (xs, ys) = xor_ish();
        let t = fit_tree(&xs, &ys, 1).unwrap();
        assert!(t.depth() <= 2); // one split + leaves
    }

    #[test]
    fn pure_input_gives_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec!["x"; 10];
        let t = fit_tree(&xs, &ys, 5).unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.predict_row(&[3.0]), "x");
    }

    #[test]
    fn validation() {
        assert!(fit_tree(&[vec![1.0]], &["a"], 3).is_err());
        assert!(fit_tree(&[vec![1.0], vec![2.0]], &["a"], 0).is_err());
        assert!(fit_tree(&[vec![1.0], vec![1.0, 2.0]], &["a", "b"], 3).is_err());
    }

    #[test]
    fn deterministic() {
        let (xs, ys) = xor_ish();
        let a = fit_tree(&xs, &ys, 4).unwrap();
        let b = fit_tree(&xs, &ys, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn predict_dimension_checked() {
        let (xs, ys) = xor_ish();
        let t = fit_tree(&xs, &ys, 3).unwrap();
        assert!(t.predict(&[vec![1.0]]).is_err());
    }

    #[test]
    fn gini_properties() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!(gini(&[1, 1, 1, 1]) > gini(&[2, 1, 1]));
    }
}
