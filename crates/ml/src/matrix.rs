//! Minimal dense matrix support (just enough for the normal equations).

/// A small dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A rows×cols zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Solve `A x = b` for symmetric positive-(semi)definite `A` by Gaussian
/// elimination with partial pivoting. Returns `None` when `A` is singular
/// to working precision.
// Indexed loops: elimination reads and writes sibling rows by position.
#[allow(clippy::needless_range_loop)]
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    debug_assert_eq!(a.cols(), n);
    debug_assert_eq!(b.len(), n);
    // Augmented working copy.
    let mut m = vec![vec![0.0f64; n + 1]; n];
    for (r, row) in m.iter_mut().enumerate() {
        for c in 0..n {
            row[c] = a.at(r, c);
        }
        row[n] = b[r];
    }
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if m[pivot][col].abs() < 1e-10 {
            return None;
        }
        m.swap(col, pivot);
        let div = m[col][col];
        for c in col..=n {
            m[col][c] /= div;
        }
        for r in 0..n {
            if r != col && m[r][col] != 0.0 {
                let factor = m[r][col];
                for c in col..=n {
                    m[r][c] -= factor * m[col][c];
                }
            }
        }
    }
    Some(m.into_iter().map(|row| row[n]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            *a.at_mut(i, i) = 1.0;
        }
        let x = solve_spd(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_2x2() {
        let mut a = Matrix::zeros(2, 2);
        *a.at_mut(0, 0) = 2.0;
        *a.at_mut(0, 1) = 1.0;
        *a.at_mut(1, 0) = 1.0;
        *a.at_mut(1, 1) = 3.0;
        // Solution of [2 1; 1 3] x = [5; 10] is [1; 3].
        let x = solve_spd(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let mut a = Matrix::zeros(2, 2);
        *a.at_mut(0, 0) = 1.0;
        *a.at_mut(0, 1) = 2.0;
        *a.at_mut(1, 0) = 2.0;
        *a.at_mut(1, 1) = 4.0;
        assert!(solve_spd(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        *a.at_mut(0, 0) = 0.0;
        *a.at_mut(0, 1) = 1.0;
        *a.at_mut(1, 0) = 1.0;
        *a.at_mut(1, 1) = 0.0;
        let x = solve_spd(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
