//! Model evaluation metrics.

use std::collections::BTreeMap;

use crate::error::{MlError, Result};

/// Root mean squared error.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check_lens(actual, predicted)?;
    let n = actual.len() as f64;
    Ok((actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).powi(2))
        .sum::<f64>()
        / n)
        .sqrt())
}

/// Mean absolute error.
pub fn mae(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check_lens(actual, predicted)?;
    let n = actual.len() as f64;
    Ok(actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / n)
}

/// R² (coefficient of determination).
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check_lens(actual, predicted)?;
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean).powi(2)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).powi(2))
        .sum();
    Ok(if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    })
}

/// Classification accuracy.
pub fn accuracy<S: AsRef<str>, T: AsRef<str>>(actual: &[S], predicted: &[T]) -> Result<f64> {
    if actual.len() != predicted.len() {
        return Err(MlError::invalid("length mismatch"));
    }
    if actual.is_empty() {
        return Err(MlError::InsufficientData { needed: 1, got: 0 });
    }
    let correct = actual
        .iter()
        .zip(predicted)
        .filter(|(a, p)| a.as_ref() == p.as_ref())
        .count();
    Ok(correct as f64 / actual.len() as f64)
}

/// Confusion counts keyed by `(actual, predicted)`.
pub fn confusion<S: AsRef<str>, T: AsRef<str>>(
    actual: &[S],
    predicted: &[T],
) -> Result<BTreeMap<(String, String), usize>> {
    if actual.len() != predicted.len() {
        return Err(MlError::invalid("length mismatch"));
    }
    let mut m = BTreeMap::new();
    for (a, p) in actual.iter().zip(predicted) {
        *m.entry((a.as_ref().to_string(), p.as_ref().to_string()))
            .or_insert(0) += 1;
    }
    Ok(m)
}

fn check_lens(a: &[f64], b: &[f64]) -> Result<()> {
    if a.len() != b.len() {
        return Err(MlError::invalid("length mismatch"));
    }
    if a.is_empty() {
        return Err(MlError::InsufficientData { needed: 1, got: 0 });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_mae_basics() {
        let a = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((rmse(&a, &p).unwrap() - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&a, &p).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction() {
        let a = [1.0, 2.0];
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
        assert_eq!(r_squared(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_and_confusion() {
        let a = ["x", "y", "x", "y"];
        let p = ["x", "x", "x", "y"];
        assert_eq!(accuracy(&a, &p).unwrap(), 0.75);
        let c = confusion(&a, &p).unwrap();
        assert_eq!(c[&("y".to_string(), "x".to_string())], 1);
        assert_eq!(c[&("x".to_string(), "x".to_string())], 2);
    }

    #[test]
    fn validation() {
        assert!(rmse(&[1.0], &[]).is_err());
        assert!(rmse(&[], &[]).is_err());
        let empty: [&str; 0] = [];
        assert!(accuracy(&empty, &empty).is_err());
    }
}
