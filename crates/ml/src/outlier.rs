//! Outlier detection (the `Detect outliers` skill).
//!
//! §2.1 notes users graduating "from using simple statistical outlier
//! detection methods to ones based on more robust machine learning
//! algorithms" — so both a z-score method and a robust IQR method are
//! provided, and the skill exposes the choice.

use crate::error::{MlError, Result};

/// Outlier detection methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierMethod {
    /// |x - mean| > threshold · stddev.
    ZScore { threshold: f64 },
    /// Outside [Q1 - k·IQR, Q3 + k·IQR] (k = 1.5 is Tukey's fence).
    Iqr { k: f64 },
}

impl OutlierMethod {
    /// The common defaults: z-score at 3σ.
    pub fn default_zscore() -> OutlierMethod {
        OutlierMethod::ZScore { threshold: 3.0 }
    }

    /// Tukey fences at 1.5 IQR.
    pub fn default_iqr() -> OutlierMethod {
        OutlierMethod::Iqr { k: 1.5 }
    }
}

/// Flag outliers among `values` (`None` entries yield `false`).
pub fn detect_outliers(values: &[Option<f64>], method: OutlierMethod) -> Result<Vec<bool>> {
    let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
    if present.len() < 3 {
        return Err(MlError::InsufficientData {
            needed: 3,
            got: present.len(),
        });
    }
    match method {
        OutlierMethod::ZScore { threshold } => {
            if threshold <= 0.0 {
                return Err(MlError::invalid("z-score threshold must be positive"));
            }
            let n = present.len() as f64;
            let mean = present.iter().sum::<f64>() / n;
            let var = present.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            let sd = var.sqrt();
            Ok(values
                .iter()
                .map(|v| match v {
                    Some(x) if sd > 0.0 => ((x - mean) / sd).abs() > threshold,
                    _ => false,
                })
                .collect())
        }
        OutlierMethod::Iqr { k } => {
            if k <= 0.0 {
                return Err(MlError::invalid("IQR multiplier must be positive"));
            }
            let mut sorted = present.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let q1 = quantile(&sorted, 0.25);
            let q3 = quantile(&sorted, 0.75);
            let iqr = q3 - q1;
            let (lo, hi) = (q1 - k * iqr, q3 + k * iqr);
            Ok(values
                .iter()
                .map(|v| matches!(v, Some(x) if *x < lo || *x > hi))
                .collect())
        }
    }
}

/// Linear-interpolated quantile of a sorted slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_spike() -> Vec<Option<f64>> {
        let mut v: Vec<Option<f64>> = (0..50).map(|i| Some(10.0 + (i % 5) as f64)).collect();
        v.push(Some(1000.0)); // spike
        v.push(None);
        v
    }

    #[test]
    fn zscore_finds_spike() {
        let flags = detect_outliers(&with_spike(), OutlierMethod::default_zscore()).unwrap();
        assert!(flags[50]);
        assert!(!flags[0]);
        assert!(!flags[51]); // null never flagged
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
    }

    #[test]
    fn iqr_finds_spike() {
        let flags = detect_outliers(&with_spike(), OutlierMethod::default_iqr()).unwrap();
        assert!(flags[50]);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
    }

    #[test]
    fn iqr_robust_to_mass_outliers() {
        // 10% extreme values: z-score's mean/sd get dragged; IQR holds.
        let mut v: Vec<Option<f64>> = (0..90).map(|i| Some((i % 10) as f64)).collect();
        v.extend((0..10).map(|_| Some(1e6)));
        let iqr = detect_outliers(&v, OutlierMethod::default_iqr()).unwrap();
        assert_eq!(iqr.iter().filter(|&&f| f).count(), 10);
    }

    #[test]
    fn constant_series_no_outliers() {
        let v: Vec<Option<f64>> = (0..10).map(|_| Some(5.0)).collect();
        let z = detect_outliers(&v, OutlierMethod::default_zscore()).unwrap();
        assert!(z.iter().all(|&f| !f));
        let i = detect_outliers(&v, OutlierMethod::default_iqr()).unwrap();
        assert!(i.iter().all(|&f| !f));
    }

    #[test]
    fn validation() {
        assert!(detect_outliers(&[Some(1.0)], OutlierMethod::default_zscore()).is_err());
        assert!(detect_outliers(
            &[Some(1.0), Some(2.0), Some(3.0)],
            OutlierMethod::ZScore { threshold: 0.0 }
        )
        .is_err());
        assert!(detect_outliers(
            &[Some(1.0), Some(2.0), Some(3.0)],
            OutlierMethod::Iqr { k: -1.0 }
        )
        .is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
    }
}
