//! Linear and ridge regression via the normal equations.

use crate::error::{MlError, Result};
use crate::matrix::{solve_spd, Matrix};

/// A fitted linear model `y = intercept + Σ coef_i · x_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    pub intercept: f64,
    pub coefficients: Vec<f64>,
    /// Feature names in coefficient order.
    pub features: Vec<String>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

/// Fit ordinary least squares with optional L2 regularization (`lambda`).
///
/// `xs` is row-major: `xs[i]` holds the feature vector of sample `i`.
pub fn fit_linear(
    xs: &[Vec<f64>],
    ys: &[f64],
    feature_names: &[String],
    lambda: f64,
) -> Result<LinearModel> {
    let n = xs.len();
    if n != ys.len() {
        return Err(MlError::invalid(format!(
            "feature rows ({n}) and targets ({}) differ",
            ys.len()
        )));
    }
    let k = feature_names.len();
    if n < k + 1 {
        return Err(MlError::InsufficientData {
            needed: k + 1,
            got: n,
        });
    }
    if xs.iter().any(|r| r.len() != k) {
        return Err(MlError::invalid("ragged feature rows"));
    }
    if lambda < 0.0 {
        return Err(MlError::invalid("lambda must be non-negative"));
    }

    // Design matrix with intercept column: A is (k+1)x(k+1) = XᵀX.
    let d = k + 1;
    let mut xtx = Matrix::zeros(d, d);
    let mut xty = vec![0.0; d];
    for (row, &y) in xs.iter().zip(ys) {
        // augmented x: [1, x0, x1, ...]
        for i in 0..d {
            let xi = if i == 0 { 1.0 } else { row[i - 1] };
            xty[i] += xi * y;
            for j in 0..d {
                let xj = if j == 0 { 1.0 } else { row[j - 1] };
                *xtx.at_mut(i, j) += xi * xj;
            }
        }
    }
    // Ridge penalty on non-intercept terms.
    for i in 1..d {
        *xtx.at_mut(i, i) += lambda;
    }
    let beta = solve_spd(&xtx, &xty)
        .ok_or_else(|| MlError::invalid("singular design matrix (collinear features?)"))?;

    let model = LinearModel {
        intercept: beta[0],
        coefficients: beta[1..].to_vec(),
        features: feature_names.to_vec(),
        r_squared: 0.0,
    };
    let preds: Vec<f64> = xs.iter().map(|r| model.predict_row(r)).collect();
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = ys.iter().zip(&preds).map(|(y, p)| (y - p).powi(2)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(LinearModel {
        r_squared: r2,
        ..model
    })
}

impl LinearModel {
    /// Predict a single row (must have the model's feature arity).
    pub fn predict_row(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.coefficients.len());
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    /// Predict many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>> {
        if xs.iter().any(|r| r.len() != self.coefficients.len()) {
            return Err(MlError::IncompatibleInput {
                message: format!("model expects {} features", self.coefficients.len()),
            });
        }
        Ok(xs.iter().map(|r| self.predict_row(r)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn recovers_exact_line() {
        // y = 3 + 2x
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
        let m = fit_linear(&xs, &ys, &names(1), 0.0).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-9);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((m.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_multivariate() {
        // y = 1 + 2a - 3b
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                xs.push(vec![a as f64, b as f64]);
                ys.push(1.0 + 2.0 * a as f64 - 3.0 * b as f64);
            }
        }
        let m = fit_linear(&xs, &ys, &names(2), 0.0).unwrap();
        assert!((m.coefficients[0] - 2.0).abs() < 1e-8);
        assert!((m.coefficients[1] + 3.0).abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..30).map(|i| 5.0 * i as f64).collect();
        let ols = fit_linear(&xs, &ys, &names(1), 0.0).unwrap();
        let ridge = fit_linear(&xs, &ys, &names(1), 1000.0).unwrap();
        assert!(ridge.coefficients[0].abs() < ols.coefficients[0].abs());
    }

    #[test]
    fn collinear_features_rejected_without_ridge() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(fit_linear(&xs, &ys, &names(2), 0.0).is_err());
        // Ridge regularization makes it solvable.
        assert!(fit_linear(&xs, &ys, &names(2), 0.1).is_ok());
    }

    #[test]
    fn insufficient_data_rejected() {
        let r = fit_linear(&[vec![1.0]], &[1.0], &names(1), 0.0);
        assert!(matches!(r, Err(MlError::InsufficientData { .. })));
    }

    #[test]
    fn predict_arity_checked() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let m = fit_linear(&xs, &ys, &names(1), 0.0).unwrap();
        assert!(m.predict(&[vec![1.0, 2.0]]).is_err());
        assert_eq!(m.predict(&[vec![10.0]]).unwrap().len(), 1);
    }
}
