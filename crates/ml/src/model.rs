//! Table-level model API (the `Train a model to predict <column>` skill).
//!
//! Bridges the typed kernels below to the engine's tables: feature
//! extraction with null handling, automatic task detection (numeric target
//! → regression, string target → classification), and prediction back into
//! a column.

use dc_engine::{Column, Table};

use crate::error::{MlError, Result};
use crate::linear::{fit_linear, LinearModel};
use crate::tree::{fit_tree, DecisionTree};

/// Which learner to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlMethod {
    /// Pick by target type: regression for numeric, tree for strings.
    Auto,
    /// Linear/ridge regression (numeric targets).
    Linear,
    /// CART decision tree (string-class targets; numeric targets are
    /// binned into classes first — rarely what you want, so Auto avoids it).
    DecisionTree,
}

/// A trained model plus the metadata needed to apply and explain it.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    pub name: String,
    pub target: String,
    pub features: Vec<String>,
    pub kind: ModelKind,
    /// Rows actually used for training (after null dropping).
    pub training_rows: usize,
}

/// The fitted estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    Regression(LinearModel),
    Classification(DecisionTree),
}

impl Model {
    /// Short human description for artifact listings and GEL explanations.
    pub fn describe(&self) -> String {
        match &self.kind {
            ModelKind::Regression(m) => format!(
                "Model {}: linear regression predicting {} from [{}] (R² = {:.3}, {} rows)",
                self.name,
                self.target,
                self.features.join(", "),
                m.r_squared,
                self.training_rows
            ),
            ModelKind::Classification(t) => format!(
                "Model {}: decision tree (depth {}) predicting {} from [{}] ({} classes, {} rows)",
                self.name,
                t.depth(),
                self.target,
                self.features.join(", "),
                t.classes.len(),
                self.training_rows
            ),
        }
    }
}

/// Extract numeric feature rows, dropping rows where any feature (or the
/// paired extra column, when given) is null. Returns (rows, kept_indices).
fn feature_rows(
    table: &Table,
    features: &[String],
    also_require: Option<&str>,
) -> Result<(Vec<Vec<f64>>, Vec<usize>)> {
    if features.is_empty() {
        return Err(MlError::invalid("at least one feature column required"));
    }
    let cols: Vec<&Column> = features
        .iter()
        .map(|f| {
            let c = table
                .column(f)
                .map_err(|_| MlError::bad_column(f, "not found"))?;
            if !c.dtype().is_numeric() && c.dtype() != dc_engine::DataType::Date {
                return Err(MlError::bad_column(
                    f,
                    format!("{} is not numeric", c.dtype()),
                ));
            }
            Ok(c)
        })
        .collect::<Result<_>>()?;
    let extra = match also_require {
        Some(t) => Some(
            table
                .column(t)
                .map_err(|_| MlError::bad_column(t, "not found"))?,
        ),
        None => None,
    };
    let mut rows = Vec::new();
    let mut kept = Vec::new();
    'rows: for r in 0..table.num_rows() {
        if let Some(e) = extra {
            if !e.validity().get(r) {
                continue;
            }
        }
        let mut row = Vec::with_capacity(cols.len());
        for c in &cols {
            match c.numeric_at(r) {
                Some(v) => row.push(v),
                None => continue 'rows,
            }
        }
        rows.push(row);
        kept.push(r);
    }
    Ok((rows, kept))
}

/// Train a model on `table` to predict `target` from `features`.
pub fn train_model(
    table: &Table,
    name: impl Into<String>,
    target: &str,
    features: &[String],
    method: MlMethod,
) -> Result<Model> {
    let target_col = table
        .column(target)
        .map_err(|_| MlError::bad_column(target, "not found"))?;
    let numeric_target = target_col.dtype().is_numeric();
    let method = match method {
        MlMethod::Auto => {
            if numeric_target {
                MlMethod::Linear
            } else {
                MlMethod::DecisionTree
            }
        }
        m => m,
    };
    let (xs, kept) = feature_rows(table, features, Some(target))?;
    match method {
        MlMethod::Linear => {
            if !numeric_target {
                return Err(MlError::bad_column(
                    target,
                    "linear regression needs a numeric target",
                ));
            }
            let ys: Vec<f64> = kept
                .iter()
                .map(|&r| target_col.numeric_at(r).expect("validity checked"))
                .collect();
            let fitted = fit_linear(&xs, &ys, features, 0.0)
                .or_else(|_| fit_linear(&xs, &ys, features, 1e-6))?;
            Ok(Model {
                name: name.into(),
                target: target.to_string(),
                features: features.to_vec(),
                kind: ModelKind::Regression(fitted),
                training_rows: xs.len(),
            })
        }
        MlMethod::DecisionTree => {
            let labels: Vec<String> = kept.iter().map(|&r| target_col.get(r).render()).collect();
            let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
            let fitted = fit_tree(&xs, &label_refs, 6)?;
            Ok(Model {
                name: name.into(),
                target: target.to_string(),
                features: features.to_vec(),
                kind: ModelKind::Classification(fitted),
                training_rows: xs.len(),
            })
        }
        MlMethod::Auto => unreachable!("resolved above"),
    }
}

/// Apply a model, returning the prediction column (null where any feature
/// is null).
pub fn predict(model: &Model, table: &Table) -> Result<Column> {
    let (xs, kept) = feature_rows(table, &model.features, None)?;
    let n = table.num_rows();
    match &model.kind {
        ModelKind::Regression(m) => {
            let preds = m.predict(&xs)?;
            let mut vals: Vec<Option<f64>> = vec![None; n];
            for (&r, p) in kept.iter().zip(preds) {
                vals[r] = Some(p);
            }
            Ok(Column::from_opt_floats(vals))
        }
        ModelKind::Classification(t) => {
            let preds = t.predict(&xs)?;
            let mut vals: Vec<Option<String>> = vec![None; n];
            for (&r, p) in kept.iter().zip(preds) {
                vals[r] = Some(p);
            }
            Ok(Column::from_opt_strs(vals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regression_table() -> Table {
        let xs: Vec<i64> = (0..50).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x as f64 + 1.0).collect();
        Table::new(vec![
            ("x", Column::from_ints(xs)),
            ("y", Column::from_floats(ys)),
        ])
        .unwrap()
    }

    fn classification_table() -> Table {
        let xs: Vec<i64> = (0..60).collect();
        let labels: Vec<&str> = xs
            .iter()
            .map(|&x| if x < 30 { "low" } else { "high" })
            .collect();
        Table::new(vec![
            ("x", Column::from_ints(xs)),
            ("band", Column::from_strs(labels)),
        ])
        .unwrap()
    }

    #[test]
    fn auto_picks_regression_for_numeric_target() {
        let m = train_model(
            &regression_table(),
            "m1",
            "y",
            &["x".to_string()],
            MlMethod::Auto,
        )
        .unwrap();
        assert!(matches!(m.kind, ModelKind::Regression(_)));
        let preds = predict(&m, &regression_table()).unwrap();
        let p0 = preds.get(10).as_f64().unwrap();
        assert!((p0 - 21.0).abs() < 1e-6);
        assert!(m.describe().contains("linear regression"));
    }

    #[test]
    fn auto_picks_tree_for_string_target() {
        let m = train_model(
            &classification_table(),
            "m2",
            "band",
            &["x".to_string()],
            MlMethod::Auto,
        )
        .unwrap();
        assert!(matches!(m.kind, ModelKind::Classification(_)));
        let preds = predict(&m, &classification_table()).unwrap();
        assert_eq!(preds.get(0), dc_engine::Value::Str("low".into()));
        assert_eq!(preds.get(59), dc_engine::Value::Str("high".into()));
    }

    #[test]
    fn null_features_yield_null_predictions() {
        let t = Table::new(vec![
            ("x", Column::from_opt_ints(vec![Some(1), None, Some(3)])),
            ("y", Column::from_floats(vec![2.0, 4.0, 6.0])),
        ])
        .unwrap();
        // Train on the full regression table, then predict on t.
        let m = train_model(
            &regression_table(),
            "m",
            "y",
            &["x".to_string()],
            MlMethod::Linear,
        )
        .unwrap();
        let preds = predict(&m, &t).unwrap();
        assert!(preds.get(1).is_null());
        assert!(!preds.get(0).is_null());
    }

    #[test]
    fn null_targets_dropped_in_training() {
        let t = Table::new(vec![
            ("x", Column::from_ints((0..20).collect())),
            (
                "y",
                Column::from_opt_floats(
                    (0..20)
                        .map(|i| (i % 4 != 0).then_some(3.0 * i as f64))
                        .collect(),
                ),
            ),
        ])
        .unwrap();
        let m = train_model(&t, "m", "y", &["x".to_string()], MlMethod::Linear).unwrap();
        assert_eq!(m.training_rows, 15);
    }

    #[test]
    fn bad_columns_rejected() {
        let t = regression_table();
        assert!(train_model(&t, "m", "nope", &["x".to_string()], MlMethod::Auto).is_err());
        assert!(train_model(&t, "m", "y", &["nope".to_string()], MlMethod::Auto).is_err());
        assert!(train_model(&t, "m", "y", &[], MlMethod::Auto).is_err());
        // Linear with string target.
        let c = classification_table();
        assert!(train_model(&c, "m", "band", &["x".to_string()], MlMethod::Linear).is_err());
    }

    #[test]
    fn tree_on_numeric_target_classifies_rendered_values() {
        // Explicitly choosing a tree for a numeric target treats the
        // rendered values as classes — documented behavior.
        let t = Table::new(vec![
            ("x", Column::from_ints((0..20).collect())),
            ("y", Column::from_ints((0..20).map(|i| i % 2).collect())),
        ])
        .unwrap();
        let m = train_model(&t, "m", "y", &["x".to_string()], MlMethod::DecisionTree).unwrap();
        assert!(matches!(m.kind, ModelKind::Classification(_)));
    }
}
