//! Time-series forecasting (the `Predict time series` skill of Figure 2).
//!
//! Model: linear trend + additive seasonality, fitted by OLS on the trend
//! after seasonal decomposition. Simple, deterministic, and exactly what
//! the Figure 2 recipe needs — projecting the pre-2020 GDP trend forward
//! so the gap against actuals is visible.

use crate::error::{MlError, Result};
use crate::linear::fit_linear;

/// A fitted trend + seasonality forecaster.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesModel {
    pub intercept: f64,
    pub slope: f64,
    /// Additive seasonal offsets, length = period (empty when period = 1).
    pub seasonal: Vec<f64>,
    /// Number of training observations.
    pub n_obs: usize,
}

/// Fit on an evenly spaced series. `period` is the seasonal cycle length
/// (1 = no seasonality; 4 = quarterly data with annual cycle). Nulls are
/// not allowed — the caller drops them first.
pub fn fit_time_series(values: &[f64], period: usize) -> Result<TimeSeriesModel> {
    if period == 0 {
        return Err(MlError::invalid("period must be positive"));
    }
    if values.len() < period.max(2) + 1 {
        return Err(MlError::InsufficientData {
            needed: period.max(2) + 1,
            got: values.len(),
        });
    }
    // Jointly fit trend and seasonal phase dummies so the seasonal
    // component cannot bias the slope (which plain detrending would —
    // within each cycle the pattern correlates with position).
    if period == 1 {
        let xs: Vec<Vec<f64>> = (0..values.len()).map(|i| vec![i as f64]).collect();
        let trend = fit_linear(&xs, values, &["t".to_string()], 0.0)?;
        return Ok(TimeSeriesModel {
            intercept: trend.intercept,
            slope: trend.coefficients[0],
            seasonal: Vec::new(),
            n_obs: values.len(),
        });
    }
    // Features: [t, dummy(phase=1), ..., dummy(phase=period-1)].
    let mut names = vec!["t".to_string()];
    names.extend((1..period).map(|p| format!("phase_{p}")));
    let xs: Vec<Vec<f64>> = (0..values.len())
        .map(|i| {
            let mut row = vec![i as f64];
            for p in 1..period {
                row.push(if i % period == p { 1.0 } else { 0.0 });
            }
            row
        })
        .collect();
    let fitted =
        fit_linear(&xs, values, &names, 0.0).or_else(|_| fit_linear(&xs, values, &names, 1e-9))?;
    // Phase 0 is the dummy baseline; recenter offsets to sum to zero and
    // fold the mean into the intercept.
    let mut seasonal = vec![0.0f64];
    seasonal.extend_from_slice(&fitted.coefficients[1..]);
    let mean_s = seasonal.iter().sum::<f64>() / period as f64;
    for s in &mut seasonal {
        *s -= mean_s;
    }
    Ok(TimeSeriesModel {
        intercept: fitted.intercept + mean_s,
        slope: fitted.coefficients[0],
        seasonal,
        n_obs: values.len(),
    })
}

impl TimeSeriesModel {
    /// Fitted/forecast value at time index `t` (training indices are
    /// `0..n_obs`; forecasts continue from `n_obs`).
    pub fn value_at(&self, t: usize) -> f64 {
        let base = self.intercept + self.slope * t as f64;
        if self.seasonal.is_empty() {
            base
        } else {
            base + self.seasonal[t % self.seasonal.len()]
        }
    }

    /// Forecast the next `horizon` values after the training window.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        (self.n_obs..self.n_obs + horizon)
            .map(|t| self.value_at(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_trend_extrapolates() {
        let vals: Vec<f64> = (0..20).map(|i| 10.0 + 3.0 * i as f64).collect();
        let m = fit_time_series(&vals, 1).unwrap();
        assert!((m.slope - 3.0).abs() < 1e-9);
        let f = m.forecast(3);
        assert!((f[0] - (10.0 + 3.0 * 20.0)).abs() < 1e-9);
        assert!((f[2] - (10.0 + 3.0 * 22.0)).abs() < 1e-9);
    }

    #[test]
    fn seasonal_pattern_recovered() {
        // Period-4 sawtooth on a flat base.
        let pattern = [5.0, -1.0, -3.0, -1.0];
        let vals: Vec<f64> = (0..40).map(|i| 100.0 + pattern[i % 4]).collect();
        let m = fit_time_series(&vals, 4).unwrap();
        assert!(m.slope.abs() < 1e-9);
        let f = m.forecast(4);
        for (i, v) in f.iter().enumerate() {
            assert!(
                (v - (100.0 + pattern[(40 + i) % 4])).abs() < 1e-6,
                "{i}: {v}"
            );
        }
    }

    #[test]
    fn trend_plus_seasonality() {
        let pattern = [2.0, 0.0, -2.0, 0.0];
        let vals: Vec<f64> = (0..48)
            .map(|i| 50.0 + 1.5 * i as f64 + pattern[i % 4])
            .collect();
        let m = fit_time_series(&vals, 4).unwrap();
        assert!((m.slope - 1.5).abs() < 1e-6);
        let f = m.forecast(8);
        for (k, v) in f.iter().enumerate() {
            let t = 48 + k;
            let expected = 50.0 + 1.5 * t as f64 + pattern[t % 4];
            assert!((v - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn input_validation() {
        assert!(fit_time_series(&[1.0, 2.0], 0).is_err());
        assert!(fit_time_series(&[1.0, 2.0], 4).is_err());
        assert!(fit_time_series(&[1.0], 1).is_err());
    }

    #[test]
    fn forecast_is_deterministic() {
        let vals: Vec<f64> = (0..30).map(|i| (i as f64).sin() + i as f64).collect();
        let a = fit_time_series(&vals, 4).unwrap().forecast(12);
        let b = fit_time_series(&vals, 4).unwrap().forecast(12);
        assert_eq!(a, b);
    }
}
