//! ML-layer errors.

use std::fmt;

/// Errors from training or applying models.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Not enough (or no usable) training rows.
    InsufficientData { needed: usize, got: usize },
    /// A required column is missing or non-numeric.
    BadColumn { name: String, reason: String },
    /// Invalid hyperparameter.
    InvalidArgument { message: String },
    /// The model cannot be applied to this input.
    IncompatibleInput { message: String },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
}

impl MlError {
    /// Convenience constructor for [`MlError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        MlError::InvalidArgument {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`MlError::BadColumn`].
    pub fn bad_column(name: impl Into<String>, reason: impl Into<String>) -> Self {
        MlError::BadColumn {
            name: name.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: need {needed} rows, got {got}")
            }
            MlError::BadColumn { name, reason } => write!(f, "bad column {name:?}: {reason}"),
            MlError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            MlError::IncompatibleInput { message } => write!(f, "incompatible input: {message}"),
            MlError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<dc_engine::EngineError> for MlError {
    fn from(e: dc_engine::EngineError) -> Self {
        MlError::Engine(e)
    }
}

/// Result alias for the ML crate.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MlError::InsufficientData { needed: 2, got: 0 }
            .to_string()
            .contains("need 2"));
        assert!(MlError::bad_column("x", "non-numeric")
            .to_string()
            .contains("non-numeric"));
    }
}
