//! K-means clustering (the `Cluster` skill).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::error::{MlError, Result};

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids at convergence.
    pub inertia: f64,
    pub iterations: usize,
}

/// Fit k-means with k-means++ initialization. Deterministic in `seed`.
pub fn fit_kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> Result<KMeansModel> {
    if k == 0 {
        return Err(MlError::invalid("k must be positive"));
    }
    if points.len() < k {
        return Err(MlError::InsufficientData {
            needed: k,
            got: points.len(),
        });
    }
    let dim = points[0].len();
    if dim == 0 || points.iter().any(|p| p.len() != dim) {
        return Err(MlError::invalid(
            "points must be non-empty and uniform dimension",
        ));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total == 0.0 {
            // All remaining points coincide with existing centroids.
            centroids.push(points[rng.random_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.random::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0usize;
    for _ in 0..100 {
        iterations += 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest(p, &centroids);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (ci, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                centroids[ci] = sum.iter().map(|s| s / count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| dist2(p, &centroids[a]))
        .sum();
    Ok(KMeansModel {
        centroids,
        inertia,
        iterations,
    })
}

impl KMeansModel {
    /// Assign each point to its nearest centroid.
    pub fn predict(&self, points: &[Vec<f64>]) -> Result<Vec<usize>> {
        let dim = self.centroids[0].len();
        if points.iter().any(|p| p.len() != dim) {
            return Err(MlError::IncompatibleInput {
                message: format!("model expects {dim}-dimensional points"),
            });
        }
        Ok(points.iter().map(|p| nearest(p, &self.centroids)).collect())
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for center in [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]] {
            for _ in 0..50 {
                pts.push(vec![
                    center[0] + rng.random_range(-1.0..1.0),
                    center[1] + rng.random_range(-1.0..1.0),
                ]);
            }
        }
        pts
    }

    #[test]
    fn separates_blobs() {
        let pts = three_blobs();
        let m = fit_kmeans(&pts, 3, 42).unwrap();
        let labels = m.predict(&pts).unwrap();
        // Points within a blob share a label.
        for blob in 0..3 {
            let first = labels[blob * 50];
            for i in 0..50 {
                assert_eq!(labels[blob * 50 + i], first, "blob {blob}");
            }
        }
        // Blobs get distinct labels.
        assert_ne!(labels[0], labels[50]);
        assert_ne!(labels[50], labels[100]);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = three_blobs();
        let m1 = fit_kmeans(&pts, 1, 7).unwrap();
        let m3 = fit_kmeans(&pts, 3, 7).unwrap();
        assert!(m3.inertia < m1.inertia / 10.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = three_blobs();
        let a = fit_kmeans(&pts, 3, 9).unwrap();
        let b = fit_kmeans(&pts, 3, 9).unwrap();
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn validation() {
        assert!(fit_kmeans(&[vec![1.0]], 0, 1).is_err());
        assert!(fit_kmeans(&[vec![1.0]], 2, 1).is_err());
        assert!(fit_kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 1).is_err());
    }

    #[test]
    fn duplicate_points_ok() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let m = fit_kmeans(&pts, 3, 5).unwrap();
        assert!(m.inertia < 1e-12);
    }

    #[test]
    fn predict_dimension_checked() {
        let m = fit_kmeans(&three_blobs(), 2, 1).unwrap();
        assert!(m.predict(&[vec![1.0]]).is_err());
    }
}
