//! # dc-serve — the multi-tenant session service
//!
//! DataChat's front door is conversational, but the platform behind it
//! is shared: one catalog, one snapshot store, one materialized-result
//! cache, thousands of concurrent chat sessions (§2, §4 of the paper).
//! This crate is the serving layer that makes that sharing safe:
//!
//! * **Admission control** — bounded per-tenant submission queues plus a
//!   global depth limit. Over-capacity submissions are load-shed with a
//!   typed [`ServeError::Rejected`] carrying a `retry_after` hint; the
//!   service never panics or hangs on overload.
//! * **Per-tenant scan-byte budgets** — token buckets
//!   ([`dc_storage::ByteBudget`]) metered in the same bytes the storage
//!   receipts charge. Admission reserves an upper bound; settlement
//!   books actual receipts and refunds the rest, so a tenant can never
//!   be charged more than its deposits.
//! * **Fair scheduling** — weighted fair time-sharing (start-time fair
//!   queueing) over tenant queues, one in-flight job per tenant,
//!   time-sliced execution via the resilient executor's
//!   `run_budget`/cancellation machinery. Slices are charged by elapsed
//!   time against the tenant's weight, so one tenant's million-row join
//!   cannot starve another tenant's interactive query no matter how
//!   long its slices run.
//! * **Graceful degradation** — saturation means queueing, then typed
//!   rejection, never lost work. Long jobs are preempted and *resumed*
//!   from checkpointed sub-results, not cancelled and restarted.
//!
//! ## Invariants (asserted by tests, proptests, and the chaos bench)
//!
//! 1. Every admitted job is answered exactly once — a result, a typed
//!    failure, an eviction, or `ShuttingDown`. (Answering twice panics
//!    in [`JobHandle`]'s fill cell; losing a job would hang its waiter.)
//! 2. A tenant's jobs execute in submission order, so concurrent serving
//!    produces the same per-tenant results as a serial run.
//! 3. `charged ≤ deposited` per tenant budget, under faults and
//!    preemption.
//! 4. Over-capacity and over-budget submissions get typed rejections
//!    with retry hints.
//!
//! ```
//! use dc_collab::EnvHandle;
//! use dc_serve::{Request, ServeConfig, SessionService, TenantConfig};
//! use dc_skills::Env;
//!
//! let service = SessionService::start(EnvHandle::new(Env::new()), ServeConfig::default());
//! service.register_tenant("alice", TenantConfig::new()).unwrap();
//! let result = service.run("alice", Request::gel("List the datasets").unwrap());
//! assert!(result.outcome.is_ok());
//! ```

pub mod error;
pub mod job;
mod scheduler;
pub mod service;
pub mod tenant;

pub use error::{RejectReason, Result, ServeError};
pub use job::{JobHandle, JobResult, Request};
pub use service::{ReservationMode, ServeConfig, ServiceStats, SessionService};
pub use tenant::{TenantConfig, TenantStats};

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use dc_collab::EnvHandle;
    use dc_skills::{Env, SkillCall};
    use dc_storage::{BudgetConfig, Catalog, CloudDatabase, Pricing};

    use super::*;

    /// A world with one cloud database holding a synthetic sales table.
    fn world(rows: usize) -> EnvHandle {
        let mut env = Env::new();
        let mut db = CloudDatabase::new("cloud", Pricing::default_cloud());
        let sales = dc_storage::demo::sales(rows, 7);
        db.create_table("sales", &sales).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_database(db).unwrap();
        env.catalog = catalog;
        EnvHandle::new(env)
    }

    fn load_and_count() -> Request {
        Request::new(vec![
            SkillCall::LoadTable {
                database: "cloud".into(),
                table: "sales".into(),
            },
            SkillCall::CountRows,
        ])
    }

    #[test]
    fn single_tenant_end_to_end() {
        let service = SessionService::start(world(500), ServeConfig::default());
        service
            .register_tenant("alice", TenantConfig::new())
            .unwrap();
        let result = service.run("alice", load_and_count());
        assert!(result.outcome.is_ok(), "{:?}", result.outcome);
        assert!(result.bytes_charged > 0, "a cloud scan charges bytes");
        let stats = service.tenant_stats("alice").unwrap();
        assert_eq!((stats.admitted, stats.completed), (1, 1));
    }

    #[test]
    fn queue_limits_reject_typed() {
        let config = ServeConfig {
            workers: 0,
            global_queue_limit: 1,
            ..ServeConfig::default()
        };
        let service = SessionService::start(world(50), config);
        service
            .register_tenant("a", TenantConfig::new().queue_limit(0))
            .unwrap();
        service.register_tenant("b", TenantConfig::new()).unwrap();
        // Tenant-level limit fires even with global room.
        match service.submit("a", load_and_count()) {
            Err(ServeError::Rejected {
                reason,
                retry_after,
                ..
            }) => {
                assert_eq!(reason, RejectReason::TenantQueueFull);
                assert!(retry_after.is_some());
            }
            other => panic!("expected tenant-queue rejection, got {other:?}"),
        }
        // Fill the single global slot, then the global limit fires.
        service.submit("b", load_and_count()).unwrap();
        match service.submit("b", load_and_count()) {
            Err(ServeError::Rejected {
                reason,
                retry_after,
                ..
            }) => {
                assert_eq!(reason, RejectReason::GlobalQueueFull);
                assert!(retry_after.is_some());
            }
            other => panic!("expected global-queue rejection, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_rejects_typed() {
        let service = SessionService::start(world(500), ServeConfig::default());
        service
            .register_tenant("tiny", TenantConfig::new().budget(BudgetConfig::fixed(1)))
            .unwrap();
        match service.submit("tiny", load_and_count()) {
            Err(ServeError::Rejected {
                reason,
                retry_after,
                ..
            }) => {
                assert_eq!(reason, RejectReason::BudgetExhausted);
                // A fixed budget smaller than the table can never cover
                // the reservation: typed as unreachable, not a wait.
                assert_eq!(retry_after, None);
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
        let stats = service.tenant_stats("tiny").unwrap();
        assert_eq!(stats.rejected_budget, 1);
    }

    #[test]
    fn budget_charged_never_exceeds_deposited() {
        let service = SessionService::start(world(800), ServeConfig::default());
        service
            .register_tenant(
                "metered",
                TenantConfig::new().budget(BudgetConfig::fixed(1 << 30)),
            )
            .unwrap();
        for _ in 0..4 {
            let result = service.run("metered", load_and_count());
            assert!(result.outcome.is_ok(), "{:?}", result.outcome);
        }
        let (_avail, deposited, charged) = service.budget_state("metered").unwrap();
        assert!(charged > 0, "metered scans book bytes");
        assert!(
            charged <= deposited,
            "charged {charged} > deposited {deposited}"
        );
    }

    #[test]
    fn unknown_tenant_and_bad_request() {
        let service = SessionService::start(world(10), ServeConfig::default());
        assert!(matches!(
            service.submit("ghost", load_and_count()),
            Err(ServeError::UnknownTenant { .. })
        ));
        service.register_tenant("a", TenantConfig::new()).unwrap();
        assert!(matches!(
            service.submit("a", Request::new(vec![])),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            service.register_tenant("a", TenantConfig::new()),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn shutdown_answers_every_queued_job() {
        let config = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        let service = SessionService::start(world(50), config);
        service.register_tenant("a", TenantConfig::new()).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| service.submit("a", load_and_count()).unwrap())
            .collect();
        let stats_before = service.stats();
        assert_eq!(stats_before.admitted, 3);
        service.shutdown();
        for handle in handles {
            let result = handle.wait();
            assert_eq!(result.outcome, Err(ServeError::ShuttingDown));
        }
    }

    #[test]
    fn mem_budget_spills_and_books_bytes_per_tenant() {
        // A sort over 5 000 sales rows cannot hold its state inside an
        // 8 KiB operator budget, so each slice runs the sort out of
        // core. The answer must match the unbudgeted service's, and the
        // spill traffic must land on the tenant's counters.
        let request = || {
            Request::new(vec![
                SkillCall::LoadTable {
                    database: "cloud".into(),
                    table: "sales".into(),
                },
                SkillCall::Sort {
                    keys: vec![("order_id".into(), false)],
                },
            ])
        };
        let plain = SessionService::start(world(5_000), ServeConfig::default());
        plain.register_tenant("t", TenantConfig::new()).unwrap();
        let expected = plain.run("t", request());
        let expected = expected.outcome.unwrap();

        let config = ServeConfig {
            mem_budget: Some(8 * 1024),
            ..ServeConfig::default()
        };
        let service = SessionService::start(world(5_000), config);
        service.register_tenant("t", TenantConfig::new()).unwrap();
        let result = service.run("t", request());
        let output = result.outcome.as_ref().unwrap();
        assert_eq!(
            output.as_table().unwrap(),
            expected.as_table().unwrap(),
            "out-of-core serving must not change answers"
        );
        assert!(
            result.bytes_spilled > 0,
            "an 8 KiB budget must force the sort to spill"
        );
        let stats = service.tenant_stats("t").unwrap();
        assert_eq!(
            stats.bytes_spilled, result.bytes_spilled,
            "tenant accounting must match the job's spill telemetry"
        );
        assert!(result.bytes_charged > 0, "scan accounting is unaffected");
    }

    #[test]
    fn tiny_quantum_preempts_and_resumes() {
        let config = ServeConfig {
            workers: 1,
            initial_quantum: Duration::from_micros(200),
            max_preemptions: 32,
            ..ServeConfig::default()
        };
        let service = SessionService::start(world(5_000), config);
        service
            .register_tenant("slow", TenantConfig::new())
            .unwrap();
        let mut steps = vec![SkillCall::LoadTable {
            database: "cloud".into(),
            table: "sales".into(),
        }];
        for _ in 0..20 {
            steps.push(SkillCall::CountRows);
        }
        let result = service.run("slow", Request::new(steps));
        assert!(result.outcome.is_ok(), "{:?}", result.outcome);
        assert!(
            result.preemptions >= 1,
            "a 200µs quantum preempts a 21-step program at least once"
        );
        let stats = service.tenant_stats("slow").unwrap();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.preemptions, result.preemptions as u64);
    }
}
