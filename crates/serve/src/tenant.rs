//! Per-tenant configuration and serving statistics.

use dc_storage::BudgetConfig;

/// How one tenant is admitted, scheduled, and metered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Fair-share weight over *execution time*: under contention a
    /// tenant with weight 3 is scheduled roughly three seconds of slice
    /// time for every one a weight-1 tenant gets, regardless of how the
    /// time is cut into slices. Clamped to at least 1.
    pub weight: u32,
    /// Depth limit on the tenant's own submission queue; submissions
    /// beyond it are load-shed with a typed rejection.
    pub queue_limit: usize,
    /// Scan-byte budget. `None` = unmetered.
    pub budget: Option<BudgetConfig>,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            weight: 1,
            queue_limit: 64,
            budget: None,
        }
    }
}

impl TenantConfig {
    /// An unmetered weight-1 tenant.
    pub fn new() -> TenantConfig {
        TenantConfig::default()
    }

    /// Set the scheduling weight.
    pub fn weight(mut self, weight: u32) -> TenantConfig {
        self.weight = weight;
        self
    }

    /// Set the queue depth limit.
    pub fn queue_limit(mut self, limit: usize) -> TenantConfig {
        self.queue_limit = limit;
        self
    }

    /// Meter the tenant's scans against a token-bucket budget.
    pub fn budget(mut self, budget: BudgetConfig) -> TenantConfig {
        self.budget = Some(budget);
        self
    }
}

/// Counters the service keeps per tenant. Snapshot via
/// [`crate::SessionService::tenant_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs admitted into the tenant's queue.
    pub admitted: u64,
    /// Jobs answered with a successful output.
    pub completed: u64,
    /// Jobs answered with a typed execution failure or eviction.
    pub failed: u64,
    /// Submissions rejected for queue depth (tenant or global).
    pub rejected_queue: u64,
    /// Submissions rejected for budget exhaustion.
    pub rejected_budget: u64,
    /// Queued jobs answered `ShuttingDown` at service shutdown.
    pub shed_at_shutdown: u64,
    /// Preempt-and-resume cycles across all of the tenant's jobs.
    pub preemptions: u64,
    /// Scan bytes the tenant's receipts actually charged.
    pub bytes_charged: u64,
    /// Scan bytes reserved at admission (upper bounds, mostly refunded).
    pub bytes_reserved: u64,
    /// Bytes the tenant's jobs wrote to spill files while executing out
    /// of core under the service's memory budget. Sits next to
    /// `bytes_charged` so operators can see which tenants trade scan
    /// traffic for disk traffic when memory is tight.
    pub bytes_spilled: u64,
}
