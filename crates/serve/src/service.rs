//! The multi-tenant session service: a worker pool driving thousands of
//! chat sessions against one shared world.
//!
//! ## Execution model
//!
//! Skills take `&mut Env`, so execution against one world is serialized
//! by the [`EnvHandle`] world lock. What the pool buys is *scheduling*:
//! who gets the lock next, for how long, and what happens to everyone
//! else's latency while a heavy job holds it. Each dispatch runs one
//! **time slice** (`quantum`): the worker locks the world, sets scan
//! attribution to the tenant, and drives the job's steps under an
//! [`ExecPolicy`] whose `run_budget` is the slice remainder. A job that
//! outruns its slice is preempted mid-DAG — completed sub-results stay
//! checkpointed in the session's executor — and re-queued at the front
//! of its tenant's queue with a doubled (capped) quantum; re-dispatch
//! **resumes** from the checkpointed frontier rather than starting over.
//!
//! ## Overload state machine
//!
//! ```text
//!   Healthy ──queues grow──▶ Backpressure ──depth limit──▶ Shedding
//!      ▲                        │                             │
//!      └──── queues drain ◀─────┴── typed Rejected answers ◀──┘
//! ```
//!
//! Under light load every submission is admitted and dispatched in
//! weighted fair order. As the pool saturates, jobs queue (backpressure) —
//! latency grows but nothing is lost. Past the per-tenant or global
//! depth limits, admission answers [`ServeError::Rejected`] with a
//! `retry_after` hint instead of queueing — load is shed at the door,
//! never by dropping an admitted job. Shutdown drains every queue with
//! typed `ShuttingDown` answers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dc_collab::{EnvHandle, SessionRef, SessionRegistry};
use dc_skills::resilient::{ExecPolicy, RetryPolicy};
use dc_skills::{plan_linear_pushdown, Env, SkillCall};

use crate::error::{Result, ServeError};
use crate::job::{Job, JobCell, JobHandle, Request};
use crate::scheduler::{Dispatch, JobEnd, Scheduler};
use crate::tenant::{TenantConfig, TenantStats};

/// Pool-wide knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. 0 is allowed (nothing executes until shutdown —
    /// useful for tests that inspect queue behavior deterministically).
    pub workers: usize,
    /// Service-wide queued-job ceiling; admissions beyond it are shed.
    pub global_queue_limit: usize,
    /// First time slice a job gets.
    pub initial_quantum: Duration,
    /// Ceiling for the doubling quantum of repeatedly preempted jobs.
    pub max_quantum: Duration,
    /// Preemptions after which a job is evicted instead of re-queued.
    pub max_preemptions: u32,
    /// Per-node retry policy applied inside each slice (transient storage
    /// faults absorbed by the resilient executor).
    pub retry: RetryPolicy,
    /// Per-session checkpoint-memory ceiling. After a job is answered,
    /// if its session's executor holds more than this many bytes of
    /// checkpointed results, they are dropped (the DAG survives, so
    /// continuity is re-computed, not lost). `None` = unbounded.
    pub session_cache_limit: Option<u64>,
    /// How admission sizes the byte reservation it takes against a
    /// metered tenant's budget.
    pub reservation: ReservationMode,
    /// Per-slice operator-memory budget. When set, each slice runs under
    /// a [`dc_engine::MemContext`] with this many bytes of transient
    /// join/group-by/sort state; heavier operators spill to disk instead
    /// of growing the worker's footprint. Spill traffic is booked per
    /// tenant ([`TenantStats::bytes_spilled`]) next to the scan bytes
    /// their budgets meter. `None` = unbounded in-memory execution.
    pub mem_budget: Option<u64>,
}

/// Admission reservation policy for metered tenants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReservationMode {
    /// Reserve the `dc-analyze` estimator's scan-byte upper bound: the
    /// fused plan priced block-by-block with zone-map prune verdicts,
    /// deduped by load identity. Sound (scans cannot charge more under a
    /// cold cache) yet far tighter than full bytes for selective
    /// programs, so a fixed budget admits strictly more of them.
    #[default]
    Estimated,
    /// Reserve the total stored bytes of every distinct table the
    /// program loads — the pre-estimator behavior, kept for comparison
    /// benchmarks and as a belt-and-suspenders mode.
    FullBytes,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            global_queue_limit: 1024,
            initial_quantum: Duration::from_millis(25),
            max_quantum: Duration::from_millis(400),
            max_preemptions: 12,
            retry: RetryPolicy::default(),
            session_cache_limit: Some(256 << 20),
            reservation: ReservationMode::default(),
            mem_budget: None,
        }
    }
}

/// Service-wide counter snapshot (sums of the per-tenant stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    pub admitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejected_queue: u64,
    pub rejected_budget: u64,
    pub shed_at_shutdown: u64,
    pub preemptions: u64,
}

impl ServiceStats {
    /// Every admitted job owes exactly one answer: completed, failed, or
    /// shed. True once the service is idle or shut down.
    pub fn answered(&self) -> u64 {
        self.completed + self.failed + self.shed_at_shutdown
    }
}

struct Inner {
    env: EnvHandle,
    sched: Scheduler,
    config: ServeConfig,
    registry: SessionRegistry,
    next_job: AtomicU64,
}

/// The multi-tenant session service. See the module docs for the
/// execution model; see [`crate`] docs for the invariants.
pub struct SessionService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl SessionService {
    /// Start a worker pool serving jobs against the world behind `env`.
    pub fn start(env: EnvHandle, config: ServeConfig) -> SessionService {
        let inner = Arc::new(Inner {
            sched: Scheduler::new(
                config.global_queue_limit,
                config.workers,
                config.initial_quantum,
            ),
            env,
            config: config.clone(),
            registry: SessionRegistry::new(),
            next_job: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dc-serve-{i}"))
                    .spawn(move || {
                        while let Some(dispatch) = inner.sched.next() {
                            drive(&inner, dispatch);
                        }
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        SessionService { inner, workers }
    }

    /// Register a tenant: opens a dedicated session owned by the tenant
    /// and installs its queue, weight, and budget.
    pub fn register_tenant(&self, name: &str, config: TenantConfig) -> Result<()> {
        let session = self.inner.registry.open(name);
        self.inner.sched.register(name, config, session)
    }

    /// Submit a request for `tenant`. Returns a handle immediately; the
    /// job runs asynchronously on the pool. Every admission failure is a
    /// typed error — over-capacity and over-budget submissions get
    /// [`ServeError::Rejected`] with a `retry_after` hint.
    pub fn submit(&self, tenant: &str, request: Request) -> Result<JobHandle> {
        if request.steps.is_empty() {
            return Err(ServeError::BadRequest {
                message: "empty program".to_string(),
            });
        }
        let metered =
            self.inner
                .sched
                .has_budget(tenant)
                .ok_or_else(|| ServeError::UnknownTenant {
                    tenant: tenant.to_string(),
                })?;
        // Fuse filter steps into their scans up front. A step-at-a-time
        // session can't benefit from DAG-level pushdown (the load is each
        // slice's protected target, and the late fused re-plan is a
        // structural cache miss that rescans), so the step list itself is
        // rewritten. Only the final step's output is observable, so this
        // is outcome-preserving — and it makes the estimator's pruned
        // bound the bytes the scan will actually charge.
        let steps = match plan_linear_pushdown(&request.steps) {
            Some(fused) => fused,
            None => request.steps,
        };
        // Reservation against the tenant's budget. Unmetered tenants skip
        // this so their submissions never touch the world lock.
        let (reserved, estimates) = if metered {
            self.inner
                .env
                .with(|env| match self.inner.config.reservation {
                    ReservationMode::Estimated => {
                        let est = dc_analyze::estimate_steps(env, &steps);
                        (est.reserve, est.per_step)
                    }
                    ReservationMode::FullBytes => (estimate_scan_bytes(env, &steps), Vec::new()),
                })
        } else {
            (0, Vec::new())
        };
        let cell = Arc::new(JobCell::default());
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        let handle = JobHandle {
            cell: Arc::clone(&cell),
            id,
            tenant: tenant.to_string(),
        };
        let job = Job {
            id,
            tenant: tenant.to_string(),
            steps,
            name_result: request.name_result,
            next_step: 0,
            staged: None,
            quantum: self.inner.config.initial_quantum,
            preemptions: 0,
            reserved,
            estimates,
            charged: 0,
            cache_hits: 0,
            bytes_saved: 0,
            spilled: 0,
            exec: Duration::ZERO,
            submitted: Instant::now(),
            first_dispatch: None,
            last_output: None,
            cell,
        };
        self.inner.sched.admit(job)?;
        Ok(handle)
    }

    /// Submit and block for the answer — the synchronous convenience
    /// used by tests and closed-loop load generators.
    pub fn run(&self, tenant: &str, request: Request) -> crate::job::JobResult {
        match self.submit(tenant, request) {
            Ok(handle) => handle.wait(),
            Err(err) => crate::job::JobResult {
                id: u64::MAX,
                tenant: tenant.to_string(),
                outcome: Err(err),
                queued: Duration::ZERO,
                wall: Duration::ZERO,
                exec: Duration::ZERO,
                preemptions: 0,
                bytes_reserved: 0,
                bytes_charged: 0,
                bytes_estimated: 0,
                cache_hits: 0,
                bytes_saved: 0,
                bytes_spilled: 0,
            },
        }
    }

    /// The serving counters for one tenant.
    pub fn tenant_stats(&self, name: &str) -> Option<TenantStats> {
        self.inner.sched.tenant_stats(name)
    }

    /// All tenants' counters, in registration order.
    pub fn all_tenant_stats(&self) -> Vec<(String, TenantStats)> {
        self.inner.sched.all_stats()
    }

    /// `(available, deposited, charged)` bytes of a metered tenant's
    /// budget bucket; `None` for unknown or unmetered tenants.
    pub fn budget_state(&self, name: &str) -> Option<(u64, u64, u64)> {
        self.inner.sched.budget_state(name)
    }

    /// Service-wide counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for (_, t) in self.inner.sched.all_stats() {
            total.admitted += t.admitted;
            total.completed += t.completed;
            total.failed += t.failed;
            total.rejected_queue += t.rejected_queue;
            total.rejected_budget += t.rejected_budget;
            total.shed_at_shutdown += t.shed_at_shutdown;
            total.preemptions += t.preemptions;
        }
        total
    }

    /// Jobs currently queued (excluding in-flight).
    pub fn queued(&self) -> usize {
        self.inner.sched.queued()
    }

    /// Stop accepting work, answer every queued job `ShuttingDown`, and
    /// join the pool (in-flight slices finish first).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for job in self.inner.sched.shutdown() {
            job.finish(Err(ServeError::ShuttingDown));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for SessionService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Upper bound on the scan bytes `steps` could charge: the total stored
/// bytes of every *distinct* cloud table the program loads — a program
/// loading one table twice hits the session's structural cache on the
/// second load and charges it once, so reserving per mention would
/// double-count. Snapshots and datasets already in the session are off
/// the metered path and count zero.
fn estimate_scan_bytes(env: &Env, steps: &[SkillCall]) -> u64 {
    let mut seen: Vec<(&str, &str)> = Vec::new();
    steps
        .iter()
        .map(|call| match call {
            SkillCall::LoadTable { database, table }
            | SkillCall::LoadTableFiltered {
                database, table, ..
            }
            | SkillCall::LoadTableProjected {
                database, table, ..
            } => {
                if seen.contains(&(database.as_str(), table.as_str())) {
                    return 0;
                }
                seen.push((database, table));
                env.catalog
                    .database(database)
                    .ok()
                    .and_then(|db| db.table(table).ok())
                    .map_or(0, |t| t.total_bytes())
            }
            _ => 0,
        })
        .sum()
}

/// How a time slice ended.
enum SliceEnd {
    /// Every step committed; the job is done.
    Done,
    /// Out of slice (or a retryable failure): resume later.
    Preempted,
    /// A permanent failure: answer it.
    Fail(ServeError),
}

/// Run one dispatched job for one time slice, then route the outcome:
/// answer it, evict it, or re-queue it for resumption.
fn drive(inner: &Inner, dispatch: Dispatch) {
    let Dispatch {
        mut job,
        session,
        tenant,
    } = dispatch;
    if job.first_dispatch.is_none() {
        job.first_dispatch = Some(Instant::now());
    }
    // The slice clock starts only once the world lock is held: waiting
    // behind another worker's slice must not eat this job's quantum (it
    // would preempt jobs that never got to run a step) nor be charged
    // against the tenant's fair share.
    let (end, spent) = inner.env.with(|env| {
        let started = Instant::now();
        env.attribution = Some(job.tenant.clone());
        let end = run_slice(inner, &mut job, &session, env, started);
        env.attribution = None;
        (end, started.elapsed())
    });
    if std::env::var_os("DC_SERVE_TRACE").is_some() && spent.as_millis() > 30 {
        eprintln!(
            "[trace] tenant={} slice={}ms quantum={}ms step={}/{}",
            job.tenant,
            spent.as_millis(),
            job.quantum.as_millis(),
            job.next_step,
            job.steps.len()
        );
    }
    job.exec += spent;
    // Memory bound: compact the session's checkpoints while the tenant
    // is still gated in-flight (no concurrent run can be mid-write).
    if !matches!(end, SliceEnd::Preempted) {
        if let Some(limit) = inner.config.session_cache_limit {
            if session.checkpoint_bytes() > limit {
                session.clear_checkpoints();
            }
        }
    }
    match end {
        SliceEnd::Done => {
            if let Some(name) = &job.name_result {
                let _ = session.name_current(name.clone());
            }
            inner.sched.release(
                tenant,
                job.reserved,
                job.charged,
                job.spilled,
                spent,
                JobEnd::Completed,
            );
            let output = job
                .last_output
                .take()
                .expect("completed non-empty program has an output");
            job.finish(Ok(output));
        }
        SliceEnd::Preempted => {
            job.preemptions += 1;
            if job.preemptions > inner.config.max_preemptions {
                inner.sched.release(
                    tenant,
                    job.reserved,
                    job.charged,
                    job.spilled,
                    spent,
                    JobEnd::Failed,
                );
                let preemptions = job.preemptions;
                job.finish(Err(ServeError::Evicted { preemptions }));
                return;
            }
            job.quantum = (job.quantum * 2).min(inner.config.max_quantum);
            if let Err(job) = inner.sched.preempt(tenant, job, spent) {
                // The pool is draining; answer instead of re-queueing.
                inner.sched.release(
                    tenant,
                    job.reserved,
                    job.charged,
                    job.spilled,
                    spent,
                    JobEnd::Shed,
                );
                job.finish(Err(ServeError::ShuttingDown));
            }
        }
        SliceEnd::Fail(err) => {
            inner.sched.release(
                tenant,
                job.reserved,
                job.charged,
                job.spilled,
                spent,
                JobEnd::Failed,
            );
            job.finish(Err(err));
        }
    }
}

/// Drive `job`'s remaining steps until the slice expires, a step fails,
/// or the program completes. Holds the world lock for at most roughly
/// `job.quantum` — the slice remainder is threaded into the resilient
/// executor as `run_budget`, which arms scan cancellation and preempts
/// unstarted DAG nodes, so even a single huge step respects the slice.
fn run_slice(
    inner: &Inner,
    job: &mut Job,
    session: &SessionRef,
    env: &mut Env,
    started: Instant,
) -> SliceEnd {
    while job.next_step < job.steps.len() {
        let elapsed = started.elapsed();
        if elapsed >= job.quantum {
            return SliceEnd::Preempted;
        }
        let node = match job.staged {
            Some(node) => node,
            None => match session.stage(&job.tenant, job.steps[job.next_step].clone()) {
                Ok(node) => {
                    job.staged = Some(node);
                    node
                }
                Err(err) => {
                    return SliceEnd::Fail(ServeError::Failed {
                        message: err.to_string(),
                        retryable: false,
                    })
                }
            },
        };
        let policy = ExecPolicy {
            retry: inner.config.retry.clone(),
            run_budget: Some(job.quantum - elapsed),
            mem_budget: inner.config.mem_budget,
            ..ExecPolicy::default()
        };
        // The admission estimate for this step, pinned to its staged node
        // so the report's q-error accounting lines up per node.
        let estimates: Vec<(dc_skills::NodeId, u64)> = job
            .estimates
            .get(job.next_step)
            .map(|&b| (node, b))
            .into_iter()
            .collect();
        let report = match session.execute_staged_with_estimates(
            &job.tenant,
            node,
            env,
            &policy,
            &estimates,
        ) {
            Ok(report) => report,
            // Structural errors (permissions, session lock) — the
            // in-flight gate makes these unreachable in practice, but
            // answer typed rather than trust that.
            Err(err) => {
                return SliceEnd::Fail(ServeError::Failed {
                    message: err.to_string(),
                    retryable: false,
                })
            }
        };
        job.charged += report.bytes_scanned();
        job.cache_hits += report.cache_hits;
        job.bytes_saved += report.bytes_saved;
        job.spilled += report.bytes_spilled;
        if report.succeeded() {
            job.last_output = report.output;
            job.staged = None;
            job.next_step += 1;
        } else if report.first_error().is_some_and(|err| err.is_retryable()) {
            // Slice expiry surfaces as a retryable `Timeout` on the
            // unfinished frontier; exhausted transient-fault retries are
            // retryable too. Either way the checkpointed sub-results
            // make re-dispatch a resume, not a restart.
            return SliceEnd::Preempted;
        } else {
            let message = report
                .first_error()
                .map_or_else(|| "execution failed".to_string(), |err| err.to_string());
            return SliceEnd::Fail(ServeError::Failed {
                message,
                retryable: false,
            });
        }
    }
    SliceEnd::Done
}
