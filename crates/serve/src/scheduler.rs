//! Admission control and weighted fair dispatch.
//!
//! One mutex guards all tenant queues; a condvar wakes workers when a
//! tenant becomes dispatchable. Three invariants live here:
//!
//! 1. **Admission is all-or-nothing.** A submission either lands in its
//!    tenant's queue (budget reserved, counters bumped) or is answered
//!    with a typed [`ServeError::Rejected`] — there is no state in
//!    between, so no admitted job can be lost at the door.
//! 2. **At most one in-flight job per tenant.** A tenant's next job is
//!    never dispatched while one of its jobs is running or awaiting
//!    requeue. This keeps per-tenant execution serial (sessions are
//!    single-writer; results must match a tenant-serial history) and
//!    makes the fair-share accounting meaningful.
//! 3. **Weights share *time*, not dispatch slots.** Dispatch is
//!    start-time fair queueing over weighted virtual time: each tenant
//!    carries a virtual finish tag advanced by `spent / weight` after
//!    every slice, and the ready tenant with the smallest start tag
//!    (`max(global clock, its finish tag)`) runs next. Counting
//!    dispatches instead would let a tenant whose slices run hundreds of
//!    milliseconds (a million-row join ramped up to `max_quantum`)
//!    take one "turn" per round yet consume almost all wall-clock time;
//!    charging elapsed time makes a turn's cost proportional to its
//!    length, so a noisy tenant gets its weight's share of *time* and
//!    interactive tenants' tail latency is bounded by one slice of the
//!    heaviest tenant. Idle tenants don't accrue credit (the start tag
//!    is clamped to the global clock), and the scheme is
//!    work-conserving: a lone ready tenant runs immediately no matter
//!    how much it has consumed before.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use dc_collab::SessionRef;
use dc_storage::ByteBudget;
use parking_lot::{Condvar, Mutex};

use crate::error::{RejectReason, ServeError};
use crate::job::Job;
use crate::tenant::{TenantConfig, TenantStats};

/// What a worker gets from [`Scheduler::next`]: the job plus the handles
/// it needs to run and then release it.
pub(crate) struct Dispatch {
    pub job: Job,
    pub session: SessionRef,
    /// Stable index of the tenant (registration order).
    pub tenant: usize,
}

/// How a dispatched job left the worker, for settlement and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobEnd {
    Completed,
    Failed,
    /// Answered `ShuttingDown` while the pool drained.
    Shed,
}

struct TenantEntry {
    name: String,
    config: TenantConfig,
    queue: VecDeque<Job>,
    /// A dispatched job of this tenant has not yet been released.
    in_flight: bool,
    session: SessionRef,
    budget: Option<ByteBudget>,
    stats: TenantStats,
    /// Weighted virtual time at which this tenant's last slice finished.
    vfinish: u64,
    /// Start tag of the in-flight slice (charged on preempt/release).
    vstart: u64,
}

impl TenantEntry {
    /// Advance the finish tag by the slice's wall time divided by the
    /// tenant's weight: heavier tenants pay less virtual time for the
    /// same real time, so they get a proportionally larger time share.
    fn charge(&mut self, spent: Duration) {
        let cost = (spent.as_micros() as u64 / u64::from(self.config.weight.max(1))).max(1);
        self.vfinish = self.vstart.saturating_add(cost);
    }
}

struct SchedState {
    tenants: Vec<TenantEntry>,
    by_name: HashMap<String, usize>,
    /// Global virtual clock: the start tag of the last dispatched slice.
    /// Monotone; clamping idle tenants' start tags to it denies credit
    /// for idle time.
    vclock: u64,
    /// Jobs sitting in queues (not in flight).
    queued: usize,
    shutdown: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    work: Condvar,
    global_queue_limit: usize,
    workers: usize,
    /// Slice length used to phrase queue-full `retry_after` estimates.
    quantum_hint: Duration,
}

impl Scheduler {
    pub(crate) fn new(
        global_queue_limit: usize,
        workers: usize,
        quantum_hint: Duration,
    ) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                tenants: Vec::new(),
                by_name: HashMap::new(),
                vclock: 0,
                queued: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            global_queue_limit,
            workers: workers.max(1),
            quantum_hint,
        }
    }

    pub(crate) fn register(
        &self,
        name: &str,
        config: TenantConfig,
        session: SessionRef,
    ) -> Result<(), ServeError> {
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if st.by_name.contains_key(name) {
            return Err(ServeError::BadRequest {
                message: format!("tenant {name:?} already registered"),
            });
        }
        let idx = st.tenants.len();
        let vclock = st.vclock;
        st.tenants.push(TenantEntry {
            name: name.to_string(),
            budget: config.budget.map(ByteBudget::new),
            config,
            queue: VecDeque::new(),
            in_flight: false,
            session,
            stats: TenantStats::default(),
            vfinish: vclock,
            vstart: vclock,
        });
        st.by_name.insert(name.to_string(), idx);
        Ok(())
    }

    /// Admit `job` into its tenant's queue or answer why not. The
    /// sequencing matters: global depth, then tenant depth, then budget —
    /// a budget reservation is only attempted for a job that would
    /// actually be queued, so a rejected job never holds tokens.
    pub(crate) fn admit(&self, job: Job) -> Result<(), ServeError> {
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let Some(&idx) = st.by_name.get(&job.tenant) else {
            return Err(ServeError::UnknownTenant {
                tenant: job.tenant.clone(),
            });
        };
        if st.queued >= self.global_queue_limit {
            // Rough drain estimate: the backlog split across the pool,
            // one slice each.
            let rounds = (st.queued / self.workers).max(1) as u32;
            st.tenants[idx].stats.rejected_queue += 1;
            return Err(ServeError::Rejected {
                tenant: job.tenant.clone(),
                reason: RejectReason::GlobalQueueFull,
                retry_after: Some(self.quantum_hint * rounds),
            });
        }
        let entry = &mut st.tenants[idx];
        if entry.queue.len() >= entry.config.queue_limit {
            entry.stats.rejected_queue += 1;
            return Err(ServeError::Rejected {
                tenant: job.tenant.clone(),
                reason: RejectReason::TenantQueueFull,
                retry_after: Some(self.quantum_hint * entry.queue.len().max(1) as u32),
            });
        }
        if let Some(budget) = &mut entry.budget {
            if !budget.try_reserve(job.reserved) {
                let retry_after = budget.retry_after(job.reserved);
                entry.stats.rejected_budget += 1;
                return Err(ServeError::Rejected {
                    tenant: job.tenant.clone(),
                    reason: RejectReason::BudgetExhausted,
                    retry_after,
                });
            }
        }
        entry.stats.admitted += 1;
        entry.stats.bytes_reserved += job.reserved;
        entry.queue.push_back(job);
        st.queued += 1;
        self.work.notify_one();
        Ok(())
    }

    /// Block until a job is dispatchable (or the service shuts down).
    pub(crate) fn next(&self) -> Option<Dispatch> {
        let mut st = self.state.lock();
        loop {
            if st.shutdown {
                return None;
            }
            if st.queued > 0 {
                // Pick the ready tenant with the smallest start tag. A
                // tenant that has been idle gets `vclock` (no banked
                // credit); a tenant that just burned a long slice sits at
                // its advanced finish tag until the clock catches up —
                // unless nothing else is ready, in which case it IS the
                // minimum and runs at once (work conservation).
                let vclock = st.vclock;
                let pick = st
                    .tenants
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.in_flight && !t.queue.is_empty())
                    .map(|(idx, t)| (t.vfinish.max(vclock), idx))
                    .min();
                if let Some((tag, idx)) = pick {
                    st.vclock = tag;
                    let entry = &mut st.tenants[idx];
                    entry.vstart = tag;
                    entry.in_flight = true;
                    let job = entry.queue.pop_front().expect("ready tenant has a job");
                    let session = entry.session.clone();
                    st.queued -= 1;
                    return Some(Dispatch {
                        job,
                        session,
                        tenant: idx,
                    });
                }
            }
            self.work.wait(&mut st);
        }
    }

    /// Put a preempted job back at the *front* of its tenant's queue so
    /// it resumes before anything newer from the same tenant (per-tenant
    /// FIFO is what makes results match a serial history). Returns the
    /// job back if the service is draining — the caller answers it
    /// `ShuttingDown`.
    // The Err variant carries the whole Job back, but only on the cold
    // shutdown race; boxing it would cost an allocation per preemption
    // on the hot path signature.
    #[allow(clippy::result_large_err)]
    pub(crate) fn preempt(&self, tenant: usize, job: Job, spent: Duration) -> Result<(), Job> {
        let mut st = self.state.lock();
        let shutdown = st.shutdown;
        let entry = &mut st.tenants[tenant];
        entry.in_flight = false;
        entry.charge(spent);
        entry.stats.preemptions += 1;
        if shutdown {
            return Err(job);
        }
        entry.queue.push_front(job);
        st.queued += 1;
        // The tenant became dispatchable again; wake the pool.
        self.work.notify_all();
        Ok(())
    }

    /// Release a finished (answered) job: settle its budget reservation
    /// against what it actually charged, book stats, and make the tenant
    /// dispatchable again.
    pub(crate) fn release(
        &self,
        tenant: usize,
        reserved: u64,
        charged: u64,
        spilled: u64,
        spent: Duration,
        end: JobEnd,
    ) {
        let mut st = self.state.lock();
        let entry = &mut st.tenants[tenant];
        entry.in_flight = false;
        entry.charge(spent);
        if let Some(budget) = &mut entry.budget {
            budget.settle(reserved, charged);
        }
        entry.stats.bytes_charged += charged;
        entry.stats.bytes_spilled += spilled;
        match end {
            JobEnd::Completed => entry.stats.completed += 1,
            JobEnd::Failed => entry.stats.failed += 1,
            JobEnd::Shed => entry.stats.shed_at_shutdown += 1,
        }
        self.work.notify_all();
    }

    /// Flip to draining and pull every queued job out; the caller
    /// answers them `ShuttingDown` outside the lock. Workers observe the
    /// flag and exit.
    pub(crate) fn shutdown(&self) -> Vec<Job> {
        let mut st = self.state.lock();
        st.shutdown = true;
        let mut shed = Vec::new();
        for entry in &mut st.tenants {
            while let Some(job) = entry.queue.pop_front() {
                // Book whatever earlier slices actually charged (a
                // preempted job may have run partially) and refund the
                // rest of the reservation.
                if let Some(budget) = &mut entry.budget {
                    budget.settle(job.reserved, job.charged);
                }
                entry.stats.bytes_charged += job.charged;
                entry.stats.bytes_spilled += job.spilled;
                entry.stats.shed_at_shutdown += 1;
                shed.push(job);
            }
        }
        st.queued = 0;
        self.work.notify_all();
        shed
    }

    pub(crate) fn tenant_stats(&self, name: &str) -> Option<TenantStats> {
        let st = self.state.lock();
        st.by_name.get(name).map(|&i| st.tenants[i].stats)
    }

    pub(crate) fn all_stats(&self) -> Vec<(String, TenantStats)> {
        let st = self.state.lock();
        st.tenants
            .iter()
            .map(|t| (t.name.clone(), t.stats))
            .collect()
    }

    /// `(available, deposited, charged)` of the tenant's budget bucket.
    pub(crate) fn budget_state(&self, name: &str) -> Option<(u64, u64, u64)> {
        let mut st = self.state.lock();
        let &idx = st.by_name.get(name)?;
        let budget = st.tenants[idx].budget.as_mut()?;
        Some((budget.available(), budget.deposited(), budget.charged()))
    }

    /// Jobs currently queued (not in flight).
    pub(crate) fn queued(&self) -> usize {
        self.state.lock().queued
    }

    /// Whether the named tenant is metered (`None` = unknown tenant).
    /// `submit` uses this to skip the scan-byte estimate — and the world
    /// lock it needs — for unmetered tenants.
    pub(crate) fn has_budget(&self, name: &str) -> Option<bool> {
        let st = self.state.lock();
        st.by_name
            .get(name)
            .map(|&i| st.tenants[i].budget.is_some())
    }
}
