//! Jobs: what tenants submit, what workers carry, what callers await.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_skills::{NodeId, SkillCall, SkillOutput};
use parking_lot::{Condvar, Mutex};

use crate::error::{Result, ServeError};

/// A chat program: an ordered list of skill steps executed against one
/// tenant's session, each step consuming the previous step's dataset
/// exactly as an interactive DataChat session would.
#[derive(Debug, Clone)]
pub struct Request {
    /// The steps, in submission order.
    pub steps: Vec<SkillCall>,
    /// Bind the final dataset to this name in the tenant's session, so a
    /// later request can pick it up with `UseDataset`.
    pub name_result: Option<String>,
}

impl Request {
    /// A request from already-built skill calls.
    pub fn new(steps: Vec<SkillCall>) -> Request {
        Request {
            steps,
            name_result: None,
        }
    }

    /// Parse a GEL program, one utterance per non-empty line.
    pub fn gel(program: &str) -> Result<Request> {
        let mut steps = Vec::new();
        for line in program.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let call = dc_gel::parse_gel(line).map_err(|e| ServeError::BadRequest {
                message: format!("{line:?}: {e}"),
            })?;
            steps.push(call);
        }
        Ok(Request::new(steps))
    }

    /// Name the final dataset.
    pub fn named(mut self, name: impl Into<String>) -> Request {
        self.name_result = Some(name.into());
        self
    }
}

/// The answered form of a job: outcome plus the serving telemetry the
/// benchmarks and tests key on.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job id (unique per service, assigned at admission).
    pub id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// The final step's output, or the typed reason there isn't one.
    pub outcome: Result<SkillOutput>,
    /// Admission → first time a worker picked the job up.
    pub queued: Duration,
    /// Admission → answer.
    pub wall: Duration,
    /// Time actually spent executing (sum over time slices).
    pub exec: Duration,
    /// How many times the job was preempted and resumed.
    pub preemptions: u32,
    /// Scan bytes reserved against the tenant's budget at admission.
    pub bytes_reserved: u64,
    /// Scan bytes the job's receipts actually charged.
    pub bytes_charged: u64,
    /// Statically estimated scan-byte upper bound across the job's steps
    /// (0 when admission did not estimate). Against `bytes_charged` this
    /// is the serving layer's estimate-vs-actual q-error.
    pub bytes_estimated: u64,
    /// Shared-cache hits the job's waves scored.
    pub cache_hits: u64,
    /// Scan bytes those hits avoided re-charging.
    pub bytes_saved: u64,
    /// Bytes the job spilled to disk while executing out of core under
    /// the service's per-slice memory budget (0 when unbudgeted or the
    /// job fit in memory).
    pub bytes_spilled: u64,
}

/// One-shot answer cell. `fill` panics if the slot is already occupied —
/// the structural guarantee that no job is ever answered twice.
#[derive(Debug, Default)]
pub(crate) struct JobCell {
    slot: Mutex<Option<JobResult>>,
    ready: Condvar,
}

impl JobCell {
    pub(crate) fn fill(&self, result: JobResult) {
        let mut slot = self.slot.lock();
        assert!(
            slot.is_none(),
            "job {} answered twice (duplicate execution)",
            result.id
        );
        *slot = Some(result);
        self.ready.notify_all();
    }

    fn take_blocking(&self) -> JobResult {
        let mut slot = self.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.ready.wait(&mut slot);
        }
    }

    fn is_ready(&self) -> bool {
        self.slot.lock().is_some()
    }
}

/// Caller-side handle to a submitted job. Consuming [`JobHandle::wait`]
/// makes result delivery exactly-once at the type level.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) cell: Arc<JobCell>,
    pub(crate) id: u64,
    pub(crate) tenant: String,
}

impl JobHandle {
    /// The job id assigned at admission.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant the job was submitted for.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Whether the answer has landed (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.cell.is_ready()
    }

    /// Block until the job is answered. Every admitted job is answered
    /// eventually — completion, typed failure, eviction, or shutdown —
    /// so this cannot hang on a healthy service.
    pub fn wait(self) -> JobResult {
        self.cell.take_blocking()
    }
}

/// A job as the scheduler and workers carry it: the request plus every
/// piece of resume state needed to continue after a preemption.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub tenant: String,
    pub steps: Vec<SkillCall>,
    pub name_result: Option<String>,
    /// Next step index to stage/run; steps before it are committed.
    pub next_step: usize,
    /// The staged-but-unfinished node for `steps[next_step]`, if any —
    /// re-running it resumes from the executor's checkpointed frontier.
    pub staged: Option<NodeId>,
    /// Current time-slice length; doubles after each preemption so long
    /// jobs make progress instead of thrashing.
    pub quantum: Duration,
    pub preemptions: u32,
    /// Scan bytes reserved against the tenant budget at admission.
    pub reserved: u64,
    /// Per-step scan-byte upper bounds from the admission estimator,
    /// aligned with `steps` (empty when admission did not estimate).
    /// Threaded into each slice so node reports carry `bytes_estimated`.
    pub estimates: Vec<u64>,
    /// Scan bytes charged so far across slices.
    pub charged: u64,
    pub cache_hits: u64,
    pub bytes_saved: u64,
    /// Spill bytes written so far across slices.
    pub spilled: u64,
    pub exec: Duration,
    pub submitted: Instant,
    pub first_dispatch: Option<Instant>,
    /// Output of the last committed step.
    pub last_output: Option<SkillOutput>,
    pub cell: Arc<JobCell>,
}

impl Job {
    /// Answer the job and consume it.
    pub(crate) fn finish(self, outcome: Result<SkillOutput>) {
        let now = Instant::now();
        let result = JobResult {
            id: self.id,
            tenant: self.tenant,
            outcome,
            queued: self
                .first_dispatch
                .unwrap_or(now)
                .duration_since(self.submitted),
            wall: now.duration_since(self.submitted),
            exec: self.exec,
            preemptions: self.preemptions,
            bytes_reserved: self.reserved,
            bytes_charged: self.charged,
            bytes_estimated: self.estimates.iter().sum(),
            cache_hits: self.cache_hits,
            bytes_saved: self.bytes_saved,
            bytes_spilled: self.spilled,
        };
        self.cell.fill(result);
    }
}
