//! Typed serving errors. The service's contract is that **every**
//! submitted request is answered — with a result, a typed rejection, or
//! a typed failure — never with a panic, a hang, or silence.

use std::fmt;
use std::time::Duration;

/// Why an admission attempt was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's own submission queue is at its depth limit.
    TenantQueueFull,
    /// The service-wide queue depth limit is hit (overload shedding).
    GlobalQueueFull,
    /// The tenant's scan-byte budget cannot cover the request's
    /// reservation right now.
    BudgetExhausted,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::TenantQueueFull => "tenant queue full",
            RejectReason::GlobalQueueFull => "global queue full",
            RejectReason::BudgetExhausted => "scan-byte budget exhausted",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong between `submit` and a job's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load-shed at admission. `retry_after` is the service's estimate of
    /// when the same request could succeed; `None` means it can never
    /// succeed at the current configuration (e.g. a reservation larger
    /// than the budget's capacity).
    Rejected {
        tenant: String,
        reason: RejectReason,
        retry_after: Option<Duration>,
    },
    /// The tenant was never registered with the service.
    UnknownTenant { tenant: String },
    /// The request was malformed (empty program, unparsable GEL line).
    BadRequest { message: String },
    /// The job ran and failed. `retryable` mirrors the skill-layer error
    /// taxonomy: `true` means resubmitting could succeed (timeouts,
    /// exhausted transient-fault retries), `false` means the program
    /// itself is wrong.
    Failed { message: String, retryable: bool },
    /// The job was preempted more times than the service allows and was
    /// evicted to protect the pool. Resubmitting under lighter load can
    /// succeed.
    Evicted { preemptions: u32 },
    /// The service was shut down before the job ran.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected {
                tenant,
                reason,
                retry_after,
            } => match retry_after {
                Some(d) => write!(f, "rejected for {tenant}: {reason} (retry after {d:?})"),
                None => write!(
                    f,
                    "rejected for {tenant}: {reason} (not retryable as sized)"
                ),
            },
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::Failed { message, retryable } => {
                let kind = if *retryable { "retryable" } else { "permanent" };
                write!(f, "job failed ({kind}): {message}")
            }
            ServeError::Evicted { preemptions } => {
                write!(f, "evicted after {preemptions} preemptions")
            }
            ServeError::ShuttingDown => f.write_str("service shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Whether this answer is a typed admission rejection (as opposed to
    /// an execution failure).
    pub fn is_rejection(&self) -> bool {
        matches!(self, ServeError::Rejected { .. } | ServeError::ShuttingDown)
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;
