//! Data-exploration statistics (the `Describe` skill).

use crate::column::Column;
use crate::error::Result;
use crate::table::Table;
use crate::value::Value;

/// Summary of one column, as produced by `Describe the column <column>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    pub name: String,
    pub dtype: String,
    pub count: usize,
    pub null_count: usize,
    pub distinct_count: usize,
    /// Numeric columns only.
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub mean: Option<f64>,
    pub std_dev: Option<f64>,
    pub median: Option<f64>,
    /// Most frequent non-null value and its count (any type).
    pub mode: Option<(Value, usize)>,
}

/// Summarize a single column.
pub fn describe_column(table: &Table, name: &str) -> Result<ColumnSummary> {
    let col = table.column(name)?;
    let field = table.schema().field_or_err(name)?;
    Ok(summarize(&field.name, col))
}

/// Summarize every column (the spreadsheet-view dataset overview of
/// Figure 1's top-right panel).
pub fn describe_table(table: &Table) -> Vec<ColumnSummary> {
    table
        .schema()
        .fields()
        .iter()
        .zip(table.columns())
        .map(|(f, c)| summarize(&f.name, c))
        .collect()
}

fn summarize(name: &str, col: &Column) -> ColumnSummary {
    let n = col.len();
    let nulls = col.null_count();

    // Distinct + mode. Dictionary columns count per code into a flat
    // array — no hashing, no rendering; distinct counts only codes that
    // actually occur (a gathered column can retain unused dictionary
    // entries, so the dictionary length alone would overcount).
    let (distinct, mode) = if let Some((codes, dict, valid)) = col.as_dict() {
        let mut counts = vec![0usize; dict.len()];
        for i in 0..n {
            if valid.get(i) {
                counts[codes[i] as usize] += 1;
            }
        }
        let distinct = counts.iter().filter(|&&c| c > 0).count();
        // Ascending code order is ascending value order, so keeping only
        // strictly larger counts leaves the smallest value on ties —
        // matching the rendered-key path's tie-break.
        let mut mode: Option<(Value, usize)> = None;
        for (code, &c) in counts.iter().enumerate() {
            if c > 0 && mode.as_ref().is_none_or(|m| c > m.1) {
                mode = Some((Value::Str(dict[code].clone()), c));
            }
        }
        (distinct, mode)
    } else {
        // One pass over rendered keys.
        let mut counts: std::collections::HashMap<String, (Value, usize)> =
            std::collections::HashMap::new();
        for i in 0..n {
            let v = col.get(i);
            if v.is_null() {
                continue;
            }
            let key = v.render();
            counts.entry(key).and_modify(|e| e.1 += 1).or_insert((v, 1));
        }
        let distinct = counts.len();
        let mode = counts
            .into_values()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp_total(&a.0)));
        (distinct, mode)
    };

    // Numeric moments.
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut vals: Vec<f64> = Vec::new();
    if col.dtype().is_numeric() {
        for i in 0..n {
            if let Some(x) = col.numeric_at(i) {
                min = min.min(x);
                max = max.max(x);
                vals.push(x);
            }
        }
    }
    let (min, max, mean, std_dev, median) = if vals.is_empty() {
        (None, None, None, None, None)
    } else {
        let k = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / k;
        let var = if vals.len() > 1 {
            vals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (k - 1.0)
        } else {
            0.0
        };
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = vals.len() / 2;
        let median = if vals.len() % 2 == 1 {
            vals[mid]
        } else {
            (vals[mid - 1] + vals[mid]) / 2.0
        };
        (
            Some(min),
            Some(max),
            Some(mean),
            Some(var.sqrt()),
            Some(median),
        )
    };

    ColumnSummary {
        name: name.to_string(),
        dtype: col.dtype().to_string(),
        count: n,
        null_count: nulls,
        distinct_count: distinct,
        min,
        max,
        mean,
        std_dev,
        median,
        mode,
    }
}

impl ColumnSummary {
    /// One-paragraph English description, used by GEL explanations.
    pub fn to_english(&self) -> String {
        let mut s = format!(
            "Column {} ({}) has {} rows, {} null ({}%), {} distinct values.",
            self.name,
            self.dtype,
            self.count,
            self.null_count,
            (self.null_count * 100).checked_div(self.count).unwrap_or(0),
            self.distinct_count
        );
        if let (Some(min), Some(max), Some(mean)) = (self.min, self.max, self.mean) {
            s.push_str(&format!(
                " Values range from {min} to {max} with mean {mean:.2}."
            ));
        }
        if let Some((v, c)) = &self.mode {
            s.push_str(&format!(" Most frequent value: {} ({c} rows).", v.render()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(vec![
            (
                "age",
                Column::from_opt_ints(vec![Some(20), Some(30), None, Some(30)]),
            ),
            ("kind", Column::from_strs(vec!["a", "b", "a", "a"])),
        ])
        .unwrap()
    }

    #[test]
    fn numeric_summary() {
        let s = describe_column(&t(), "age").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, 2);
        assert_eq!(s.min, Some(20.0));
        assert_eq!(s.max, Some(30.0));
        assert!((s.mean.unwrap() - 80.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.median, Some(30.0));
        assert_eq!(s.mode.as_ref().unwrap().1, 2);
    }

    #[test]
    fn string_summary_no_moments() {
        let s = describe_column(&t(), "kind").unwrap();
        assert_eq!(s.min, None);
        assert_eq!(s.distinct_count, 2);
        assert_eq!(s.mode, Some((Value::Str("a".into()), 3)));
    }

    #[test]
    fn describe_table_covers_all() {
        let all = describe_table(&t());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "age");
    }

    #[test]
    fn english_rendering() {
        let s = describe_column(&t(), "age").unwrap();
        let text = s.to_english();
        assert!(text.contains("age"));
        assert!(text.contains("1 null"));
    }

    #[test]
    fn empty_table_summary() {
        let t = t().head(0);
        let s = describe_column(&t, "age").unwrap();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, None);
        assert_eq!(s.mode, None);
        assert!(!s.to_english().is_empty());
    }

    #[test]
    fn single_value_stddev_zero() {
        let t = Table::new(vec![("x", Column::from_ints(vec![5]))]).unwrap();
        let s = describe_column(&t, "x").unwrap();
        assert_eq!(s.std_dev, Some(0.0));
        assert_eq!(s.median, Some(5.0));
    }
}
