//! # dc-engine — columnar table engine
//!
//! The relational substrate beneath the DataChat reproduction. Provides a
//! small, fully owned implementation of the pieces the platform's skills
//! bottom out in:
//!
//! * typed, nullable columnar storage ([`column::Column`], [`bitmap::Bitmap`])
//! * schemas and tables ([`schema::Schema`], [`table::Table`])
//! * a vectorized expression language ([`expr::Expr`], [`eval`])
//! * relational operators (filter/project/group-by/join/sort/sample/... in
//!   [`ops`])
//! * morsel-driven parallel kernel dispatch ([`parallel`])
//! * CSV ingestion with type inference ([`csv`])
//! * summary statistics for data exploration ([`stats`])
//!
//! The design follows the DataFusion layering: logical descriptions
//! (expressions, operator parameters) are separate from the kernels that
//! execute them, so the skills layer can plan, cache, slice and flatten
//! before any computation happens.

pub mod bitmap;
pub mod blockio;
pub mod column;
pub mod csv;
pub mod date;
pub mod dtype;
pub mod error;
pub mod eval;
pub mod expr;
pub mod governor;
pub mod hash;
pub mod ops;
pub mod parallel;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use column::Column;
pub use dtype::DataType;
pub use error::{EngineError, Result};
pub use expr::prune::{ColumnStats, Tri};
pub use expr::{BinaryOp, Expr, ScalarFunc, UnaryOp};
pub use governor::{
    MemContext, MemoryGovernor, Reservation, ScopedSpillDir, SpillHooks, SpillMetrics,
    SpillSnapshot,
};
pub use ops::{AggFunc, AggSpec, JoinType, SortKey};
pub use schema::{Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::Value;
