//! Data types supported by the engine.

use std::fmt;

/// The logical type of a column or value.
///
/// DataChat skills operate over a deliberately small set of types — the
/// platform abstracts away the richer physical types of underlying
/// databases, which keeps skill semantics simple for end users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
}

impl DataType {
    /// Whether the type is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Whether values of this type have a natural total order usable for
    /// sorting and range predicates.
    pub fn is_ordered(self) -> bool {
        // All engine types are ordered; strings lexicographically.
        true
    }

    /// The common supertype two types coerce to for arithmetic/comparison,
    /// if one exists.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }

    /// Human-readable name used in GEL explanations and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "Bool",
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
            DataType::Date => "Date",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Date.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn unify_same() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
        ] {
            assert_eq!(t.unify(t), Some(t));
        }
    }

    #[test]
    fn unify_int_float() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Float.unify(DataType::Int), Some(DataType::Float));
    }

    #[test]
    fn unify_incompatible() {
        assert_eq!(DataType::Str.unify(DataType::Int), None);
        assert_eq!(DataType::Date.unify(DataType::Bool), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Date.to_string(), "Date");
        assert_eq!(DataType::Str.to_string(), "Str");
    }
}
