//! Duplicate removal.

use std::collections::HashSet;

use crate::error::Result;
use crate::table::Table;
use crate::value::Value;

/// Keep the first occurrence of each distinct combination of `columns`
/// (all columns when the list is empty). Row order of survivors is
/// preserved.
pub fn distinct(table: &Table, columns: &[&str]) -> Result<Table> {
    let cols: Vec<_> = if columns.is_empty() {
        table.columns().iter().collect()
    } else {
        columns
            .iter()
            .map(|c| table.column(c))
            .collect::<Result<_>>()?
    };
    // Fast path: every key column dictionary-encoded → rows compare by
    // `u32` codes (0 reserved for null), never touching string payloads.
    if !cols.is_empty() && cols.iter().all(|c| c.as_dict().is_some()) {
        let n = table.num_rows();
        let dicts: Vec<_> = cols.iter().map(|c| c.as_dict().unwrap()).collect();
        let mut keep = Vec::with_capacity(n);
        if let [(codes, dict, valid)] = dicts.as_slice() {
            // Single column: a flat bitset over the dictionary suffices.
            let mut seen = vec![false; dict.len() + 1];
            for row in 0..n {
                let slot = if valid.get(row) {
                    codes[row] as usize + 1
                } else {
                    0
                };
                keep.push(!std::mem::replace(&mut seen[slot], true));
            }
        } else {
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            for row in 0..n {
                let key: Vec<u32> = dicts
                    .iter()
                    .map(|(codes, _, valid)| if valid.get(row) { codes[row] + 1 } else { 0 })
                    .collect();
                keep.push(seen.insert(key));
            }
        }
        return table.filter_mask(&keep);
    }
    let mut seen: HashSet<String> = HashSet::new();
    let mut keep = Vec::with_capacity(table.num_rows());
    let mut key = String::new();
    for row in 0..table.num_rows() {
        key.clear();
        for c in &cols {
            let v = c.get(row);
            key.push(match v {
                Value::Null => 'n',
                Value::Bool(_) => 'b',
                Value::Int(_) => 'i',
                Value::Float(_) => 'f',
                Value::Str(_) => 's',
                Value::Date(_) => 'd',
            });
            match &v {
                Value::Float(f) => {
                    let f = if *f == 0.0 { 0.0 } else { *f };
                    key.push_str(&format!("{:x}", f.to_bits()));
                }
                other => key.push_str(&other.render().replace('\u{1f}', "\u{1f}\u{1f}")),
            }
            key.push('\u{1f}');
        }
        keep.push(seen.insert(key.clone()));
    }
    table.filter_mask(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn t() -> Table {
        Table::new(vec![
            ("a", Column::from_ints(vec![1, 1, 2, 1])),
            (
                "b",
                Column::from_opt_strs(vec![
                    Some("x".into()),
                    Some("x".into()),
                    None,
                    Some("y".into()),
                ]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn distinct_all_columns() {
        let out = distinct(&t(), &[]).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "a").unwrap(), Value::Int(1));
    }

    #[test]
    fn distinct_subset() {
        let out = distinct(&t(), &["a"]).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn nulls_group_together() {
        let t = Table::new(vec![(
            "x",
            Column::from_opt_ints(vec![None, None, Some(1)]),
        )])
        .unwrap();
        let out = distinct(&t, &[]).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(distinct(&t(), &["zz"]).is_err());
    }

    #[test]
    fn int_and_float_rows_stay_distinct() {
        // 1 (Int) and 1.0 (Float) are different key encodings.
        let a = Table::new(vec![("x", Column::from_ints(vec![1]))]).unwrap();
        let b = Table::new(vec![("x", Column::from_floats(vec![1.0]))]).unwrap();
        // Separate tables; within one table a column has a single type, so
        // this is about the key tagging, covered via the concat path.
        assert_eq!(distinct(&a, &[]).unwrap().num_rows(), 1);
        assert_eq!(distinct(&b, &[]).unwrap().num_rows(), 1);
    }
}
