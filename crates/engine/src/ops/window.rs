//! Simple window functions (row numbers, lag, rolling means).

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::table::Table;

/// Add a 1-based row-number column named `name`.
pub fn add_row_numbers(table: &Table, name: &str) -> Result<Table> {
    let nums: Vec<i64> = (1..=table.num_rows() as i64).collect();
    table.with_column(name, Column::from_ints(nums))
}

/// Column shifted down by `offset` rows (first `offset` rows become null).
pub fn lag(table: &Table, column: &str, offset: usize) -> Result<Column> {
    let src = table.column(column)?;
    let n = src.len();
    let mut out = Column::empty(src.dtype());
    for i in 0..n {
        let v = if i < offset {
            crate::value::Value::Null
        } else {
            src.get(i - offset)
        };
        out.push_value(&v)?;
    }
    Ok(out)
}

/// Trailing rolling mean over a window of `window` rows (inclusive of the
/// current row). Rows with fewer than `window` prior values use what is
/// available; null inputs are skipped. An all-null window yields null.
pub fn rolling_mean(table: &Table, column: &str, window: usize) -> Result<Column> {
    if window == 0 {
        return Err(EngineError::invalid_argument("window must be positive"));
    }
    let src = table.column(column)?;
    if !src.dtype().is_numeric() {
        return Err(EngineError::invalid_argument(format!(
            "rolling_mean requires a numeric column, got {}",
            src.dtype()
        )));
    }
    let n = src.len();
    let mut data = Vec::with_capacity(n);
    let mut valid = Bitmap::new_null(n);
    for i in 0..n {
        let start = i.saturating_sub(window - 1);
        let mut sum = 0.0;
        let mut cnt = 0u32;
        for j in start..=i {
            if let Some(x) = src.numeric_at(j) {
                sum += x;
                cnt += 1;
            }
        }
        if cnt > 0 {
            data.push(sum / cnt as f64);
            valid.set(i, true);
        } else {
            data.push(0.0);
        }
    }
    Ok(Column::Float(data, valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t() -> Table {
        Table::new(vec![(
            "x",
            Column::from_opt_floats(vec![Some(1.0), Some(2.0), None, Some(4.0)]),
        )])
        .unwrap()
    }

    #[test]
    fn row_numbers_one_based() {
        let out = add_row_numbers(&t(), "rn").unwrap();
        assert_eq!(out.value(0, "rn").unwrap(), Value::Int(1));
        assert_eq!(out.value(3, "rn").unwrap(), Value::Int(4));
    }

    #[test]
    fn lag_shifts() {
        let c = lag(&t(), "x", 1).unwrap();
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Float(1.0));
        assert_eq!(c.get(3), Value::Null); // row 2 was null
    }

    #[test]
    fn rolling_mean_skips_nulls() {
        let c = rolling_mean(&t(), "x", 2).unwrap();
        assert_eq!(c.get(0), Value::Float(1.0));
        assert_eq!(c.get(1), Value::Float(1.5));
        assert_eq!(c.get(2), Value::Float(2.0)); // window {2.0, null}
        assert_eq!(c.get(3), Value::Float(4.0)); // window {null, 4.0}
    }

    #[test]
    fn rolling_mean_validation() {
        assert!(rolling_mean(&t(), "x", 0).is_err());
        let s = Table::new(vec![("s", Column::from_strs(vec!["a"]))]).unwrap();
        assert!(rolling_mean(&s, "s", 2).is_err());
    }
}
