//! Relational operators over [`crate::table::Table`].
//!
//! Each operator lives in its own module and is a pure function from
//! input table(s) to an output table. The skills layer composes these;
//! the SQL layer lowers query plans onto them.

pub mod aggregate;
pub mod concat;
pub mod distinct;
pub mod filter;
pub mod join;
pub mod pivot;
pub mod sample;
pub mod sort;
pub mod spill;
pub mod window;

pub use aggregate::{group_by, group_by_serial, AggFunc, AggSpec};
pub use concat::concat;
pub use distinct::distinct;
pub use filter::{filter, filter_serial, limit, project};
pub use join::{join, join_serial, JoinType};
pub use pivot::pivot;
pub use sample::{sample_fraction, sample_n};
pub use sort::{sort_by, sort_by_serial, top_n, SortKey};
pub use spill::{group_by_with_mem, join_with_mem, sort_by_with_mem};
pub use window::{add_row_numbers, lag, rolling_mean};
