//! Filter, project and limit operators.

use crate::column::Column;
use crate::error::Result;
use crate::eval::{eval, eval_predicate, eval_predicate_serial};
use crate::expr::Expr;
use crate::table::Table;

/// Keep rows satisfying the predicate (nulls drop, like SQL `WHERE`).
///
/// On large tables the selection mask is computed morsel-parallel over
/// only the columns the predicate references (see
/// [`eval_predicate`]); the surviving rows are then materialized in one
/// pass, so the output matches the serial path exactly.
pub fn filter(table: &Table, predicate: &Expr) -> Result<Table> {
    let mask = eval_predicate(table, predicate)?;
    table.filter_mask(&mask)
}

/// Single-threaded filter (also the reference for the morsel path).
pub fn filter_serial(table: &Table, predicate: &Expr) -> Result<Table> {
    let mask = eval_predicate_serial(table, predicate)?;
    table.filter_mask(&mask)
}

/// Keep the first `n` rows.
pub fn limit(table: &Table, n: usize) -> Table {
    table.head(n)
}

/// Evaluate `(name, expr)` pairs into a new table (SQL `SELECT` list).
pub fn project(table: &Table, exprs: &[(String, Expr)]) -> Result<Table> {
    let mut out = Table::empty();
    for (name, e) in exprs {
        let col: Column = eval(table, e)?;
        out.add_column(name, col)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t() -> Table {
        Table::new(vec![
            (
                "x",
                Column::from_opt_ints(vec![Some(1), Some(5), None, Some(9)]),
            ),
            ("y", Column::from_strs(vec!["a", "b", "c", "d"])),
        ])
        .unwrap()
    }

    #[test]
    fn filter_drops_nulls_and_false() {
        let out = filter(&t(), &Expr::col("x").gt(Expr::lit(1i64))).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "y").unwrap(), Value::Str("b".into()));
    }

    #[test]
    fn limit_caps() {
        assert_eq!(limit(&t(), 2).num_rows(), 2);
        assert_eq!(limit(&t(), 100).num_rows(), 4);
    }

    #[test]
    fn project_computes() {
        let out = project(
            &t(),
            &[
                ("x2".to_string(), Expr::col("x").mul(Expr::lit(2i64))),
                ("y".to_string(), Expr::col("y")),
            ],
        )
        .unwrap();
        assert_eq!(out.schema().names(), vec!["x2", "y"]);
        assert_eq!(out.value(1, "x2").unwrap(), Value::Int(10));
        assert_eq!(out.value(2, "x2").unwrap(), Value::Null);
    }

    #[test]
    fn project_unknown_column_errors() {
        assert!(project(&t(), &[("z".to_string(), Expr::col("nope"))]).is_err());
    }
}
