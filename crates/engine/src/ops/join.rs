//! Hash joins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::hash::FxHashMap;

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::parallel;
use crate::table::Table;
use crate::value::Value;

/// Supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    Inner,
    Left,
    Right,
    /// Full outer join.
    Full,
}

impl JoinType {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            JoinType::Inner => "INNER JOIN",
            JoinType::Left => "LEFT JOIN",
            JoinType::Right => "RIGHT JOIN",
            JoinType::Full => "FULL OUTER JOIN",
        }
    }
}

/// Canonical hashable form of a join key row; `None` when any component is
/// null (null keys never match, per SQL).
fn key_of(cols: &[&Column], row: usize) -> Option<String> {
    let mut out = String::new();
    for c in cols {
        let v = c.get(row);
        if v.is_null() {
            return None;
        }
        // Render with a type tag and separator so e.g. ("a","b") and
        // ("a,b",) cannot collide.
        out.push_str(match v {
            Value::Bool(_) => "b:",
            Value::Int(_) => "i:",
            Value::Float(_) => "f:",
            Value::Str(_) => "s:",
            Value::Date(_) => "d:",
            Value::Null => unreachable!(),
        });
        let rendered = match &v {
            Value::Float(f) => format!("{:x}", (if *f == 0.0 { 0.0 } else { *f }).to_bits()),
            other => other.render(),
        };
        out.push_str(&rendered.replace('\\', "\\\\").replace('\u{1f}', "\\u"));
        out.push('\u{1f}');
    }
    Some(out)
}

/// Resolve and type-check the key columns of both sides.
fn key_columns<'a>(
    left: &'a Table,
    right: &'a Table,
    left_on: &[&str],
    right_on: &[&str],
) -> Result<(Vec<&'a Column>, Vec<&'a Column>)> {
    if left_on.len() != right_on.len() || left_on.is_empty() {
        return Err(EngineError::invalid_argument(
            "join requires equal, non-empty key lists",
        ));
    }
    let lcols: Vec<&Column> = left_on
        .iter()
        .map(|k| left.column(k))
        .collect::<Result<_>>()?;
    let rcols: Vec<&Column> = right_on
        .iter()
        .map(|k| right.column(k))
        .collect::<Result<_>>()?;
    for (l, r) in lcols.iter().zip(&rcols) {
        if l.dtype().unify(r.dtype()).is_none() {
            return Err(EngineError::schema_mismatch(format!(
                "join key types {} and {} are incompatible",
                l.dtype(),
                r.dtype()
            )));
        }
    }
    Ok((lcols, rcols))
}

/// Hash join of two tables on equally-named key pairs.
///
/// `left_on[i]` joins against `right_on[i]`. Non-key right columns that
/// collide with a left column name are suffixed `_right`. Right key
/// columns are dropped (they duplicate the left keys on matches); for
/// right/full joins the left key columns are backfilled from the right
/// side on unmatched right rows.
///
/// Large inputs take a morsel path: build and probe run per row range
/// with typed, borrowed keys (no per-row string rendering) and the output
/// is materialized with one gather per column. Per-morsel results are
/// stitched in morsel order, so row order matches the serial join.
pub fn join(
    left: &Table,
    right: &Table,
    left_on: &[&str],
    right_on: &[&str],
    how: JoinType,
) -> Result<Table> {
    if parallel::enabled(left.num_rows().max(right.num_rows())) {
        join_morsel(left, right, left_on, right_on, how)
    } else {
        join_serial(left, right, left_on, right_on, how)
    }
}

/// Single-threaded join (also the reference for the morsel path).
pub fn join_serial(
    left: &Table,
    right: &Table,
    left_on: &[&str],
    right_on: &[&str],
    how: JoinType,
) -> Result<Table> {
    let (lcols, rcols) = key_columns(left, right, left_on, right_on)?;

    // Build phase on the right side.
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for row in 0..right.num_rows() {
        if let Some(k) = key_of(&rcols, row) {
            index.entry(k).or_default().push(row);
        }
    }

    // Probe phase.
    let mut lidx: Vec<Option<usize>> = Vec::new();
    let mut ridx: Vec<Option<usize>> = Vec::new();
    let mut right_matched = vec![false; right.num_rows()];
    for row in 0..left.num_rows() {
        let matches = key_of(&lcols, row).and_then(|k| index.get(&k));
        match matches {
            Some(rows) if !rows.is_empty() => {
                for &r in rows {
                    lidx.push(Some(row));
                    ridx.push(Some(r));
                    right_matched[r] = true;
                }
            }
            _ => {
                if matches!(how, JoinType::Left | JoinType::Full) {
                    lidx.push(Some(row));
                    ridx.push(None);
                }
            }
        }
    }
    if matches!(how, JoinType::Right | JoinType::Full) {
        for (r, matched) in right_matched.iter().enumerate() {
            if !matched {
                lidx.push(None);
                ridx.push(Some(r));
            }
        }
    }

    // Assemble output: left columns, then right non-key columns.
    let mut out = Table::empty();
    let key_positions_left: Vec<usize> = left_on
        .iter()
        .map(|k| left.schema().index_of(k).unwrap())
        .collect();
    for (ci, field) in left.schema().fields().iter().enumerate() {
        let src = left.column_at(ci);
        let mut col = Column::empty(src.dtype());
        // Left key columns backfill from the right on right-only rows.
        let backfill = key_positions_left
            .iter()
            .position(|&p| p == ci)
            .map(|key_slot| rcols[key_slot]);
        for (l, r) in lidx.iter().zip(&ridx) {
            let v = match (l, r, backfill) {
                (Some(l), _, _) => src.get(*l),
                (None, Some(r), Some(rc)) => rc.get(*r),
                _ => Value::Null,
            };
            let v = crate::column::cast_value(&v, src.dtype());
            col.push_value(&v)?;
        }
        out.add_column(&field.name, col)?;
    }
    for (ci, field) in right.schema().fields().iter().enumerate() {
        if right_on.iter().any(|k| field.name.eq_ignore_ascii_case(k)) {
            continue;
        }
        let src = right.column_at(ci);
        let mut col = Column::empty(src.dtype());
        for r in &ridx {
            let v = r.map_or(Value::Null, |r| src.get(r));
            col.push_value(&v)?;
        }
        let name = if out.schema().index_of(&field.name).is_some() {
            format!("{}_right", field.name)
        } else {
            field.name.clone()
        };
        out.add_column(&name, col)?;
    }
    Ok(out)
}

/// One component of a typed join key, borrowing string data from its
/// column. Variants mirror [`key_of`]'s type tags: values of different
/// types never compare equal, and floats match on normalized bits
/// (-0.0 folds into 0.0, NaN payloads kept as-is).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RefPart<'a> {
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(&'a str),
    Date(i32),
}

/// A full typed join key. Single-column keys — the common case — carry
/// no heap allocation at all; the `One`/`Many` split can't alias because
/// construction is determined by the key-column count.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key<'a> {
    One(RefPart<'a>),
    Many(Vec<RefPart<'a>>),
}

// `inline(always)`: called once per row from the build and probe loops;
// without forced inlining the optimizer keeps the enum construction and
// hashing behind a call and the loops run ~3x slower.
#[inline(always)]
fn ref_part<'a>(col: &'a Column, row: usize) -> Option<RefPart<'a>> {
    match col {
        Column::Bool(v, b) => b.get(row).then(|| RefPart::Bool(v[row])),
        Column::Int(v, b) => b.get(row).then(|| RefPart::Int(v[row])),
        Column::Float(v, b) => b.get(row).then(|| {
            let f = if v[row] == 0.0 { 0.0 } else { v[row] };
            RefPart::Float(f.to_bits())
        }),
        Column::Str(v, b) => b.get(row).then(|| RefPart::Str(v[row].as_str())),
        Column::Dict(codes, dict, b) => b
            .get(row)
            .then(|| RefPart::Str(dict[codes[row] as usize].as_str())),
        Column::Date(v, b) => b.get(row).then(|| RefPart::Date(v[row])),
    }
}

/// When either side of a key-column pair is dictionary-encoded, translate
/// both sides into one shared integer code space so the hash join builds
/// and probes on `i64` codes instead of hashing string payloads per row.
/// The left dictionary is the base space; right-side strings it doesn't
/// contain get fresh codes past it (distinct per string, so composite
/// keys still distinguish unmatched values). Returns `None` when neither
/// side is a dictionary — the plain path has nothing to gain.
fn dict_code_keys(l: &Column, r: &Column) -> Option<(Column, Column)> {
    match (l, r) {
        (Column::Dict(lc, ld, lb), Column::Dict(rc, rd, rb)) => {
            let remap: Vec<i64> = if Arc::ptr_eq(ld, rd) {
                (0..rd.len() as i64).collect()
            } else {
                rd.iter()
                    .enumerate()
                    .map(|(i, s)| match ld.binary_search(s) {
                        Ok(c) => c as i64,
                        Err(_) => (ld.len() + i) as i64,
                    })
                    .collect()
            };
            let lvals: Vec<i64> = lc.iter().map(|&c| c as i64).collect();
            let rvals: Vec<i64> = rc
                .iter()
                .map(|&c| remap.get(c as usize).copied().unwrap_or(-1))
                .collect();
            Some((
                Column::Int(lvals, lb.clone()),
                Column::Int(rvals, rb.clone()),
            ))
        }
        (Column::Dict(lc, ld, lb), Column::Str(rv, rb)) => {
            let mut fresh: FxHashMap<&str, i64> = FxHashMap::default();
            let mut next = ld.len() as i64;
            let rvals: Vec<i64> = rv
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    if !rb.get(i) {
                        return 0;
                    }
                    match ld.binary_search_by(|d| d.as_str().cmp(s.as_str())) {
                        Ok(c) => c as i64,
                        Err(_) => *fresh.entry(s.as_str()).or_insert_with(|| {
                            let c = next;
                            next += 1;
                            c
                        }),
                    }
                })
                .collect();
            let lvals: Vec<i64> = lc.iter().map(|&c| c as i64).collect();
            Some((
                Column::Int(lvals, lb.clone()),
                Column::Int(rvals, rb.clone()),
            ))
        }
        (Column::Str(..), Column::Dict(..)) => {
            let (r2, l2) = dict_code_keys(r, l)?;
            Some((l2, r2))
        }
        _ => None,
    }
}

/// Typed equivalent of [`key_of`]: `None` when any component is null.
#[inline(always)]
fn ref_key<'a>(cols: &[&'a Column], row: usize) -> Option<Key<'a>> {
    if let [col] = cols {
        return ref_part(col, row).map(Key::One);
    }
    let mut parts = Vec::with_capacity(cols.len());
    for col in cols {
        parts.push(ref_part(col, row)?);
    }
    Some(Key::Many(parts))
}

fn join_morsel(
    left: &Table,
    right: &Table,
    left_on: &[&str],
    right_on: &[&str],
    how: JoinType,
) -> Result<Table> {
    let (lcols, rcols) = key_columns(left, right, left_on, right_on)?;

    // Dictionary-encoded key pairs are remapped into a shared integer
    // code space once, so build and probe hash `i64`s instead of strings.
    // Assembly below still reads the original `rcols` (the converted
    // columns exist only for key hashing).
    let converted: Vec<Option<(Column, Column)>> = lcols
        .iter()
        .zip(&rcols)
        .map(|(l, r)| dict_code_keys(l, r))
        .collect();
    let lkey: Vec<&Column> = lcols
        .iter()
        .zip(&converted)
        .map(|(&c, conv)| conv.as_ref().map_or(c, |(l, _)| l))
        .collect();
    let rkey: Vec<&Column> = rcols
        .iter()
        .zip(&converted)
        .map(|(&c, conv)| conv.as_ref().map_or(c, |(_, r)| r))
        .collect();

    // Build phase. The index stores, per key, an intrusive chain of right
    // rows: the map value is the (head, tail) of the chain and `next[row]`
    // links to the following right row with the same key. Compared to a
    // `Vec<usize>` per key this needs no per-key heap allocation (mostly-
    // unique keys would otherwise malloc once per right row) and probing a
    // unique key touches no memory beyond the map entry itself, because
    // `head == tail` ends the walk before `next` is ever read.
    //
    // Each worker indexes its own right-side row range; the partial chains
    // splice together in morsel order so every key's chain stays in
    // ascending right-row order, exactly like the serial build. With a
    // single worker the index is built directly in one pass instead.
    let mut next: Vec<u32> = vec![u32::MAX; right.num_rows()];
    let index: FxHashMap<Key, (u32, u32)> = if parallel::num_threads() == 1 {
        let mut map: FxHashMap<Key, (u32, u32)> =
            FxHashMap::with_capacity_and_hasher(right.num_rows(), Default::default());
        for row in 0..right.num_rows() {
            if let Some(k) = ref_key(&rkey, row) {
                match map.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let chain = e.get_mut();
                        next[chain.1 as usize] = row as u32;
                        chain.1 = row as u32;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((row as u32, row as u32));
                    }
                }
            }
        }
        map
    } else {
        let rranges = parallel::morsels(right.num_rows());
        let parts = parallel::run_morsels(&rranges, |r| {
            let base = r.start;
            let mut local_next: Vec<u32> = vec![u32::MAX; r.len()];
            let mut map: FxHashMap<Key, (u32, u32)> = FxHashMap::default();
            for row in r {
                if let Some(k) = ref_key(&rkey, row) {
                    match map.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let chain = e.get_mut();
                            local_next[chain.1 as usize - base] = row as u32;
                            chain.1 = row as u32;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert((row as u32, row as u32));
                        }
                    }
                }
            }
            (base, local_next, map)
        });
        let mut index: FxHashMap<Key, (u32, u32)> =
            FxHashMap::with_capacity_and_hasher(right.num_rows(), Default::default());
        for (base, local_next, map) in parts {
            next[base..base + local_next.len()].copy_from_slice(&local_next);
            for (k, chain) in map {
                match index.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let merged = e.get_mut();
                        next[merged.1 as usize] = chain.0;
                        merged.1 = chain.1;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(chain);
                    }
                }
            }
        }
        index
    };

    // Probe phase: per left morsel, emitting (left, right) row pairs in
    // serial order. Matched right rows are flagged through atomics so
    // right/full joins can backfill after all workers finish.
    let track_matched = matches!(how, JoinType::Right | JoinType::Full);
    let right_matched: Vec<AtomicBool> = if track_matched {
        (0..right.num_rows())
            .map(|_| AtomicBool::new(false))
            .collect()
    } else {
        Vec::new()
    };
    let lranges = parallel::morsels(left.num_rows());
    let pairs = parallel::run_morsels(&lranges, |r| {
        let mut lidx: Vec<Option<usize>> = Vec::with_capacity(r.len());
        let mut ridx: Vec<Option<usize>> = Vec::with_capacity(r.len());
        for row in r {
            let matches = ref_key(&lkey, row).and_then(|k| index.get(&k));
            match matches {
                Some(&(head, tail)) => {
                    let mut rr = head;
                    loop {
                        lidx.push(Some(row));
                        ridx.push(Some(rr as usize));
                        if track_matched {
                            right_matched[rr as usize].store(true, Ordering::Relaxed);
                        }
                        if rr == tail {
                            break;
                        }
                        rr = next[rr as usize];
                    }
                }
                _ => {
                    if matches!(how, JoinType::Left | JoinType::Full) {
                        lidx.push(Some(row));
                        ridx.push(None);
                    }
                }
            }
        }
        (lidx, ridx)
    });
    let mut lidx: Vec<Option<usize>> = Vec::new();
    let mut ridx: Vec<Option<usize>> = Vec::new();
    lidx.reserve(pairs.iter().map(|(l, _)| l.len()).sum());
    ridx.reserve(lidx.capacity());
    for (l, r) in pairs {
        lidx.extend(l);
        ridx.extend(r);
    }
    if track_matched {
        for (r, matched) in right_matched.iter().enumerate() {
            if !matched.load(Ordering::Relaxed) {
                lidx.push(None);
                ridx.push(Some(r));
            }
        }
    }

    // Assembly: one gather per column instead of one push per cell. Only
    // left key columns of right/full joins need the per-row loop, to
    // backfill key values from the right side on unmatched right rows.
    let mut out = Table::empty();
    let key_positions_left: Vec<usize> = left_on
        .iter()
        .map(|k| left.schema().index_of(k).unwrap())
        .collect();
    for (ci, field) in left.schema().fields().iter().enumerate() {
        let src = left.column_at(ci);
        let backfill = key_positions_left
            .iter()
            .position(|&p| p == ci)
            .map(|key_slot| rcols[key_slot]);
        let col = match backfill {
            Some(rc) if track_matched => {
                let mut col = Column::empty(src.dtype());
                for (l, r) in lidx.iter().zip(&ridx) {
                    let v = match (l, r) {
                        (Some(l), _) => src.get(*l),
                        (None, Some(r)) => rc.get(*r),
                        _ => Value::Null,
                    };
                    let v = crate::column::cast_value(&v, src.dtype());
                    col.push_value(&v)?;
                }
                col
            }
            _ => src.take_opt(&lidx),
        };
        out.add_column(&field.name, col)?;
    }
    for (ci, field) in right.schema().fields().iter().enumerate() {
        if right_on.iter().any(|k| field.name.eq_ignore_ascii_case(k)) {
            continue;
        }
        let col = right.column_at(ci).take_opt(&ridx);
        let name = if out.schema().index_of(&field.name).is_some() {
            format!("{}_right", field.name)
        } else {
            field.name.clone()
        };
        out.add_column(&name, col)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collisions() -> Table {
        Table::new(vec![
            ("case_id", Column::from_ints(vec![1, 2, 3])),
            (
                "severity",
                Column::from_strs(vec!["minor", "major", "fatal"]),
            ),
        ])
        .unwrap()
    }

    fn parties() -> Table {
        Table::new(vec![
            (
                "case_id",
                Column::from_opt_ints(vec![Some(1), Some(1), Some(2), Some(9), None]),
            ),
            (
                "party_type",
                Column::from_strs(vec!["driver", "pedestrian", "driver", "driver", "driver"]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_fanout() {
        let out = join(
            &collisions(),
            &parties(),
            &["case_id"],
            &["case_id"],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3); // case 1 matches twice, case 2 once
        assert_eq!(
            out.schema().names(),
            vec!["case_id", "severity", "party_type"]
        );
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let out = join(
            &collisions(),
            &parties(),
            &["case_id"],
            &["case_id"],
            JoinType::Left,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4); // case 3 kept with null party_type
        let missing = (0..out.num_rows())
            .find(|&r| out.value(r, "case_id").unwrap() == Value::Int(3))
            .unwrap();
        assert_eq!(out.value(missing, "party_type").unwrap(), Value::Null);
    }

    #[test]
    fn right_join_backfills_keys() {
        let out = join(
            &collisions(),
            &parties(),
            &["case_id"],
            &["case_id"],
            JoinType::Right,
        )
        .unwrap();
        // Matched: 3 rows; unmatched right rows: case 9 and null key.
        assert_eq!(out.num_rows(), 5);
        let nine = (0..out.num_rows())
            .find(|&r| out.value(r, "case_id").unwrap() == Value::Int(9))
            .unwrap();
        assert_eq!(out.value(nine, "severity").unwrap(), Value::Null);
    }

    #[test]
    fn full_join_union() {
        let out = join(
            &collisions(),
            &parties(),
            &["case_id"],
            &["case_id"],
            JoinType::Full,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 6); // 3 matched + case 3 + case 9 + null-key row
    }

    #[test]
    fn null_keys_never_match() {
        let out = join(
            &collisions(),
            &parties(),
            &["case_id"],
            &["case_id"],
            JoinType::Inner,
        )
        .unwrap();
        for r in 0..out.num_rows() {
            assert_ne!(out.value(r, "case_id").unwrap(), Value::Null);
        }
    }

    #[test]
    fn name_collision_suffixed() {
        let a = Table::new(vec![
            ("k", Column::from_ints(vec![1])),
            ("v", Column::from_ints(vec![10])),
        ])
        .unwrap();
        let b = Table::new(vec![
            ("k", Column::from_ints(vec![1])),
            ("v", Column::from_ints(vec![20])),
        ])
        .unwrap();
        let out = join(&a, &b, &["k"], &["k"], JoinType::Inner).unwrap();
        assert_eq!(out.schema().names(), vec!["k", "v", "v_right"]);
        assert_eq!(out.value(0, "v_right").unwrap(), Value::Int(20));
    }

    #[test]
    fn incompatible_key_types_rejected() {
        let a = Table::new(vec![("k", Column::from_ints(vec![1]))]).unwrap();
        let b = Table::new(vec![("k", Column::from_strs(vec!["1"]))]).unwrap();
        assert!(join(&a, &b, &["k"], &["k"], JoinType::Inner).is_err());
    }

    #[test]
    fn multi_key_join() {
        let a = Table::new(vec![
            ("x", Column::from_ints(vec![1, 1, 2])),
            ("y", Column::from_strs(vec!["p", "q", "p"])),
            ("val", Column::from_ints(vec![10, 20, 30])),
        ])
        .unwrap();
        let b = Table::new(vec![
            ("x", Column::from_ints(vec![1, 2])),
            ("y", Column::from_strs(vec!["q", "p"])),
            ("w", Column::from_ints(vec![100, 200])),
        ])
        .unwrap();
        let out = join(&a, &b, &["x", "y"], &["x", "y"], JoinType::Inner).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "val").unwrap(), Value::Int(20));
        assert_eq!(out.value(0, "w").unwrap(), Value::Int(100));
    }

    #[test]
    fn composite_keys_cannot_collide_across_boundaries() {
        // ("a","b") vs ("a,b") style collisions must not join.
        let a = Table::new(vec![
            ("p", Column::from_strs(vec!["a\u{1f}b"])),
            ("q", Column::from_strs(vec!["c"])),
        ])
        .unwrap();
        let b = Table::new(vec![
            ("p", Column::from_strs(vec!["a"])),
            ("q", Column::from_strs(vec!["b\u{1f}c"])),
        ])
        .unwrap();
        let out = join(&a, &b, &["p", "q"], &["p", "q"], JoinType::Inner).unwrap();
        assert_eq!(out.num_rows(), 0);
    }
}
