//! Memory-governed variants of the heavy operators (hash join, group-by,
//! sort) with partitioned spill paths.
//!
//! Each `*_with_mem` entry point first tries to reserve its estimated
//! transient state against the [`MemContext`]'s governor. When the
//! reservation is admitted, the existing in-memory kernel runs unchanged
//! (the fast path pays only one atomic compare-exchange). When it is
//! refused, the operator degrades to disk:
//!
//! * **join** — Grace-style: both sides are hash-partitioned on the join
//!   keys into spill files, each partition pair is joined independently
//!   (recursing with a fresh hash salt if a partition is still over
//!   budget), and the concatenated result is re-sorted by hidden row-id
//!   columns so the output row order is byte-identical to the in-memory
//!   join.
//! * **group-by** — rows are hash-partitioned on the full group key, each
//!   partition is aggregated independently with a hidden `min(row-id)`
//!   aggregate, and the partials are stitched back in first-encounter
//!   order by sorting on that hidden column. A group's rows all land in
//!   one partition in their original ascending order, so per-group
//!   accumulation sequences — and therefore results, including
//!   order-sensitive aggregates — match the unpartitioned run.
//! * **sort** — external merge sort: input slices are sorted in memory
//!   and written as runs, then merged k ways (multiple passes if the run
//!   count exceeds the fan-out) with ties taken from the lowest-numbered
//!   run, which preserves stability because runs are input-order slices.
//!
//! All spill files flow through [`crate::blockio`], so dictionary columns
//! stay encoded on disk. Spill files live in per-operator
//! [`ScopedSpillDir`]s and are removed when the operator finishes — or
//! unwinds.

use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::blockio::{BlockFile, BlockWriter};
use crate::column::Column;
use crate::error::Result;
use crate::governor::MemContext;
use crate::hash::FxHasher;
use crate::table::Table;
use crate::value::Value;

use super::aggregate::{group_by, AggFunc, AggSpec};
use super::concat::concat;
use super::join::{join, JoinType};
use super::sort::{sort_by, SortKey};

// ---------------------------------------------------------------------------
// State estimates
//
// Deliberately conservative (upper-bound-ish) byte estimates of the
// transient state each in-memory kernel allocates. Refusal only degrades
// to disk, so overestimating costs speed, never correctness.
// ---------------------------------------------------------------------------

/// Hash-join transient state: the build-side index (map + chain links)
/// plus the probe-side pair vectors.
pub fn join_state_bytes(left: &Table, right: &Table) -> u64 {
    right.byte_size() as u64
        + 32 * right.num_rows() as u64
        + 16 * left.num_rows() as u64
}

/// Group-by transient state: key materialization plus the group index,
/// bounded by every row forming its own group.
pub fn group_state_bytes(table: &Table) -> u64 {
    table.byte_size() as u64 + 32 * table.num_rows() as u64
}

/// Sort transient state: decorated keys plus the index permutation and
/// the gathered output copy.
pub fn sort_state_bytes(table: &Table) -> u64 {
    table.byte_size() as u64 + 16 * table.num_rows() as u64
}

// ---------------------------------------------------------------------------
// Row partitioning
// ---------------------------------------------------------------------------

/// Hash the key columns of one row for partition placement.
///
/// Placement must be consistent with key equality in *both* the join
/// (`RefPart`) and group-by (`KeyPart`) senses: equal keys must land in
/// the same partition. Floats fold `-0.0` into `0.0` and every NaN into
/// one canonical NaN (joins never match NaN-to-NaN anyway; group-by
/// groups all NaNs together). Dict and plain strings hash by content.
/// `salt` varies per recursion depth so re-partitioning a skewed
/// partition actually redistributes it.
fn key_hash(cols: &[&Column], row: usize, salt: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x5bd1_e995));
    for col in cols {
        match col {
            Column::Bool(v, b) => {
                if b.get(row) {
                    h.write_u8(1);
                    h.write_u8(v[row] as u8);
                } else {
                    h.write_u8(0);
                }
            }
            Column::Int(v, b) => {
                if b.get(row) {
                    h.write_u8(2);
                    h.write_u64(v[row] as u64);
                } else {
                    h.write_u8(0);
                }
            }
            Column::Float(v, b) => {
                if b.get(row) {
                    let f = if v[row] == 0.0 { 0.0 } else { v[row] };
                    let f = if f.is_nan() { f64::NAN } else { f };
                    h.write_u8(3);
                    h.write_u64(f.to_bits());
                } else {
                    h.write_u8(0);
                }
            }
            Column::Str(v, b) => {
                if b.get(row) {
                    h.write_u8(4);
                    h.write_u64(v[row].len() as u64);
                    h.write(v[row].as_bytes());
                } else {
                    h.write_u8(0);
                }
            }
            Column::Dict(codes, dict, b) => {
                if b.get(row) {
                    let s = dict[codes[row] as usize].as_str();
                    h.write_u8(4);
                    h.write_u64(s.len() as u64);
                    h.write(s.as_bytes());
                } else {
                    h.write_u8(0);
                }
            }
            Column::Date(v, b) => {
                if b.get(row) {
                    h.write_u8(5);
                    h.write_u64(v[row] as u64);
                } else {
                    h.write_u8(0);
                }
            }
        }
    }
    h.finish()
}

/// One spilled partition file.
struct SpillPart {
    path: PathBuf,
    rows: usize,
}

/// Hash-partition `table` on `key_idx` columns into `ctx.fanout` spill
/// files under `dir`, processing input in chunks of `spill_block_rows`
/// rows so the transient buffers stay small. Every partition file starts
/// with a schema-defining empty block, so empty partitions read back as
/// zero-row tables with the right schema.
fn partition_table(
    table: &Table,
    key_idx: &[usize],
    ctx: &MemContext,
    dir: &Path,
    salt: u64,
    tag: &str,
) -> Result<Vec<SpillPart>> {
    let fanout = ctx.fanout.max(2);
    let mut writers = Vec::with_capacity(fanout);
    let empty = table.slice(0, 0);
    for p in 0..fanout {
        let mut w = BlockWriter::create(dir.join(format!("{tag}-p{p}.dcb")))?.without_zones();
        ctx.check_spill_write()?;
        w.append(&empty)?;
        writers.push(w);
    }
    let n = table.num_rows();
    let mut rows_per_part = vec![0usize; fanout];
    let mut start = 0;
    while start < n {
        let chunk = table.slice(start, ctx.spill_block_rows.max(1));
        let kcols: Vec<&Column> = key_idx.iter().map(|&i| chunk.column_at(i)).collect();
        let mut idx: Vec<Vec<usize>> = vec![Vec::new(); fanout];
        for row in 0..chunk.num_rows() {
            let p = (key_hash(&kcols, row, salt) % fanout as u64) as usize;
            idx[p].push(row);
        }
        for (p, rows) in idx.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let part = chunk.take(rows);
            ctx.check_spill_write()?;
            writers[p].append(&part)?;
            rows_per_part[p] += rows.len();
        }
        start += chunk.num_rows().max(1);
    }
    let mut parts = Vec::with_capacity(fanout);
    for (p, w) in writers.into_iter().enumerate() {
        let path = w.path().to_path_buf();
        let summary = w.finish()?;
        ctx.metrics.record_file(summary.total_bytes);
        parts.push(SpillPart {
            path,
            rows: rows_per_part[p],
        });
    }
    Ok(parts)
}

/// Read a whole spill file back, then delete it (partitions are consumed
/// exactly once; eager removal bounds peak disk usage).
fn consume_spill(ctx: &MemContext, path: &Path) -> Result<Table> {
    ctx.check_spill_read()?;
    let f = BlockFile::open(path)?;
    let (t, _) = f.read_all()?;
    drop(f);
    let _ = std::fs::remove_file(path);
    Ok(t)
}

/// A helper-column name absent from every given schema and the extra
/// reserved names.
fn fresh_name(tables: &[&Table], extra: &[&str], base: &str) -> String {
    let taken = |name: &str| {
        tables.iter().any(|t| t.schema().index_of(name).is_some())
            || extra.iter().any(|e| e.eq_ignore_ascii_case(name))
    };
    if !taken(base) {
        return base.to_string();
    }
    let mut n = 0u64;
    loop {
        let candidate = format!("{base}{n}");
        if !taken(&candidate) {
            return candidate;
        }
        n += 1;
    }
}

/// A dense 0..n row-id column.
fn rowid_column(n: usize) -> Column {
    Column::Int((0..n as i64).collect(), Bitmap::new_valid(n))
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

/// [`join`] with an optional memory governor. Under budget (or with no
/// context) this is exactly the in-memory join; over budget it degrades
/// to a Grace-style partitioned join with identical output.
pub fn join_with_mem(
    left: &Table,
    right: &Table,
    left_on: &[&str],
    right_on: &[&str],
    how: JoinType,
    mem: Option<&MemContext>,
) -> Result<Table> {
    let Some(ctx) = mem else {
        return join(left, right, left_on, right_on, how);
    };
    let est = join_state_bytes(left, right);
    if let Some(_admitted) = ctx.governor.try_reserve(est) {
        return join(left, right, left_on, right_on, how);
    }
    // Surface validation errors (unknown keys, incompatible types) before
    // any spill I/O happens.
    join(&left.head(0), &right.head(0), left_on, right_on, how)?;
    ctx.metrics.record_event();

    let lrow = fresh_name(&[left, right], &[], "__spill_lrow");
    let rrow = fresh_name(&[left, right], &[&lrow], "__spill_rrow");
    let left2 = left.with_column(&lrow, rowid_column(left.num_rows()))?;
    let right2 = right.with_column(&rrow, rowid_column(right.num_rows()))?;

    let out = grace_join(&left2, &right2, left_on, right_on, how, ctx, 0)?;
    let out = restore_join_order(&out, &lrow, &rrow);
    out.drop_column(&lrow)?.drop_column(&rrow)
}

fn grace_join(
    left: &Table,
    right: &Table,
    left_on: &[&str],
    right_on: &[&str],
    how: JoinType,
    ctx: &MemContext,
    depth: u32,
) -> Result<Table> {
    let dir = ctx.op_dir(&format!("join-d{depth}"))?;
    let lkey_idx: Vec<usize> = left_on
        .iter()
        .map(|k| left.schema().index_of(k).expect("validated join key"))
        .collect();
    let rkey_idx: Vec<usize> = right_on
        .iter()
        .map(|k| right.schema().index_of(k).expect("validated join key"))
        .collect();
    let lparts = partition_table(left, &lkey_idx, ctx, dir.path(), depth as u64, "l")?;
    let rparts = partition_table(right, &rkey_idx, ctx, dir.path(), depth as u64, "r")?;

    let mut results: Vec<Table> = Vec::new();
    for (lp, rp) in lparts.iter().zip(&rparts) {
        if lp.rows == 0 && rp.rows == 0 {
            let _ = std::fs::remove_file(&lp.path);
            let _ = std::fs::remove_file(&rp.path);
            continue;
        }
        let lt = consume_spill(ctx, &lp.path)?;
        let rt = consume_spill(ctx, &rp.path)?;
        let est = join_state_bytes(&lt, &rt);
        let sub = if let Some(_admitted) = ctx.governor.try_reserve(est) {
            join(&lt, &rt, left_on, right_on, how)?
        } else if depth + 1 < ctx.max_recursion
            && (lt.num_rows() < left.num_rows() || rt.num_rows() < right.num_rows())
        {
            grace_join(&lt, &rt, left_on, right_on, how, ctx, depth + 1)?
        } else {
            // Recursion cap, or a partition the hash cannot split further
            // (every key identical): over-admit rather than not terminate.
            let _forced = ctx.governor.reserve_force(est);
            join(&lt, &rt, left_on, right_on, how)?
        };
        results.push(sub);
    }
    if results.is_empty() {
        return join(&left.head(0), &right.head(0), left_on, right_on, how);
    }
    let refs: Vec<&Table> = results.iter().collect();
    concat(&refs, false)
}

/// Re-establish the in-memory join's global row order from the hidden
/// row-id columns: matched and unmatched-left rows in left-row order with
/// right matches ascending, then unmatched-right rows in right-row order.
fn restore_join_order(out: &Table, lrow: &str, rrow: &str) -> Table {
    let lc = out.column(lrow).expect("helper column present");
    let rc = out.column(rrow).expect("helper column present");
    let key_at = |col: &Column, i: usize, null_as: i64| match col.get(i) {
        Value::Int(v) => v,
        _ => null_as,
    };
    let mut keyed: Vec<(i64, i64, usize)> = (0..out.num_rows())
        // Unmatched-right rows (null lrow) sort after every real left row;
        // a null rrow can never tie with anything under the same lrow.
        .map(|i| (key_at(lc, i, i64::MAX), key_at(rc, i, -1), i))
        .collect();
    keyed.sort_unstable();
    let indices: Vec<usize> = keyed.into_iter().map(|(_, _, i)| i).collect();
    out.take(&indices)
}

// ---------------------------------------------------------------------------
// Group-by
// ---------------------------------------------------------------------------

/// [`group_by`] with an optional memory governor. Results — including
/// first-encounter group order and order-sensitive aggregates — are
/// identical to the in-memory kernel.
pub fn group_by_with_mem(
    table: &Table,
    keys: &[&str],
    aggs: &[AggSpec],
    mem: Option<&MemContext>,
) -> Result<Table> {
    let Some(ctx) = mem else {
        return group_by(table, keys, aggs);
    };
    // Global aggregates hold O(1) state per aggregate — nothing to spill.
    if keys.is_empty() {
        return group_by(table, keys, aggs);
    }
    let est = group_state_bytes(table);
    if let Some(_admitted) = ctx.governor.try_reserve(est) {
        return group_by(table, keys, aggs);
    }
    // Validation pass: surfaces unknown columns / non-numeric aggregate
    // arguments and captures the output schema for the final projection.
    let shape = group_by(&table.head(0), keys, aggs)?;
    ctx.metrics.record_event();

    let outputs: Vec<&str> = aggs.iter().map(|a| a.output.as_str()).collect();
    let rowid = fresh_name(&[table], &outputs, "__spill_rowid");
    let mut reserved = outputs.clone();
    reserved.push(&rowid);
    let ord = fresh_name(&[table], &reserved, "__spill_ord");
    let t2 = table.with_column(&rowid, rowid_column(table.num_rows()))?;
    let mut specs = aggs.to_vec();
    // Hidden aggregate: each group's minimum original row id is unique
    // (rows belong to exactly one group) and ascending min-row-id order
    // is exactly global first-encounter order.
    specs.push(AggSpec::new(AggFunc::Min, rowid.clone(), ord.clone()));
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| t2.schema().index_of(k).expect("validated group key"))
        .collect();

    let partials = grace_group(&t2, keys, &specs, &key_idx, ctx, 0)?;
    if partials.is_empty() {
        return group_by(table, keys, aggs);
    }
    let refs: Vec<&Table> = partials.iter().collect();
    let merged = concat(&refs, false)?;
    // The merge table holds one row per group; it can itself exceed the
    // budget, so route it through the governed sort.
    let ordered = sort_by_with_mem(&merged, &[SortKey::asc(&ord)], Some(ctx))?;
    let names: Vec<&str> = shape.schema().names();
    ordered.select(&names)
}

fn grace_group(
    table: &Table,
    keys: &[&str],
    specs: &[AggSpec],
    key_idx: &[usize],
    ctx: &MemContext,
    depth: u32,
) -> Result<Vec<Table>> {
    let dir = ctx.op_dir(&format!("groupby-d{depth}"))?;
    let parts = partition_table(table, key_idx, ctx, dir.path(), depth as u64, "g")?;
    let mut out = Vec::new();
    for part in parts {
        if part.rows == 0 {
            let _ = std::fs::remove_file(&part.path);
            continue;
        }
        let pt = consume_spill(ctx, &part.path)?;
        let est = group_state_bytes(&pt);
        if let Some(_admitted) = ctx.governor.try_reserve(est) {
            out.push(group_by(&pt, keys, specs)?);
        } else if depth + 1 < ctx.max_recursion && pt.num_rows() < table.num_rows() {
            out.extend(grace_group(&pt, keys, specs, key_idx, ctx, depth + 1)?);
        } else {
            let _forced = ctx.governor.reserve_force(est);
            out.push(group_by(&pt, keys, specs)?);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

/// [`sort_by`] with an optional memory governor: external merge sort when
/// the decorate-sort working set does not fit the budget. Output order is
/// identical (stable) either way.
pub fn sort_by_with_mem(
    table: &Table,
    keys: &[SortKey],
    mem: Option<&MemContext>,
) -> Result<Table> {
    let Some(ctx) = mem else {
        return sort_by(table, keys);
    };
    if keys.is_empty() {
        return Ok(table.clone());
    }
    let est = sort_state_bytes(table);
    if let Some(_admitted) = ctx.governor.try_reserve(est) {
        return sort_by(table, keys);
    }
    // Validate keys before any I/O.
    for k in keys {
        table.column(&k.column)?;
    }
    ctx.metrics.record_event();
    external_sort(table, keys, ctx)
}

fn external_sort(table: &Table, keys: &[SortKey], ctx: &MemContext) -> Result<Table> {
    let dir = ctx.op_dir("sort")?;
    let n = table.num_rows();
    let bytes_per_row = (table.byte_size() / n.max(1)).max(1);
    // A run must fit in memory while being sorted (input slice + index
    // decoration + gathered copy ≈ 4x), and the run count is capped so
    // the merge finishes in at most two passes over the fan-out.
    let budget_rows = (ctx.governor.available().max(1) / 4) as usize / bytes_per_row;
    let max_runs = ctx.fanout.max(2) * ctx.fanout.max(2);
    let run_rows = budget_rows
        .max(n.div_ceil(max_runs))
        .max(1024)
        .min(n.max(1));

    // Phase 1: sorted runs. Each run is a contiguous input slice, so run
    // index order == input order, which the tie-breaking below relies on.
    let mut runs: Vec<PathBuf> = Vec::new();
    let mut start = 0;
    let mut run_no = 0usize;
    while start < n {
        let chunk = table.slice(start, run_rows);
        let sorted = sort_by(&chunk, keys)?;
        let path = dir.path().join(format!("run-{run_no}.dcb"));
        write_run(ctx, &path, &sorted)?;
        runs.push(path);
        start += chunk.num_rows();
        run_no += 1;
    }
    if runs.is_empty() {
        return Ok(table.slice(0, 0));
    }

    let key_cis: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| {
            (
                table.schema().index_of(&k.column).expect("validated key"),
                k.ascending,
            )
        })
        .collect();

    // Phase 2: k-way merges. While more runs remain than the fan-out,
    // merge groups of `fanout` runs into longer runs (concatenating merge
    // groups in run order keeps ties resolvable by run index).
    let fanout = ctx.fanout.max(2);
    let mut gen = 0usize;
    while runs.len() > fanout {
        let mut next: Vec<PathBuf> = Vec::new();
        for (gi, group) in runs.chunks(fanout).enumerate() {
            if group.len() == 1 {
                next.push(group[0].clone());
                continue;
            }
            let path = dir.path().join(format!("merge-{gen}-{gi}.dcb"));
            merge_runs(ctx, group, &key_cis, table, MergeSink::File(&path))?;
            for p in group {
                let _ = std::fs::remove_file(p);
            }
            next.push(path);
        }
        runs = next;
        gen += 1;
    }
    match merge_runs(ctx, &runs, &key_cis, table, MergeSink::Memory)? {
        Some(out) => Ok(out),
        None => unreachable!("memory sink always yields a table"),
    }
}

fn write_run(ctx: &MemContext, path: &Path, run: &Table) -> Result<()> {
    let mut w = BlockWriter::create(path)?.without_zones();
    let n = run.num_rows();
    if n == 0 {
        ctx.check_spill_write()?;
        w.append(run)?;
    } else {
        let mut start = 0;
        while start < n {
            ctx.check_spill_write()?;
            w.append(&run.slice(start, ctx.spill_block_rows.max(1)))?;
            start += ctx.spill_block_rows.max(1);
        }
    }
    let summary = w.finish()?;
    ctx.metrics.record_file(summary.total_bytes);
    Ok(())
}

/// Streaming cursor over one sorted run.
struct RunCursor {
    file: BlockFile,
    bi: usize,
    row: usize,
    block: Table,
}

impl RunCursor {
    fn open(ctx: &MemContext, path: &Path) -> Result<Option<RunCursor>> {
        ctx.check_spill_read()?;
        let file = BlockFile::open(path)?;
        if file.num_rows() == 0 {
            return Ok(None);
        }
        let (block, _) = file.read_block(0)?;
        let mut cur = RunCursor {
            file,
            bi: 0,
            row: 0,
            block,
        };
        cur.skip_empty_blocks(ctx)?;
        Ok(Some(cur))
    }

    fn skip_empty_blocks(&mut self, ctx: &MemContext) -> Result<()> {
        while self.row >= self.block.num_rows() {
            if self.bi + 1 >= self.file.num_blocks() {
                return Ok(());
            }
            self.bi += 1;
            ctx.check_spill_read()?;
            let (block, _) = self.file.read_block(self.bi)?;
            self.block = block;
            self.row = 0;
        }
        Ok(())
    }

    fn exhausted(&self) -> bool {
        self.row >= self.block.num_rows()
    }

    fn advance(&mut self, ctx: &MemContext) -> Result<()> {
        self.row += 1;
        self.skip_empty_blocks(ctx)
    }

    fn key(&self, ci: usize) -> Value {
        self.block.column_at(ci).get(self.row)
    }
}

/// Compare the current rows of two cursors under the sort keys.
fn cmp_cursors(a: &RunCursor, b: &RunCursor, key_cis: &[(usize, bool)]) -> std::cmp::Ordering {
    for &(ci, asc) in key_cis {
        let ord = a.key(ci).cmp_total(&b.key(ci));
        let ord = if asc { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

enum MergeSink<'a> {
    /// Write the merged run to a spill file.
    File(&'a Path),
    /// Materialize the merged result as the final output table.
    Memory,
}

/// Typed per-column output accumulator; dict columns copy codes directly
/// and keep their shared dictionary rather than re-encoding strings.
enum ColAcc {
    Plain(Column),
    Dict {
        codes: Vec<u32>,
        dict: Arc<Vec<String>>,
        validity: Bitmap,
    },
}

impl ColAcc {
    fn for_column(proto: &Column) -> ColAcc {
        match proto {
            Column::Dict(_, dict, _) => ColAcc::Dict {
                codes: Vec::new(),
                dict: Arc::clone(dict),
                validity: Bitmap::new_valid(0),
            },
            other => ColAcc::Plain(Column::empty(other.dtype())),
        }
    }

    fn push(&mut self, src: &Column, row: usize) -> Result<()> {
        match self {
            ColAcc::Dict {
                codes,
                dict,
                validity,
            } => match src {
                // Runs are slices of one table, so every run block shares
                // the prototype's dictionary contents (blockio restores
                // one Arc per file; contents are identical).
                Column::Dict(src_codes, src_dict, b)
                    if Arc::ptr_eq(dict, src_dict) || **src_dict == **dict =>
                {
                    let valid = b.get(row);
                    codes.push(if valid { src_codes[row] } else { 0 });
                    validity.push(valid);
                    Ok(())
                }
                other => {
                    // Defensive fallback: re-encode through the value path.
                    let v = other.get(row);
                    let mut col = Column::Dict(
                        std::mem::take(codes),
                        Arc::clone(dict),
                        std::mem::replace(validity, Bitmap::new_valid(0)),
                    );
                    col.push_value(&v)?;
                    *self = ColAcc::Plain(col);
                    Ok(())
                }
            },
            ColAcc::Plain(col) => col.push_value(&src.get(row)),
        }
    }

    fn finish(self) -> Column {
        match self {
            ColAcc::Plain(col) => col,
            ColAcc::Dict {
                codes,
                dict,
                validity,
            } => Column::Dict(codes, dict, validity),
        }
    }
}

/// Merge sorted runs. Ties take from the lowest-numbered run, preserving
/// global stability. Returns the merged table for [`MergeSink::Memory`].
fn merge_runs(
    ctx: &MemContext,
    run_paths: &[PathBuf],
    key_cis: &[(usize, bool)],
    proto: &Table,
    sink: MergeSink<'_>,
) -> Result<Option<Table>> {
    let mut cursors: Vec<Option<RunCursor>> = Vec::with_capacity(run_paths.len());
    for p in run_paths {
        cursors.push(RunCursor::open(ctx, p)?);
    }
    let mut writer = match &sink {
        MergeSink::File(path) => Some(BlockWriter::create(*path)?.without_zones()),
        MergeSink::Memory => None,
    };
    let mut out: Option<Table> = None;
    let mut accs: Vec<ColAcc> = proto.columns().iter().map(ColAcc::for_column).collect();
    let mut buffered = 0usize;

    let flush = |accs: &mut Vec<ColAcc>,
                     writer: &mut Option<BlockWriter>,
                     out: &mut Option<Table>|
     -> Result<()> {
        let mut block = Table::empty();
        for (acc, field) in std::mem::take(accs).into_iter().zip(proto.schema().fields()) {
            block.add_column(&field.name, acc.finish())?;
        }
        *accs = proto.columns().iter().map(ColAcc::for_column).collect();
        if let Some(w) = writer {
            ctx.check_spill_write()?;
            w.append(&block)?;
        } else {
            match out {
                None => *out = Some(block),
                Some(t) => t.append(&block)?,
            }
        }
        Ok(())
    };

    loop {
        let mut best: Option<usize> = None;
        for i in 0..cursors.len() {
            let Some(c) = &cursors[i] else { continue };
            if c.exhausted() {
                continue;
            }
            best = match best {
                None => Some(i),
                // Strictly-less keeps the lowest run index on ties.
                Some(j) => {
                    let cj = cursors[j].as_ref().unwrap();
                    if cmp_cursors(c, cj, key_cis) == std::cmp::Ordering::Less {
                        Some(i)
                    } else {
                        Some(j)
                    }
                }
            };
        }
        let Some(bi) = best else { break };
        {
            let c = cursors[bi].as_ref().unwrap();
            for (ci, acc) in accs.iter_mut().enumerate() {
                acc.push(c.block.column_at(ci), c.row)?;
            }
        }
        buffered += 1;
        if buffered >= ctx.spill_block_rows.max(1) {
            flush(&mut accs, &mut writer, &mut out)?;
            buffered = 0;
        }
        let c = cursors[bi].as_mut().unwrap();
        c.advance(ctx)?;
        if c.exhausted() {
            cursors[bi] = None;
        }
    }
    if buffered > 0 || (writer.is_none() && out.is_none()) {
        flush(&mut accs, &mut writer, &mut out)?;
    }
    if let Some(w) = writer {
        let summary = w.finish()?;
        ctx.metrics.record_file(summary.total_bytes);
        return Ok(None);
    }
    // The memory sink builds columns bottom-up; align the empty case to
    // the proto schema.
    Ok(Some(out.unwrap_or_else(|| proto.slice(0, 0))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::MemContext;
    use crate::ops::aggregate::{AggFunc, AggSpec};

    fn big_table(n: usize) -> Table {
        let keys: Vec<Option<i64>> = (0..n)
            .map(|i| if i % 17 == 3 { None } else { Some((i % 97) as i64) })
            .collect();
        let vals: Vec<Option<f64>> = (0..n)
            .map(|i| {
                if i % 13 == 5 {
                    None
                } else {
                    Some((i as f64) * 0.25 - 40.0)
                }
            })
            .collect();
        let cats: Vec<Option<String>> = (0..n)
            .map(|i| {
                if i % 11 == 7 {
                    None
                } else {
                    Some(format!("cat{}", i % 23))
                }
            })
            .collect();
        Table::new(vec![
            ("k", Column::from_opt_ints(keys)),
            ("v", Column::from_opt_floats(vals)),
            ("c", Column::from_opt_strs(cats)),
        ])
        .unwrap()
        .encode_strings()
    }

    fn tiny_ctx() -> MemContext {
        let mut ctx = MemContext::with_budget(4 * 1024).unwrap();
        ctx.spill_block_rows = 256;
        ctx.fanout = 4;
        ctx
    }

    #[test]
    fn spilled_join_matches_in_memory() {
        let left = big_table(3000);
        let right = Table::new(vec![
            (
                "k",
                Column::from_opt_ints((0..200).map(|i| Some(i % 50)).collect()),
            ),
            (
                "w",
                Column::from_opt_ints((0..200).map(|i| Some(i * 10)).collect()),
            ),
        ])
        .unwrap();
        for how in [JoinType::Inner, JoinType::Left, JoinType::Right, JoinType::Full] {
            let expect = join(&left, &right, &["k"], &["k"], how).unwrap();
            let ctx = tiny_ctx();
            let got = join_with_mem(&left, &right, &["k"], &["k"], how, Some(&ctx)).unwrap();
            assert_eq!(got, expect, "join {how:?} diverged under spill");
            let snap = ctx.metrics.snapshot();
            assert!(snap.bytes_spilled > 0, "join {how:?} did not spill");
        }
    }

    #[test]
    fn spilled_group_by_matches_in_memory() {
        let t = big_table(3000);
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, "v", "s"),
            AggSpec::new(AggFunc::Avg, "v", "a"),
            AggSpec::new(AggFunc::First, "c", "f"),
            AggSpec::new(AggFunc::Last, "c", "l"),
            AggSpec::count_records("n"),
        ];
        let expect = group_by(&t, &["k", "c"], &aggs).unwrap();
        let ctx = tiny_ctx();
        let got = group_by_with_mem(&t, &["k", "c"], &aggs, Some(&ctx)).unwrap();
        assert_eq!(got, expect);
        assert!(ctx.metrics.snapshot().bytes_spilled > 0);
    }

    #[test]
    fn spilled_sort_matches_in_memory() {
        let t = big_table(3000);
        let keys = [SortKey::asc("k"), SortKey::desc("v")];
        let expect = sort_by(&t, &keys).unwrap();
        let mut ctx = tiny_ctx();
        ctx.spill_block_rows = 128;
        let got = sort_by_with_mem(&t, &keys, Some(&ctx)).unwrap();
        assert_eq!(got, expect);
        assert!(ctx.metrics.snapshot().bytes_spilled > 0);
    }

    #[test]
    fn under_budget_paths_do_not_spill() {
        let t = big_table(500);
        let ctx = MemContext::with_budget(u64::MAX).unwrap();
        let sorted = sort_by_with_mem(&t, &[SortKey::asc("v")], Some(&ctx)).unwrap();
        assert_eq!(sorted, sort_by(&t, &[SortKey::asc("v")]).unwrap());
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.bytes_spilled, 0);
        assert_eq!(snap.spill_events, 0);
    }

    #[test]
    fn spill_files_removed_after_ops() {
        let t = big_table(2000);
        let ctx = tiny_ctx();
        let _ = sort_by_with_mem(&t, &[SortKey::asc("v")], Some(&ctx)).unwrap();
        let _ = group_by_with_mem(
            &t,
            &["k"],
            &[AggSpec::count_records("n")],
            Some(&ctx),
        )
        .unwrap();
        let leaked: Vec<_> = std::fs::read_dir(&ctx.spill_root)
            .unwrap()
            .flatten()
            .collect();
        assert!(leaked.is_empty(), "spill dirs leaked: {leaked:?}");
    }

    #[test]
    fn helper_names_avoid_collisions() {
        let t = Table::new(vec![(
            "__spill_lrow",
            Column::from_ints(vec![1, 2]),
        )])
        .unwrap();
        let name = fresh_name(&[&t], &[], "__spill_lrow");
        assert_ne!(name, "__spill_lrow");
        assert!(t.schema().index_of(&name).is_none());
    }
}
