//! Group-by aggregation.
//!
//! Implements the `Compute the <aggregate> of <column> for each <group>`
//! skill (Table 1's data-wrangling row and the Figure 3 walkthrough).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::Range;

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::hash::FxHashMap;
use crate::parallel;
use crate::table::Table;
use crate::value::Value;

/// Aggregate functions available to the Compute skill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Count of non-null values of the argument column.
    Count,
    /// Count of rows in the group (the UI's "CountOfRecords").
    CountRecords,
    /// Count of distinct non-null values.
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    Median,
    /// Sample standard deviation.
    StdDev,
    /// Sample variance.
    Variance,
    /// First value in input order.
    First,
    /// Last value in input order.
    Last,
}

impl AggFunc {
    /// Canonical name used in SQL generation and GEL sentences.
    pub fn name(self) -> &'static str {
        use AggFunc::*;
        match self {
            Count => "count",
            CountRecords => "count_records",
            CountDistinct => "count_distinct",
            Sum => "sum",
            Avg => "avg",
            Min => "min",
            Max => "max",
            Median => "median",
            StdDev => "stddev",
            Variance => "variance",
            First => "first",
            Last => "last",
        }
    }

    /// GEL spelling ("the average of", "the count of", ...).
    pub fn gel_name(self) -> &'static str {
        use AggFunc::*;
        match self {
            Count => "count",
            CountRecords => "count of records",
            CountDistinct => "distinct count",
            Sum => "sum",
            Avg => "average",
            Min => "minimum",
            Max => "maximum",
            Median => "median",
            StdDev => "standard deviation",
            Variance => "variance",
            First => "first",
            Last => "last",
        }
    }

    /// Parse from either the canonical or the GEL spelling.
    pub fn from_name(s: &str) -> Option<AggFunc> {
        use AggFunc::*;
        let all = [
            Count,
            CountRecords,
            CountDistinct,
            Sum,
            Avg,
            Min,
            Max,
            Median,
            StdDev,
            Variance,
            First,
            Last,
        ];
        let lower = s.trim().to_ascii_lowercase();
        all.into_iter().find(|f| {
            f.name() == lower
                || f.gel_name() == lower
                || (lower == "mean" && *f == Avg)
                || (lower == "average" && *f == Avg)
        })
    }

    /// Whether this aggregate requires a numeric argument.
    pub fn requires_numeric(self) -> bool {
        use AggFunc::*;
        matches!(self, Sum | Avg | Median | StdDev | Variance)
    }
}

/// One aggregate to compute: function, argument column (ignored for
/// `CountRecords`), and the output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub column: Option<String>,
    pub output: String,
}

impl AggSpec {
    /// Aggregate over a column with an explicit output name.
    pub fn new(func: AggFunc, column: impl Into<String>, output: impl Into<String>) -> AggSpec {
        AggSpec {
            func,
            column: Some(column.into()),
            output: output.into(),
        }
    }

    /// Count of records with an explicit output name.
    pub fn count_records(output: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::CountRecords,
            column: None,
            output: output.into(),
        }
    }

    /// Default output name, e.g. `AverageAge` for avg(Age) — matching the
    /// platform's auto-naming of computed columns.
    pub fn default_output(func: AggFunc, column: Option<&str>) -> String {
        let fname = match func {
            AggFunc::CountRecords => return "CountOfRecords".to_string(),
            f => f.name(),
        };
        let mut out = String::new();
        let mut cap = true;
        for ch in fname.chars() {
            if ch == '_' {
                cap = true;
            } else if cap {
                out.extend(ch.to_uppercase());
                cap = false;
            } else {
                out.push(ch);
            }
        }
        if let Some(c) = column {
            out.push_str(&sanitize(c));
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Hashable group key: a row of values with canonical float bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey(Vec<KeyPart>);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(String),
    Date(i32),
}

fn key_part(v: &Value) -> KeyPart {
    match v {
        Value::Null => KeyPart::Null,
        Value::Bool(b) => KeyPart::Bool(*b),
        Value::Int(i) => KeyPart::Int(*i),
        Value::Float(f) => {
            // Normalize -0.0 and NaN so equal-ish keys group together.
            let f = if *f == 0.0 { 0.0 } else { *f };
            let f = if f.is_nan() { f64::NAN } else { f };
            KeyPart::Float(f.to_bits())
        }
        Value::Str(s) => KeyPart::Str(s.clone()),
        Value::Date(d) => KeyPart::Date(*d),
    }
}

/// Incremental accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    CountRecords(u64),
    CountDistinct(Vec<KeyPart>),
    Sum {
        sum: f64,
        seen: bool,
        int: bool,
        isum: i64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Values(Vec<f64>),
    Moments {
        n: u64,
        mean: f64,
        m2: f64,
    },
    First(Option<Value>),
    Last(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc, int_input: bool) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountRecords => Acc::CountRecords(0),
            AggFunc::CountDistinct => Acc::CountDistinct(Vec::new()),
            AggFunc::Sum => Acc::Sum {
                sum: 0.0,
                seen: false,
                int: int_input,
                isum: 0,
            },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => Acc::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Median => Acc::Values(Vec::new()),
            AggFunc::StdDev | AggFunc::Variance => Acc::Moments {
                n: 0,
                mean: 0.0,
                m2: 0.0,
            },
            AggFunc::First => Acc::First(None),
            AggFunc::Last => Acc::Last(None),
        }
    }

    fn update(&mut self, col: Option<&Column>, row: usize) {
        match self {
            Acc::CountRecords(n) => *n += 1,
            Acc::Count(n) => {
                if let Some(c) = col {
                    if c.validity().get(row) {
                        *n += 1;
                    }
                }
            }
            Acc::CountDistinct(seen) => {
                if let Some(c) = col {
                    let v = c.get(row);
                    if !v.is_null() {
                        let k = key_part(&v);
                        if !seen.contains(&k) {
                            seen.push(k);
                        }
                    }
                }
            }
            Acc::Sum {
                sum,
                seen,
                int,
                isum,
            } => {
                if let Some(x) = col.and_then(|c| c.numeric_at(row)) {
                    *sum += x;
                    if *int {
                        *isum = isum.wrapping_add(x as i64);
                    }
                    *seen = true;
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(x) = col.and_then(|c| c.numeric_at(row)) {
                    *sum += x;
                    *n += 1;
                }
            }
            Acc::MinMax { best, is_min } => {
                if let Some(c) = col {
                    let v = c.get(row);
                    if v.is_null() {
                        return;
                    }
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            let ord = v.cmp_total(b);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            Acc::Values(vals) => {
                if let Some(x) = col.and_then(|c| c.numeric_at(row)) {
                    vals.push(x);
                }
            }
            Acc::Moments { n, mean, m2 } => {
                // Welford's online algorithm for numerically stable variance.
                if let Some(x) = col.and_then(|c| c.numeric_at(row)) {
                    *n += 1;
                    let delta = x - *mean;
                    *mean += delta / *n as f64;
                    *m2 += delta * (x - *mean);
                }
            }
            Acc::First(v) => {
                if v.is_none() {
                    if let Some(c) = col {
                        let x = c.get(row);
                        if !x.is_null() {
                            *v = Some(x);
                        }
                    }
                }
            }
            Acc::Last(v) => {
                if let Some(c) = col {
                    let x = c.get(row);
                    if !x.is_null() {
                        *v = Some(x);
                    }
                }
            }
        }
    }

    /// Fold a morsel-local accumulator for the same group into this one.
    /// `other` must come from rows strictly after this accumulator's rows,
    /// so order-sensitive aggregates (first/last) stay correct.
    fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Count(n), Acc::Count(m)) => *n += m,
            (Acc::CountRecords(n), Acc::CountRecords(m)) => *n += m,
            (Acc::CountDistinct(seen), Acc::CountDistinct(more)) => {
                for k in more {
                    if !seen.contains(&k) {
                        seen.push(k);
                    }
                }
            }
            (
                Acc::Sum {
                    sum, seen, isum, ..
                },
                Acc::Sum {
                    sum: sum_b,
                    seen: seen_b,
                    isum: isum_b,
                    ..
                },
            ) => {
                *sum += sum_b;
                *isum = isum.wrapping_add(isum_b);
                *seen |= seen_b;
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: sum_b, n: n_b }) => {
                *sum += sum_b;
                *n += n_b;
            }
            (Acc::MinMax { best, is_min }, Acc::MinMax { best: best_b, .. }) => {
                if let Some(v) = best_b {
                    let replace = match best {
                        None => true,
                        Some(cur) => {
                            let ord = v.cmp_total(cur);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (Acc::Values(vals), Acc::Values(more)) => vals.extend(more),
            (
                Acc::Moments { n, mean, m2 },
                Acc::Moments {
                    n: n_b,
                    mean: mean_b,
                    m2: m2_b,
                },
            ) => {
                // Parallel Welford (Chan et al.): exact in n and mean,
                // numerically close to the serial update in m2.
                if n_b == 0 {
                    // Nothing to fold in.
                } else if *n == 0 {
                    *n = n_b;
                    *mean = mean_b;
                    *m2 = m2_b;
                } else {
                    let na = *n as f64;
                    let nb = n_b as f64;
                    let total = na + nb;
                    let delta = mean_b - *mean;
                    *mean += delta * nb / total;
                    *m2 += m2_b + delta * delta * na * nb / total;
                    *n += n_b;
                }
            }
            (Acc::First(v), Acc::First(w)) => {
                if v.is_none() {
                    *v = w;
                }
            }
            (Acc::Last(v), Acc::Last(w)) => {
                if w.is_some() {
                    *v = w;
                }
            }
            _ => unreachable!("merging accumulators of different aggregates"),
        }
    }

    fn finish(self, func: AggFunc) -> Value {
        match self {
            Acc::Count(n) | Acc::CountRecords(n) => Value::Int(n as i64),
            Acc::CountDistinct(seen) => Value::Int(seen.len() as i64),
            Acc::Sum {
                sum,
                seen,
                int,
                isum,
            } => {
                if !seen {
                    Value::Null
                } else if int {
                    Value::Int(isum)
                } else {
                    Value::Float(sum)
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::MinMax { best, .. } => best.map_or(Value::Null, |v| v),
            Acc::Values(mut vals) => {
                if vals.is_empty() {
                    return Value::Null;
                }
                vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mid = vals.len() / 2;
                Value::Float(if vals.len() % 2 == 1 {
                    vals[mid]
                } else {
                    (vals[mid - 1] + vals[mid]) / 2.0
                })
            }
            Acc::Moments { n, m2, .. } => {
                if n < 2 {
                    Value::Null
                } else {
                    let var = m2 / (n - 1) as f64;
                    if func == AggFunc::Variance {
                        Value::Float(var)
                    } else {
                        Value::Float(var.sqrt())
                    }
                }
            }
            Acc::First(v) | Acc::Last(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Resolved group-by inputs: key columns, output key names, and the
/// argument column (if any) of each aggregate.
struct GroupInputs<'t> {
    key_cols: Vec<&'t Column>,
    key_names: Vec<String>,
    agg_cols: Vec<Option<&'t Column>>,
}

fn resolve_inputs<'t>(
    table: &'t Table,
    keys: &[&str],
    aggs: &[AggSpec],
) -> Result<GroupInputs<'t>> {
    let key_cols: Vec<&Column> = keys
        .iter()
        .map(|k| table.column(k))
        .collect::<Result<_>>()?;
    let key_names: Vec<String> = keys
        .iter()
        .map(|k| {
            table
                .schema()
                .field(k)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| k.to_string())
        })
        .collect();
    let agg_cols: Vec<Option<&Column>> = aggs
        .iter()
        .map(|a| match (&a.column, a.func) {
            (_, AggFunc::CountRecords) => Ok(None),
            (Some(c), _) => {
                let col = table.column(c)?;
                if a.func.requires_numeric() && !col.dtype().is_numeric() {
                    return Err(EngineError::invalid_argument(format!(
                        "{} requires a numeric column, but {c} is {}",
                        a.func.name(),
                        col.dtype()
                    )));
                }
                Ok(Some(col))
            }
            (None, f) => Err(EngineError::invalid_argument(format!(
                "aggregate {} requires a column",
                f.name()
            ))),
        })
        .collect::<Result<_>>()?;
    Ok(GroupInputs {
        key_cols,
        key_names,
        agg_cols,
    })
}

fn new_accs(aggs: &[AggSpec], agg_cols: &[Option<&Column>]) -> Vec<Acc> {
    aggs.iter()
        .zip(agg_cols)
        .map(|(a, c)| {
            let int_input = c.is_some_and(|c| c.dtype() == crate::dtype::DataType::Int);
            Acc::new(a.func, int_input)
        })
        .collect()
}

fn assemble_output(
    inputs: &GroupInputs<'_>,
    group_order: &[GroupKey],
    accs: Vec<Vec<Acc>>,
    aggs: &[AggSpec],
) -> Result<Table> {
    let mut out = Table::empty();
    for (ki, name) in inputs.key_names.iter().enumerate() {
        let mut col = Column::empty(inputs.key_cols[ki].dtype());
        for key in group_order {
            let v = part_to_value(&key.0[ki]);
            col.push_value(&v)?;
        }
        out.add_column(name, col)?;
    }
    for (ai, spec) in aggs.iter().enumerate() {
        // Type the output from the spec, never from value inference: a
        // group set whose aggregate values are all null (or empty) must
        // still produce the dtype a non-null group would, so partial
        // results from disjoint row subsets always concatenate.
        let dtype = agg_output_dtype(spec.func, inputs.agg_cols[ai].map(|c| c.dtype()));
        let mut col = Column::empty(dtype);
        for group in &accs {
            col.push_value(&group[ai].clone().finish(spec.func))?;
        }
        out.add_column(&spec.output, col)?;
    }
    Ok(out)
}

/// The dtype [`Acc::finish`] produces for `func` over an `input`-typed
/// argument column, independent of whether any group has a non-null
/// result.
fn agg_output_dtype(
    func: AggFunc,
    input: Option<crate::dtype::DataType>,
) -> crate::dtype::DataType {
    use crate::dtype::DataType;
    match func {
        AggFunc::Count | AggFunc::CountRecords | AggFunc::CountDistinct => DataType::Int,
        AggFunc::Avg | AggFunc::Median | AggFunc::StdDev | AggFunc::Variance => DataType::Float,
        AggFunc::Sum => {
            if input == Some(DataType::Int) {
                DataType::Int
            } else {
                DataType::Float
            }
        }
        AggFunc::Min | AggFunc::Max | AggFunc::First | AggFunc::Last => {
            input.unwrap_or(DataType::Str)
        }
    }
}

/// Group `table` by `keys` and compute `aggs` within each group.
///
/// With an empty key list the whole table forms one group (global
/// aggregates). Output columns are the keys (original casing) followed by
/// one column per aggregate. Groups appear in first-encounter order, which
/// keeps results deterministic.
///
/// Large tables take a two-phase morsel path: each worker aggregates its
/// own row range into morsel-local accumulators which are then folded
/// together in morsel order, preserving the serial first-encounter group
/// order exactly (morsels are contiguous ascending ranges).
pub fn group_by(table: &Table, keys: &[&str], aggs: &[AggSpec]) -> Result<Table> {
    if parallel::enabled(table.num_rows()) {
        group_by_morsel(table, keys, aggs)
    } else {
        group_by_serial(table, keys, aggs)
    }
}

/// Single-threaded group-by (also the reference for the morsel path).
pub fn group_by_serial(table: &Table, keys: &[&str], aggs: &[AggSpec]) -> Result<Table> {
    if aggs.is_empty() {
        return Err(EngineError::invalid_argument(
            "group_by requires at least one aggregate",
        ));
    }
    let inputs = resolve_inputs(table, keys, aggs)?;
    let n = table.num_rows();
    let mut group_index: HashMap<GroupKey, usize> = HashMap::new();
    let mut group_order: Vec<GroupKey> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();

    if keys.is_empty() {
        accs.push(new_accs(aggs, &inputs.agg_cols));
        group_order.push(GroupKey(Vec::new()));
        group_index.insert(GroupKey(Vec::new()), 0);
    }

    for row in 0..n {
        let gid = if keys.is_empty() {
            0
        } else {
            let key = GroupKey(
                inputs
                    .key_cols
                    .iter()
                    .map(|c| key_part(&c.get(row)))
                    .collect(),
            );
            match group_index.get(&key) {
                Some(&g) => g,
                None => {
                    let g = group_order.len();
                    group_index.insert(key.clone(), g);
                    group_order.push(key);
                    accs.push(new_accs(aggs, &inputs.agg_cols));
                    g
                }
            }
        };
        for (acc, col) in accs[gid].iter_mut().zip(&inputs.agg_cols) {
            acc.update(*col, row);
        }
    }

    assemble_output(&inputs, &group_order, accs, aggs)
}

/// Morsel-local phase-1 result: one representative row index per group
/// (in first-encounter order) plus that group's accumulators.
struct MorselGroups {
    reps: Vec<usize>,
    accs: Vec<Vec<Acc>>,
}

fn group_by_morsel(table: &Table, keys: &[&str], aggs: &[AggSpec]) -> Result<Table> {
    if aggs.is_empty() {
        return Err(EngineError::invalid_argument(
            "group_by requires at least one aggregate",
        ));
    }
    let inputs = resolve_inputs(table, keys, aggs)?;
    let ranges = parallel::morsels(table.num_rows());

    // Phase 1: every worker builds dictionary-coded group ids for its row
    // range (no per-row key materialization) and aggregates locally.
    let parts: Vec<MorselGroups> = parallel::run_morsels(&ranges, |r| {
        let start = r.start;
        let gids = encode_groups(&inputs.key_cols, r);
        let mut reps: Vec<usize> = Vec::new();
        for (off, &g) in gids.iter().enumerate() {
            // Codes are assigned densely in first-encounter order, so a
            // group's first row is the first row whose gid == reps.len().
            if g as usize == reps.len() {
                reps.push(start + off);
            }
        }
        let mut accs: Vec<Vec<Acc>> = (0..reps.len())
            .map(|_| new_accs(aggs, &inputs.agg_cols))
            .collect();
        for (off, &g) in gids.iter().enumerate() {
            let row = start + off;
            for (acc, col) in accs[g as usize].iter_mut().zip(&inputs.agg_cols) {
                acc.update(*col, row);
            }
        }
        MorselGroups { reps, accs }
    });

    // Phase 2: fold morsel-local groups together in morsel order. Keys are
    // materialized once per (morsel, group) — never per row.
    let mut group_index: HashMap<GroupKey, usize> = HashMap::new();
    let mut group_order: Vec<GroupKey> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    for part in parts {
        for (local, rep) in part.accs.into_iter().zip(part.reps) {
            let key = GroupKey(
                inputs
                    .key_cols
                    .iter()
                    .map(|c| key_part(&c.get(rep)))
                    .collect(),
            );
            match group_index.get(&key) {
                Some(&g) => {
                    for (dst, src) in accs[g].iter_mut().zip(local) {
                        dst.merge(src);
                    }
                }
                None => {
                    group_index.insert(key.clone(), group_order.len());
                    group_order.push(key);
                    accs.push(local);
                }
            }
        }
    }

    // An empty key list over a non-empty table always yields exactly one
    // group from phase 1; an empty table never reaches the morsel path.
    assemble_output(&inputs, &group_order, accs, aggs)
}

/// Dictionary-code the composite group key of each row in `range` into a
/// dense id, assigned in first-encounter order.
fn encode_groups(key_cols: &[&Column], range: Range<usize>) -> Vec<u32> {
    let len = range.end - range.start;
    if key_cols.is_empty() {
        return vec![0; len];
    }
    let mut gids = encode_key_column(key_cols[0], range.clone());
    for col in &key_cols[1..] {
        let codes = encode_key_column(col, range.clone());
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        let mut next = 0u32;
        for (g, c) in gids.iter_mut().zip(codes) {
            let composite = ((*g as u64) << 32) | c as u64;
            *g = match map.entry(composite) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let id = next;
                    next += 1;
                    *e.insert(id)
                }
            };
        }
    }
    gids
}

/// Dictionary-code one key column over `range` without materializing
/// values: strings are compared by reference, floats by normalized bits
/// (matching [`key_part`]), and null gets its own code.
fn encode_key_column(col: &Column, range: Range<usize>) -> Vec<u32> {
    let mut codes = Vec::with_capacity(range.end - range.start);
    let mut null_code: Option<u32> = None;
    let mut next = 0u32;
    macro_rules! encode {
        ($v:ident, $b:ident, $key:expr) => {
            let mut map = FxHashMap::default();
            for i in range {
                let code = if $b.get(i) {
                    match map.entry($key(&$v[i])) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let id = next;
                            next += 1;
                            *e.insert(id)
                        }
                    }
                } else {
                    *null_code.get_or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    })
                };
                codes.push(code);
            }
        };
    }
    match col {
        Column::Bool(v, b) => {
            encode!(v, b, |x: &bool| *x);
        }
        Column::Int(v, b) => {
            encode!(v, b, |x: &i64| *x);
        }
        Column::Float(v, b) => {
            encode!(v, b, |x: &f64| {
                // Same normalization as key_part: -0.0 folds into 0.0 and
                // every NaN payload groups together.
                let f = if *x == 0.0 { 0.0 } else { *x };
                let f = if f.is_nan() { f64::NAN } else { f };
                f.to_bits()
            });
        }
        Column::Str(v, b) => {
            // Written out (not via the macro) so the map can key on `&str`
            // borrowed from the column without cloning.
            let mut map: FxHashMap<&str, u32> = FxHashMap::default();
            for i in range {
                let code = if b.get(i) {
                    match map.entry(v[i].as_str()) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let id = next;
                            next += 1;
                            *e.insert(id)
                        }
                    }
                } else {
                    *null_code.get_or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    })
                };
                codes.push(code);
            }
            return codes;
        }
        Column::Dict(dict_codes, dict, b) => {
            // The column is already dictionary-coded; remap its (dense,
            // bounded) codes to first-encounter group ids with a flat
            // array instead of a hash map. Slot `dict.len()` is null.
            const UNSEEN: u32 = u32::MAX;
            let mut remap = vec![UNSEEN; dict.len() + 1];
            for i in range {
                let slot = if b.get(i) {
                    dict_codes[i] as usize
                } else {
                    dict.len()
                };
                let code = if remap[slot] == UNSEEN {
                    let id = next;
                    next += 1;
                    remap[slot] = id;
                    id
                } else {
                    remap[slot]
                };
                codes.push(code);
            }
            return codes;
        }
        Column::Date(v, b) => {
            encode!(v, b, |x: &i32| *x);
        }
    }
    codes
}

fn part_to_value(p: &KeyPart) -> Value {
    match p {
        KeyPart::Null => Value::Null,
        KeyPart::Bool(b) => Value::Bool(*b),
        KeyPart::Int(i) => Value::Int(*i),
        KeyPart::Float(bits) => Value::Float(f64::from_bits(*bits)),
        KeyPart::Str(s) => Value::Str(s.clone()),
        KeyPart::Date(d) => Value::Date(*d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parties() -> Table {
        Table::new(vec![
            (
                "party_sobriety",
                Column::from_opt_strs(vec![
                    Some("sober".into()),
                    Some("sober".into()),
                    Some("drinking".into()),
                    None,
                    Some("drinking".into()),
                ]),
            ),
            (
                "case_id",
                Column::from_opt_ints(vec![Some(1), Some(2), Some(3), Some(4), None]),
            ),
            (
                "age",
                Column::from_opt_ints(vec![Some(20), Some(40), Some(30), Some(50), None]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn count_for_each_group() {
        // "Compute the count of case_id for each party_sobriety" — Fig. 3.
        let out = group_by(
            &parties(),
            &["party_sobriety"],
            &[AggSpec::new(AggFunc::Count, "case_id", "NumberOfCases")],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(
            out.schema().names(),
            vec!["party_sobriety", "NumberOfCases"]
        );
        // Group order = first encounter: sober, drinking, null.
        assert_eq!(out.value(0, "NumberOfCases").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "NumberOfCases").unwrap(), Value::Int(1)); // null case_id excluded
        assert_eq!(out.value(2, "party_sobriety").unwrap(), Value::Null); // null is its own group
        assert_eq!(out.value(2, "NumberOfCases").unwrap(), Value::Int(1));
    }

    #[test]
    fn count_records_includes_nulls() {
        let out = group_by(
            &parties(),
            &["party_sobriety"],
            &[AggSpec::count_records("CountOfRecords")],
        )
        .unwrap();
        assert_eq!(out.value(1, "CountOfRecords").unwrap(), Value::Int(2));
    }

    #[test]
    fn global_aggregates_no_keys() {
        let out = group_by(
            &parties(),
            &[],
            &[
                AggSpec::new(AggFunc::Sum, "age", "TotalAge"),
                AggSpec::new(AggFunc::Avg, "age", "AvgAge"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "TotalAge").unwrap(), Value::Int(140));
        assert_eq!(out.value(0, "AvgAge").unwrap(), Value::Float(35.0));
    }

    #[test]
    fn min_max_median() {
        let out = group_by(
            &parties(),
            &[],
            &[
                AggSpec::new(AggFunc::Min, "age", "lo"),
                AggSpec::new(AggFunc::Max, "age", "hi"),
                AggSpec::new(AggFunc::Median, "age", "mid"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "lo").unwrap(), Value::Int(20));
        assert_eq!(out.value(0, "hi").unwrap(), Value::Int(50));
        assert_eq!(out.value(0, "mid").unwrap(), Value::Float(35.0));
    }

    #[test]
    fn stddev_variance_welford() {
        let t = Table::new(vec![(
            "x",
            Column::from_floats(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]),
        )])
        .unwrap();
        let out = group_by(
            &t,
            &[],
            &[
                AggSpec::new(AggFunc::Variance, "x", "var"),
                AggSpec::new(AggFunc::StdDev, "x", "sd"),
            ],
        )
        .unwrap();
        let var = out.value(0, "var").unwrap().as_f64().unwrap();
        assert!((var - 32.0 / 7.0).abs() < 1e-12);
        let sd = out.value(0, "sd").unwrap().as_f64().unwrap();
        assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn count_distinct() {
        let out = group_by(
            &parties(),
            &[],
            &[AggSpec::new(
                AggFunc::CountDistinct,
                "party_sobriety",
                "kinds",
            )],
        )
        .unwrap();
        assert_eq!(out.value(0, "kinds").unwrap(), Value::Int(2));
    }

    #[test]
    fn first_last_skip_nulls() {
        let out = group_by(
            &parties(),
            &[],
            &[
                AggSpec::new(AggFunc::First, "party_sobriety", "f"),
                AggSpec::new(AggFunc::Last, "party_sobriety", "l"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "f").unwrap(), Value::Str("sober".into()));
        assert_eq!(out.value(0, "l").unwrap(), Value::Str("drinking".into()));
    }

    #[test]
    fn multi_key_grouping() {
        let t = Table::new(vec![
            ("a", Column::from_strs(vec!["x", "x", "y", "y"])),
            ("b", Column::from_ints(vec![1, 2, 1, 1])),
        ])
        .unwrap();
        let out = group_by(&t, &["a", "b"], &[AggSpec::count_records("n")]).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(2, "n").unwrap(), Value::Int(2));
    }

    #[test]
    fn sum_over_empty_group_is_null_and_numeric_required() {
        let empty = parties().head(0);
        let out = group_by(&empty, &[], &[AggSpec::new(AggFunc::Sum, "age", "s")]).unwrap();
        assert_eq!(out.value(0, "s").unwrap(), Value::Null);
        assert!(group_by(
            &parties(),
            &[],
            &[AggSpec::new(AggFunc::Sum, "party_sobriety", "s")]
        )
        .is_err());
    }

    #[test]
    fn default_output_names() {
        assert_eq!(AggSpec::default_output(AggFunc::Avg, Some("Age")), "AvgAge");
        assert_eq!(
            AggSpec::default_output(AggFunc::CountRecords, None),
            "CountOfRecords"
        );
        assert_eq!(
            AggSpec::default_output(AggFunc::CountDistinct, Some("x")),
            "CountDistinctx"
        );
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::from_name("average"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("Mean"), Some(AggFunc::Avg));
        assert_eq!(
            AggFunc::from_name("count of records"),
            Some(AggFunc::CountRecords)
        );
        assert_eq!(AggFunc::from_name("bogus"), None);
    }
}
