//! Pivot (cross-tabulation).

use crate::error::{EngineError, Result};
use crate::ops::aggregate::{group_by, AggFunc, AggSpec};
use crate::table::Table;
use crate::value::Value;

/// Pivot `table`: one output row per distinct `index` value, one output
/// column per distinct `columns` value, cells holding `agg` of `values`.
///
/// Column headers are the rendered pivot values; a null pivot value gets
/// the header `null`. Missing combinations are null cells.
pub fn pivot(
    table: &Table,
    index: &str,
    columns: &str,
    values: &str,
    agg: AggFunc,
) -> Result<Table> {
    if index.eq_ignore_ascii_case(columns) {
        return Err(EngineError::invalid_argument(
            "pivot index and columns must differ",
        ));
    }
    // Aggregate once over (index, columns), then scatter.
    let grouped = group_by(
        table,
        &[index, columns],
        &[AggSpec::new(agg, values, "__cell")],
    )?;
    let idx_col = grouped.column_at(0);
    let hdr_col = grouped.column_at(1);
    let cell_col = grouped.column_at(2);

    // Distinct index values and headers, in first-encounter order.
    let mut row_keys: Vec<Value> = Vec::new();
    let mut headers: Vec<String> = Vec::new();
    for r in 0..grouped.num_rows() {
        let iv = idx_col.get(r);
        if !row_keys.contains(&iv) {
            row_keys.push(iv);
        }
        let h = hdr_col.get(r).render();
        if !headers.contains(&h) {
            headers.push(h);
        }
    }

    let mut cells: Vec<Vec<Value>> = vec![vec![Value::Null; headers.len()]; row_keys.len()];
    for r in 0..grouped.num_rows() {
        let iv = idx_col.get(r);
        let h = hdr_col.get(r).render();
        let ri = row_keys.iter().position(|k| *k == iv).unwrap();
        let ci = headers.iter().position(|k| *k == h).unwrap();
        cells[ri][ci] = cell_col.get(r);
    }

    let mut out = Table::empty();
    let index_name = table
        .schema()
        .field(index)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| index.to_string());
    out.add_column(&index_name, crate::column::Column::from_values(&row_keys)?)?;
    for (ci, header) in headers.iter().enumerate() {
        let col_vals: Vec<Value> = cells.iter().map(|row| row[ci].clone()).collect();
        let name = out.schema().fresh_name(header);
        out.add_column(&name, crate::column::Column::from_values(&col_vals)?)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn t() -> Table {
        Table::new(vec![
            ("sex", Column::from_strs(vec!["m", "m", "f", "f", "m"])),
            (
                "fault",
                Column::from_strs(vec!["yes", "no", "yes", "yes", "yes"]),
            ),
            ("n", Column::from_ints(vec![1, 1, 1, 1, 1])),
        ])
        .unwrap()
    }

    #[test]
    fn basic_crosstab() {
        let out = pivot(&t(), "sex", "fault", "n", AggFunc::Sum).unwrap();
        assert_eq!(out.schema().names(), vec!["sex", "yes", "no"]);
        assert_eq!(out.value(0, "yes").unwrap(), Value::Int(2)); // m/yes
        assert_eq!(out.value(0, "no").unwrap(), Value::Int(1));
        assert_eq!(out.value(1, "yes").unwrap(), Value::Int(2)); // f/yes
        assert_eq!(out.value(1, "no").unwrap(), Value::Null); // missing combo
    }

    #[test]
    fn count_pivot() {
        let out = pivot(&t(), "fault", "sex", "n", AggFunc::Count).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "m").unwrap(), Value::Int(2));
    }

    #[test]
    fn same_index_and_columns_rejected() {
        assert!(pivot(&t(), "sex", "SEX", "n", AggFunc::Sum).is_err());
    }

    #[test]
    fn null_pivot_value_becomes_null_header() {
        let t = Table::new(vec![
            ("k", Column::from_strs(vec!["a", "a"])),
            ("p", Column::from_opt_strs(vec![Some("x".into()), None])),
            ("v", Column::from_ints(vec![5, 7])),
        ])
        .unwrap();
        let out = pivot(&t, "k", "p", "v", AggFunc::Sum).unwrap();
        assert!(out.schema().index_of("null").is_some());
        assert_eq!(out.value(0, "null").unwrap(), Value::Int(7));
    }

    #[test]
    fn header_collision_with_index_gets_fresh_name() {
        let t = Table::new(vec![
            ("k", Column::from_strs(vec!["a"])),
            ("p", Column::from_strs(vec!["k"])), // header would collide with "k"
            ("v", Column::from_ints(vec![5])),
        ])
        .unwrap();
        let out = pivot(&t, "k", "p", "v", AggFunc::Sum).unwrap();
        assert_eq!(out.schema().names(), vec!["k", "k_2"]);
    }
}
