//! Row sampling.
//!
//! The in-memory engine offers uniform row sampling; the storage layer
//! builds the paper's cheaper *block-level* sampling (§3) on top of its
//! block structure, using these primitives per block.

use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::Rng;
use rand::SeedableRng;

use crate::error::{EngineError, Result};
use crate::table::Table;

/// Bernoulli-sample each row with probability `fraction`, deterministic in
/// `seed`. Fractions are clamped semantics-free: values outside `(0, 1]`
/// are rejected so a typo'd "10" (meant: 10%) cannot silently explode.
pub fn sample_fraction(table: &Table, fraction: f64, seed: u64) -> Result<Table> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(EngineError::invalid_argument(format!(
            "sample fraction must be in (0, 1], got {fraction}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mask: Vec<bool> = (0..table.num_rows())
        .map(|_| rng.random::<f64>() < fraction)
        .collect();
    table.filter_mask(&mask)
}

/// Sample exactly `n` rows without replacement (all rows when `n` exceeds
/// the table length), preserving input order.
pub fn sample_n(table: &Table, n: usize, seed: u64) -> Result<Table> {
    let total = table.num_rows();
    if n >= total {
        return Ok(table.clone());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = index_sample(&mut rng, total, n).into_iter().collect();
    indices.sort_unstable();
    Ok(table.take(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn t(n: usize) -> Table {
        Table::new(vec![("x", Column::from_ints((0..n as i64).collect()))]).unwrap()
    }

    #[test]
    fn fraction_roughly_proportional() {
        let out = sample_fraction(&t(10_000), 0.1, 42).unwrap();
        let k = out.num_rows();
        assert!((800..1200).contains(&k), "got {k}");
    }

    #[test]
    fn fraction_deterministic_in_seed() {
        let a = sample_fraction(&t(1000), 0.5, 7).unwrap();
        let b = sample_fraction(&t(1000), 0.5, 7).unwrap();
        assert_eq!(a, b);
        let c = sample_fraction(&t(1000), 0.5, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fraction_bounds_enforced() {
        assert!(sample_fraction(&t(10), 0.0, 1).is_err());
        assert!(sample_fraction(&t(10), 1.5, 1).is_err());
        assert!(sample_fraction(&t(10), -0.1, 1).is_err());
        assert_eq!(sample_fraction(&t(10), 1.0, 1).unwrap().num_rows(), 10);
    }

    #[test]
    fn sample_n_exact() {
        let out = sample_n(&t(100), 10, 3).unwrap();
        assert_eq!(out.num_rows(), 10);
    }

    #[test]
    fn sample_n_preserves_order() {
        let out = sample_n(&t(100), 20, 5).unwrap();
        let vals: Vec<i64> = (0..out.num_rows())
            .map(|r| out.value(r, "x").unwrap().as_i64().unwrap())
            .collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted);
    }

    #[test]
    fn sample_n_oversized_returns_all() {
        let out = sample_n(&t(5), 50, 1).unwrap();
        assert_eq!(out.num_rows(), 5);
    }
}
