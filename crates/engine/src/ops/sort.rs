//! Multi-key stable sort.

use crate::error::Result;
use crate::parallel;
use crate::table::Table;
use crate::value::Value;

/// One sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    pub column: String,
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            ascending: true,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            ascending: false,
        }
    }
}

/// Stable sort by the given keys. Nulls sort first on ascending keys and
/// last on descending ones (a consequence of the total order on values).
///
/// Large tables take a decorate-sort morsel path: key values are extracted
/// once per row (instead of twice per comparison), contiguous index chunks
/// sort concurrently, and sorted chunks fold together through a stable
/// left-biased merge — ties keep earlier-chunk rows first, which are
/// exactly the earlier input rows, so stability matches the serial sort.
pub fn sort_by(table: &Table, keys: &[SortKey]) -> Result<Table> {
    if keys.is_empty() {
        return Ok(table.clone());
    }
    if parallel::enabled(table.num_rows()) {
        sort_by_morsel(table, keys)
    } else {
        sort_by_serial(table, keys)
    }
}

/// Single-threaded sort (also the reference for the morsel path).
pub fn sort_by_serial(table: &Table, keys: &[SortKey]) -> Result<Table> {
    if keys.is_empty() {
        return Ok(table.clone());
    }
    let cols: Vec<_> = keys
        .iter()
        .map(|k| table.column(&k.column))
        .collect::<Result<Vec<_>>>()?;
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for (key, col) in keys.iter().zip(&cols) {
            let ord = col.get(a).cmp_total(&col.get(b));
            let ord = if key.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(table.take(&indices))
}

fn sort_by_morsel(table: &Table, keys: &[SortKey]) -> Result<Table> {
    let cols: Vec<_> = keys
        .iter()
        .map(|k| table.column(&k.column))
        .collect::<Result<Vec<_>>>()?;
    let n = table.num_rows();

    // Decorate: materialize each key column's sort keys once, in parallel.
    // Dictionary columns never touch their string payloads — the
    // dictionary is sorted, so comparing (validity, code) pairs is
    // exactly the total order on the strings (nulls first ascending,
    // like `Value::cmp_total`).
    enum SortCol {
        Vals(Vec<Value>),
        Codes(Vec<Option<u32>>),
    }
    let decorated: Vec<SortCol> = parallel::run_indexed(cols.len(), |k| {
        if let Some((codes, _, valid)) = cols[k].as_dict() {
            SortCol::Codes((0..n).map(|i| valid.get(i).then(|| codes[i])).collect())
        } else {
            SortCol::Vals((0..n).map(|i| cols[k].get(i)).collect())
        }
    });
    let cmp = |a: usize, b: usize| -> std::cmp::Ordering {
        for (key, col) in keys.iter().zip(&decorated) {
            let ord = match col {
                SortCol::Vals(vals) => vals[a].cmp_total(&vals[b]),
                // `None` (null) < `Some(code)`: nulls first, matching the
                // total order on values.
                SortCol::Codes(codes) => codes[a].cmp(&codes[b]),
            };
            let ord = if key.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };

    // Sort each contiguous index chunk, then merge pairwise until one
    // run remains. Both stages run on the worker pool.
    let ranges = parallel::morsels(n);
    let mut runs: Vec<Vec<usize>> = parallel::run_morsels(&ranges, |r| {
        let mut idx: Vec<usize> = r.collect();
        idx.sort_by(|&a, &b| cmp(a, b));
        idx
    });
    while runs.len() > 1 {
        let pairs = runs.len().div_ceil(2);
        runs = parallel::run_indexed(pairs, |i| {
            let a = &runs[2 * i];
            match runs.get(2 * i + 1) {
                Some(b) => merge_stable(a, b, &cmp),
                None => a.clone(),
            }
        });
    }
    let indices = runs.pop().unwrap_or_default();
    Ok(table.take(&indices))
}

/// Merge two sorted runs, taking from `a` on ties. `a` must hold earlier
/// input rows than `b` for the overall sort to stay stable.
fn merge_stable(
    a: &[usize],
    b: &[usize],
    cmp: &impl Fn(usize, usize) -> std::cmp::Ordering,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(b[j], a[i]) == std::cmp::Ordering::Less {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The `n` rows with the largest values of `column` (ties broken by input
/// order), used by "top N" skills.
pub fn top_n(table: &Table, column: &str, n: usize) -> Result<Table> {
    let sorted = sort_by(table, &[SortKey::desc(column)])?;
    Ok(sorted.head(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Value;

    fn t() -> Table {
        Table::new(vec![
            ("g", Column::from_strs(vec!["b", "a", "b", "a"])),
            (
                "v",
                Column::from_opt_ints(vec![Some(2), None, Some(1), Some(3)]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn single_key_ascending_nulls_first() {
        let out = sort_by(&t(), &[SortKey::asc("v")]).unwrap();
        assert_eq!(out.value(0, "v").unwrap(), Value::Null);
        assert_eq!(out.value(1, "v").unwrap(), Value::Int(1));
        assert_eq!(out.value(3, "v").unwrap(), Value::Int(3));
    }

    #[test]
    fn multi_key() {
        let out = sort_by(&t(), &[SortKey::asc("g"), SortKey::desc("v")]).unwrap();
        assert_eq!(out.value(0, "g").unwrap(), Value::Str("a".into()));
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "v").unwrap(), Value::Null); // desc: nulls last
        assert_eq!(out.value(2, "v").unwrap(), Value::Int(2));
    }

    #[test]
    fn stable_on_ties() {
        let t = Table::new(vec![
            ("k", Column::from_ints(vec![1, 1, 1])),
            ("ord", Column::from_ints(vec![10, 20, 30])),
        ])
        .unwrap();
        let out = sort_by(&t, &[SortKey::asc("k")]).unwrap();
        assert_eq!(out.value(0, "ord").unwrap(), Value::Int(10));
        assert_eq!(out.value(2, "ord").unwrap(), Value::Int(30));
    }

    #[test]
    fn empty_keys_identity() {
        let out = sort_by(&t(), &[]).unwrap();
        assert_eq!(out, t());
    }

    #[test]
    fn top_n_largest() {
        let out = top_n(&t(), "v", 2).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "v").unwrap(), Value::Int(2));
    }

    #[test]
    fn unknown_column_errors() {
        assert!(sort_by(&t(), &[SortKey::asc("zz")]).is_err());
    }
}
