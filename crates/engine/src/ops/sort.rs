//! Multi-key stable sort.

use crate::error::Result;
use crate::table::Table;

/// One sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    pub column: String,
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            ascending: true,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            ascending: false,
        }
    }
}

/// Stable sort by the given keys. Nulls sort first on ascending keys and
/// last on descending ones (a consequence of the total order on values).
pub fn sort_by(table: &Table, keys: &[SortKey]) -> Result<Table> {
    if keys.is_empty() {
        return Ok(table.clone());
    }
    let cols: Vec<_> = keys
        .iter()
        .map(|k| table.column(&k.column))
        .collect::<Result<Vec<_>>>()?;
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for (key, col) in keys.iter().zip(&cols) {
            let ord = col.get(a).cmp_total(&col.get(b));
            let ord = if key.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(table.take(&indices))
}

/// The `n` rows with the largest values of `column` (ties broken by input
/// order), used by "top N" skills.
pub fn top_n(table: &Table, column: &str, n: usize) -> Result<Table> {
    let sorted = sort_by(table, &[SortKey::desc(column)])?;
    Ok(sorted.head(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Value;

    fn t() -> Table {
        Table::new(vec![
            ("g", Column::from_strs(vec!["b", "a", "b", "a"])),
            ("v", Column::from_opt_ints(vec![Some(2), None, Some(1), Some(3)])),
        ])
        .unwrap()
    }

    #[test]
    fn single_key_ascending_nulls_first() {
        let out = sort_by(&t(), &[SortKey::asc("v")]).unwrap();
        assert_eq!(out.value(0, "v").unwrap(), Value::Null);
        assert_eq!(out.value(1, "v").unwrap(), Value::Int(1));
        assert_eq!(out.value(3, "v").unwrap(), Value::Int(3));
    }

    #[test]
    fn multi_key() {
        let out = sort_by(&t(), &[SortKey::asc("g"), SortKey::desc("v")]).unwrap();
        assert_eq!(out.value(0, "g").unwrap(), Value::Str("a".into()));
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "v").unwrap(), Value::Null); // desc: nulls last
        assert_eq!(out.value(2, "v").unwrap(), Value::Int(2));
    }

    #[test]
    fn stable_on_ties() {
        let t = Table::new(vec![
            ("k", Column::from_ints(vec![1, 1, 1])),
            ("ord", Column::from_ints(vec![10, 20, 30])),
        ])
        .unwrap();
        let out = sort_by(&t, &[SortKey::asc("k")]).unwrap();
        assert_eq!(out.value(0, "ord").unwrap(), Value::Int(10));
        assert_eq!(out.value(2, "ord").unwrap(), Value::Int(30));
    }

    #[test]
    fn empty_keys_identity() {
        let out = sort_by(&t(), &[]).unwrap();
        assert_eq!(out, t());
    }

    #[test]
    fn top_n_largest() {
        let out = top_n(&t(), "v", 2).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "v").unwrap(), Value::Int(2));
    }

    #[test]
    fn unknown_column_errors() {
        assert!(sort_by(&t(), &[SortKey::asc("zz")]).is_err());
    }
}
