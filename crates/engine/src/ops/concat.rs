//! Dataset concatenation (the GEL `Concatenate the datasets ...` skill).

use crate::error::Result;
use crate::table::Table;

use super::distinct::distinct;

/// Concatenate tables top-to-bottom. Schemas must agree in names and
/// order; int columns unify with float columns by widening. With
/// `remove_duplicates` (the recipe in Figure 2 says "remove all
/// duplicates"), exact duplicate rows are dropped, keeping first
/// occurrences.
pub fn concat(tables: &[&Table], remove_duplicates: bool) -> Result<Table> {
    let Some(first) = tables.first() else {
        return Ok(Table::empty());
    };
    let mut schema = first.schema().clone();
    for t in &tables[1..] {
        schema = schema.concat_compatible(t.schema())?;
    }
    let mut out = Table::empty_with_schema(&schema);
    let names: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
    for t in tables {
        // Cast each column to the unified type, then append.
        let mut cols = Vec::with_capacity(names.len());
        for name in &names {
            let field = schema.field(name).expect("unified schema has field");
            let col = t.column(name)?.cast(field.dtype)?;
            cols.push(col);
        }
        let mut part = Table::empty();
        for (name, col) in names.iter().zip(cols) {
            part.add_column(name, col)?;
        }
        out = append_rows(&out, &part)?;
    }
    if remove_duplicates {
        distinct(&out, &[])
    } else {
        Ok(out)
    }
}

fn append_rows(a: &Table, b: &Table) -> Result<Table> {
    let mut out = Table::empty();
    for (i, field) in a.schema().fields().iter().enumerate() {
        let mut col = a.column_at(i).clone();
        col.extend(b.column_at(i))?;
        out.add_column(&field.name, col)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dtype::DataType;
    use crate::value::Value;

    fn a() -> Table {
        Table::new(vec![
            ("x", Column::from_ints(vec![1, 2])),
            ("y", Column::from_strs(vec!["p", "q"])),
        ])
        .unwrap()
    }

    fn b() -> Table {
        Table::new(vec![
            ("x", Column::from_ints(vec![2, 3])),
            ("y", Column::from_strs(vec!["q", "r"])),
        ])
        .unwrap()
    }

    #[test]
    fn concat_stacks_rows() {
        let out = concat(&[&a(), &b()], false).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.value(2, "x").unwrap(), Value::Int(2));
    }

    #[test]
    fn concat_removes_duplicates() {
        // Figure 2 step 8: "Concatenate ... remove all duplicates".
        let out = concat(&[&a(), &b()], true).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn concat_widens_int_to_float() {
        let c = Table::new(vec![
            ("x", Column::from_floats(vec![4.5])),
            ("y", Column::from_strs(vec!["s"])),
        ])
        .unwrap();
        let out = concat(&[&a(), &c], false).unwrap();
        assert_eq!(out.column("x").unwrap().dtype(), DataType::Float);
        assert_eq!(out.value(0, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn concat_rejects_mismatched_schema() {
        let c = Table::new(vec![("z", Column::from_ints(vec![1]))]).unwrap();
        assert!(concat(&[&a(), &c], false).is_err());
    }

    #[test]
    fn concat_empty_list() {
        let out = concat(&[], false).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn concat_single_identity() {
        let out = concat(&[&a()], false).unwrap();
        assert_eq!(out, a());
    }
}
