//! Dataset concatenation (the GEL `Concatenate the datasets ...` skill).

use crate::error::Result;
use crate::table::Table;

use super::distinct::distinct;

/// Concatenate tables top-to-bottom. Schemas must agree in names and
/// order; int columns unify with float columns by widening. With
/// `remove_duplicates` (the recipe in Figure 2 says "remove all
/// duplicates"), exact duplicate rows are dropped, keeping first
/// occurrences.
pub fn concat(tables: &[&Table], remove_duplicates: bool) -> Result<Table> {
    let Some(first) = tables.first() else {
        return Ok(Table::empty());
    };
    let mut schema = first.schema().clone();
    for t in &tables[1..] {
        schema = schema.concat_compatible(t.schema())?;
    }
    // One casted accumulator per column, extended in place across all
    // inputs — linear in total rows. (Rebuilding the accumulated table
    // per input would copy everything already gathered each time, i.e.
    // quadratic in the number of parts; block scans concatenate hundreds
    // of parts, where that collapse matters.)
    let names: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
    let mut out = Table::empty();
    for name in &names {
        let field = schema.field(name).expect("unified schema has field");
        let mut acc = first.column(name)?.cast(field.dtype)?;
        for t in &tables[1..] {
            acc.extend(&t.column(name)?.cast(field.dtype)?)?;
        }
        out.add_column(name, acc)?;
    }
    if remove_duplicates {
        distinct(&out, &[])
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dtype::DataType;
    use crate::value::Value;

    fn a() -> Table {
        Table::new(vec![
            ("x", Column::from_ints(vec![1, 2])),
            ("y", Column::from_strs(vec!["p", "q"])),
        ])
        .unwrap()
    }

    fn b() -> Table {
        Table::new(vec![
            ("x", Column::from_ints(vec![2, 3])),
            ("y", Column::from_strs(vec!["q", "r"])),
        ])
        .unwrap()
    }

    #[test]
    fn concat_stacks_rows() {
        let out = concat(&[&a(), &b()], false).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.value(2, "x").unwrap(), Value::Int(2));
    }

    #[test]
    fn concat_removes_duplicates() {
        // Figure 2 step 8: "Concatenate ... remove all duplicates".
        let out = concat(&[&a(), &b()], true).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn concat_widens_int_to_float() {
        let c = Table::new(vec![
            ("x", Column::from_floats(vec![4.5])),
            ("y", Column::from_strs(vec!["s"])),
        ])
        .unwrap();
        let out = concat(&[&a(), &c], false).unwrap();
        assert_eq!(out.column("x").unwrap().dtype(), DataType::Float);
        assert_eq!(out.value(0, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn concat_rejects_mismatched_schema() {
        let c = Table::new(vec![("z", Column::from_ints(vec![1]))]).unwrap();
        assert!(concat(&[&a(), &c], false).is_err());
    }

    #[test]
    fn concat_empty_list() {
        let out = concat(&[], false).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn concat_single_identity() {
        let out = concat(&[&a()], false).unwrap();
        assert_eq!(out, a());
    }
}
