//! Typed columnar storage.

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::dtype::DataType;
use crate::error::{EngineError, Result};
use crate::hash::FxHashMap;
use crate::value::Value;

/// Borrowed view of a dictionary-encoded column: per-row codes, the
/// shared sorted dictionary, and the validity bitmap.
pub type DictParts<'a> = (&'a [u32], &'a Arc<Vec<String>>, &'a Bitmap);

/// A column of values, stored as a dense typed vector plus a validity
/// bitmap. Slots whose validity bit is clear hold an arbitrary placeholder
/// and must not be read.
///
/// String data has two physical encodings with identical logical
/// semantics: `Str` stores one heap `String` per row, while `Dict`
/// stores a `u32` code per row into an `Arc`-shared, sorted, duplicate-free
/// dictionary. Because the dictionary is sorted, code order equals
/// lexicographic order, which lets sort/compare kernels work on the codes
/// alone. Both encodings report [`DataType::Str`], so schemas and every
/// dtype-driven code path are unaffected by which encoding a column uses.
#[derive(Debug, Clone)]
pub enum Column {
    Bool(Vec<bool>, Bitmap),
    Int(Vec<i64>, Bitmap),
    Float(Vec<f64>, Bitmap),
    Str(Vec<String>, Bitmap),
    /// Dictionary-encoded strings: per-row codes into a sorted-unique,
    /// `Arc`-shared dictionary. Invalid rows hold code 0 as a placeholder
    /// (never read; an all-null column may carry an empty dictionary).
    Dict(Vec<u32>, Arc<Vec<String>>, Bitmap),
    /// Days since 1970-01-01.
    Date(Vec<i32>, Bitmap),
}

impl Column {
    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Bool(..) => DataType::Bool,
            Column::Int(..) => DataType::Int,
            Column::Float(..) => DataType::Float,
            Column::Str(..) | Column::Dict(..) => DataType::Str,
            Column::Date(..) => DataType::Date,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v, _) => v.len(),
            Column::Int(v, _) => v.len(),
            Column::Float(v, _) => v.len(),
            Column::Str(v, _) => v.len(),
            Column::Dict(codes, _, _) => codes.len(),
            Column::Date(v, _) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Bool(_, b)
            | Column::Int(_, b)
            | Column::Float(_, b)
            | Column::Str(_, b)
            | Column::Date(_, b) => b,
            Column::Dict(_, _, b) => b,
        }
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.validity().count_null()
    }

    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Column {
        match dtype {
            DataType::Bool => Column::Bool(Vec::new(), Bitmap::new_null(0)),
            DataType::Int => Column::Int(Vec::new(), Bitmap::new_null(0)),
            DataType::Float => Column::Float(Vec::new(), Bitmap::new_null(0)),
            DataType::Str => Column::Str(Vec::new(), Bitmap::new_null(0)),
            DataType::Date => Column::Date(Vec::new(), Bitmap::new_null(0)),
        }
    }

    /// A column of `len` nulls of the given type.
    pub fn nulls(dtype: DataType, len: usize) -> Column {
        let b = Bitmap::new_null(len);
        match dtype {
            DataType::Bool => Column::Bool(vec![false; len], b),
            DataType::Int => Column::Int(vec![0; len], b),
            DataType::Float => Column::Float(vec![0.0; len], b),
            DataType::Str => Column::Str(vec![String::new(); len], b),
            DataType::Date => Column::Date(vec![0; len], b),
        }
    }

    /// Build an all-valid int column.
    pub fn from_ints(vals: Vec<i64>) -> Column {
        let b = Bitmap::new_valid(vals.len());
        Column::Int(vals, b)
    }

    /// Build an int column with optional values.
    pub fn from_opt_ints(vals: Vec<Option<i64>>) -> Column {
        let mut data = Vec::with_capacity(vals.len());
        let mut valid = Bitmap::new_null(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                Some(x) => {
                    data.push(x);
                    valid.set(i, true);
                }
                None => data.push(0),
            }
        }
        Column::Int(data, valid)
    }

    /// Build an all-valid float column.
    pub fn from_floats(vals: Vec<f64>) -> Column {
        let b = Bitmap::new_valid(vals.len());
        Column::Float(vals, b)
    }

    /// Build a float column with optional values.
    pub fn from_opt_floats(vals: Vec<Option<f64>>) -> Column {
        let mut data = Vec::with_capacity(vals.len());
        let mut valid = Bitmap::new_null(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                Some(x) => {
                    data.push(x);
                    valid.set(i, true);
                }
                None => data.push(0.0),
            }
        }
        Column::Float(data, valid)
    }

    /// Build an all-valid string column.
    pub fn from_strs<S: Into<String>>(vals: Vec<S>) -> Column {
        let data: Vec<String> = vals.into_iter().map(Into::into).collect();
        let b = Bitmap::new_valid(data.len());
        Column::Str(data, b)
    }

    /// Build a string column with optional values.
    pub fn from_opt_strs(vals: Vec<Option<String>>) -> Column {
        let mut data = Vec::with_capacity(vals.len());
        let mut valid = Bitmap::new_null(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                Some(x) => {
                    data.push(x);
                    valid.set(i, true);
                }
                None => data.push(String::new()),
            }
        }
        Column::Str(data, valid)
    }

    /// Build an all-valid bool column.
    pub fn from_bools(vals: Vec<bool>) -> Column {
        let b = Bitmap::new_valid(vals.len());
        Column::Bool(vals, b)
    }

    /// Build an all-valid date column (days since epoch).
    pub fn from_dates(vals: Vec<i32>) -> Column {
        let b = Bitmap::new_valid(vals.len());
        Column::Date(vals, b)
    }

    /// Build a date column with optional values.
    pub fn from_opt_dates(vals: Vec<Option<i32>>) -> Column {
        let mut data = Vec::with_capacity(vals.len());
        let mut valid = Bitmap::new_null(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                Some(x) => {
                    data.push(x);
                    valid.set(i, true);
                }
                None => data.push(0),
            }
        }
        Column::Date(data, valid)
    }

    /// Build a column from scalar [`Value`]s, inferring the type. All
    /// non-null values must share a type (ints widen to float when mixed
    /// with floats). An all-null input produces a `Str` column of nulls.
    pub fn from_values(vals: &[Value]) -> Result<Column> {
        // Infer the unified type.
        let mut dtype: Option<DataType> = None;
        for v in vals {
            if let Some(t) = v.dtype() {
                dtype = Some(match dtype {
                    None => t,
                    Some(cur) => cur.unify(t).ok_or_else(|| {
                        EngineError::schema_mismatch(format!(
                            "mixed value types in column: {cur} vs {t}"
                        ))
                    })?,
                });
            }
        }
        let dtype = dtype.unwrap_or(DataType::Str);
        let mut col = Column::empty(dtype);
        for v in vals {
            col.push_value(v)?;
        }
        Ok(col)
    }

    /// Read row `i` as a scalar [`Value`] (null if the validity bit is
    /// clear). Intended for display and boundary layers, not kernels.
    pub fn get(&self, i: usize) -> Value {
        if !self.validity().get(i) {
            return Value::Null;
        }
        match self {
            Column::Bool(v, _) => Value::Bool(v[i]),
            Column::Int(v, _) => Value::Int(v[i]),
            Column::Float(v, _) => Value::Float(v[i]),
            Column::Str(v, _) => Value::Str(v[i].clone()),
            Column::Dict(codes, dict, _) => Value::Str(dict[codes[i] as usize].clone()),
            Column::Date(v, _) => Value::Date(v[i]),
        }
    }

    /// Append a scalar, which must be null or match the column type
    /// (ints are accepted into float columns).
    pub fn push_value(&mut self, v: &Value) -> Result<()> {
        if matches!(self, Column::Dict(..)) {
            return self.push_value_dict(v);
        }
        match (self, v) {
            (Column::Bool(data, valid), Value::Bool(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (Column::Int(data, valid), Value::Int(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (Column::Float(data, valid), Value::Float(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (Column::Float(data, valid), Value::Int(x)) => {
                data.push(*x as f64);
                valid.push(true);
            }
            (Column::Str(data, valid), Value::Str(x)) => {
                data.push(x.clone());
                valid.push(true);
            }
            (Column::Date(data, valid), Value::Date(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (col, Value::Null) => match col {
                Column::Bool(data, valid) => {
                    data.push(false);
                    valid.push(false);
                }
                Column::Int(data, valid) => {
                    data.push(0);
                    valid.push(false);
                }
                Column::Float(data, valid) => {
                    data.push(0.0);
                    valid.push(false);
                }
                Column::Str(data, valid) => {
                    data.push(String::new());
                    valid.push(false);
                }
                Column::Dict(..) => unreachable!("dict handled above"),
                Column::Date(data, valid) => {
                    data.push(0);
                    valid.push(false);
                }
            },
            (col, v) => {
                return Err(EngineError::TypeMismatch {
                    expected: col.dtype(),
                    actual: v.dtype().unwrap_or(DataType::Str),
                    context: "push_value".into(),
                })
            }
        }
        Ok(())
    }

    /// `push_value` for the dictionary encoding. A string already in the
    /// dictionary appends its code; a new string falls back to the plain
    /// encoding (dictionaries are immutable once shared, so growing one
    /// in place would silently mutate every column holding the `Arc`).
    fn push_value_dict(&mut self, v: &Value) -> Result<()> {
        enum Act {
            Null,
            Code(u32),
            Grow,
        }
        let act = match (v, &*self) {
            (Value::Null, _) => Act::Null,
            (Value::Str(x), Column::Dict(_, dict, _)) => {
                match dict.binary_search_by(|d| d.as_str().cmp(x.as_str())) {
                    Ok(c) => Act::Code(c as u32),
                    Err(_) => Act::Grow,
                }
            }
            (other, col) => {
                return Err(EngineError::TypeMismatch {
                    expected: col.dtype(),
                    actual: other.dtype().unwrap_or(DataType::Str),
                    context: "push_value".into(),
                })
            }
        };
        match (act, &mut *self) {
            (Act::Null, Column::Dict(codes, _, valid)) => {
                codes.push(0);
                valid.push(false);
            }
            (Act::Code(c), Column::Dict(codes, _, valid)) => {
                codes.push(c);
                valid.push(true);
            }
            (Act::Grow, _) => {
                let mut plain = self.materialize();
                plain.push_value(v)?;
                *self = plain;
            }
            _ => unreachable!("self is a dict column"),
        }
        Ok(())
    }

    /// Gather rows at `indices` into a new column. Indices may repeat and
    /// appear in any order (used by sort, join and sampling).
    ///
    /// Dictionary columns gather `u32` codes and share the dictionary
    /// `Arc` — no string is cloned. Plain string gathers clone only the
    /// valid slots (placeholders are freshly empty strings).
    pub fn take(&self, indices: &[usize]) -> Column {
        let valid = self.validity().take(indices);
        match self {
            Column::Bool(v, _) => Column::Bool(indices.iter().map(|&i| v[i]).collect(), valid),
            Column::Int(v, _) => Column::Int(indices.iter().map(|&i| v[i]).collect(), valid),
            Column::Float(v, _) => Column::Float(indices.iter().map(|&i| v[i]).collect(), valid),
            Column::Str(v, b) => {
                let mut data: Vec<String> = Vec::with_capacity(indices.len());
                for &i in indices {
                    if b.get(i) {
                        data.push(v[i].clone());
                    } else {
                        data.push(String::new());
                    }
                }
                Column::Str(data, valid)
            }
            Column::Dict(codes, dict, _) => Column::Dict(
                indices.iter().map(|&i| codes[i]).collect(),
                Arc::clone(dict),
                valid,
            ),
            Column::Date(v, _) => Column::Date(indices.iter().map(|&i| v[i]).collect(), valid),
        }
    }

    /// Gather rows at `indices`, producing null for `None` entries. This is
    /// the outer-join materialization primitive: one gather per column
    /// instead of one `push_value` per cell.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        let n = indices.len();
        let mut valid = Bitmap::new_null(n);
        macro_rules! gather {
            ($v:ident, $b:ident, $variant:ident, $default:expr, $fetch:expr) => {{
                let mut data = Vec::with_capacity(n);
                for (out_row, ix) in indices.iter().enumerate() {
                    match ix {
                        Some(i) if $b.get(*i) => {
                            data.push($fetch(&$v[*i]));
                            valid.set(out_row, true);
                        }
                        _ => data.push($default),
                    }
                }
                Column::$variant(data, valid)
            }};
        }
        match self {
            Column::Bool(v, b) => gather!(v, b, Bool, false, |x: &bool| *x),
            Column::Int(v, b) => gather!(v, b, Int, 0, |x: &i64| *x),
            Column::Float(v, b) => gather!(v, b, Float, 0.0, |x: &f64| *x),
            Column::Str(v, b) => gather!(v, b, Str, String::new(), |x: &String| x.clone()),
            Column::Dict(codes, dict, b) => {
                let mut data = Vec::with_capacity(n);
                for (out_row, ix) in indices.iter().enumerate() {
                    match ix {
                        Some(i) if b.get(*i) => {
                            data.push(codes[*i]);
                            valid.set(out_row, true);
                        }
                        _ => data.push(0),
                    }
                }
                Column::Dict(data, Arc::clone(dict), valid)
            }
            Column::Date(v, b) => gather!(v, b, Date, 0, |x: &i32| *x),
        }
    }

    /// Keep rows where `mask[i]` is true. `mask` must match the column
    /// length.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take(&indices)
    }

    /// A contiguous slice `[start, start+count)` as a new column.
    pub fn slice(&self, start: usize, count: usize) -> Column {
        let count = count.min(self.len().saturating_sub(start));
        let valid = self.validity().slice(start, count);
        match self {
            Column::Bool(v, _) => Column::Bool(v[start..start + count].to_vec(), valid),
            Column::Int(v, _) => Column::Int(v[start..start + count].to_vec(), valid),
            Column::Float(v, _) => Column::Float(v[start..start + count].to_vec(), valid),
            Column::Str(v, _) => Column::Str(v[start..start + count].to_vec(), valid),
            Column::Dict(codes, dict, _) => Column::Dict(
                codes[start..start + count].to_vec(),
                Arc::clone(dict),
                valid,
            ),
            Column::Date(v, _) => Column::Date(v[start..start + count].to_vec(), valid),
        }
    }

    /// Append all rows of another column of the same type.
    ///
    /// Appending to an empty column adopts the other column's physical
    /// encoding wholesale, so stitching morsel results or concatenating
    /// into a fresh table preserves dictionary encoding. Mixed-encoding
    /// appends merge/remap dictionaries or materialize as needed.
    pub fn extend(&mut self, other: &Column) -> Result<()> {
        if self.dtype() != other.dtype() {
            return Err(EngineError::TypeMismatch {
                expected: self.dtype(),
                actual: other.dtype(),
                context: "extend".into(),
            });
        }
        if self.is_empty() {
            *self = other.clone();
            return Ok(());
        }
        if other.is_empty() {
            return Ok(());
        }
        if matches!(self, Column::Dict(..)) || matches!(other, Column::Dict(..)) {
            return self.extend_str_encoded(other);
        }
        match (self, other) {
            (Column::Bool(a, va), Column::Bool(b, vb)) => {
                a.extend_from_slice(b);
                va.extend(vb);
            }
            (Column::Int(a, va), Column::Int(b, vb)) => {
                a.extend_from_slice(b);
                va.extend(vb);
            }
            (Column::Float(a, va), Column::Float(b, vb)) => {
                a.extend_from_slice(b);
                va.extend(vb);
            }
            (Column::Str(a, va), Column::Str(b, vb)) => {
                a.extend_from_slice(b);
                va.extend(vb);
            }
            (Column::Date(a, va), Column::Date(b, vb)) => {
                a.extend_from_slice(b);
                va.extend(vb);
            }
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// `extend` when at least one side is dictionary-encoded.
    fn extend_str_encoded(&mut self, other: &Column) -> Result<()> {
        match (&mut *self, other) {
            (Column::Dict(codes, dict, valid), Column::Dict(oc, od, ov)) => {
                if Arc::ptr_eq(dict, od) {
                    codes.extend_from_slice(oc);
                } else {
                    let (merged, map_a, map_b) = merge_dicts(dict, od);
                    for c in codes.iter_mut() {
                        *c = map_a.get(*c as usize).copied().unwrap_or(0);
                    }
                    codes.extend(
                        oc.iter()
                            .map(|&c| map_b.get(c as usize).copied().unwrap_or(0)),
                    );
                    *dict = Arc::new(merged);
                }
                valid.extend(ov);
                Ok(())
            }
            (Column::Dict(..), Column::Str(..)) => {
                let enc = other.dict_encode();
                self.extend_str_encoded(&enc)
            }
            (Column::Str(a, va), Column::Dict(oc, od, ov)) => {
                a.reserve(oc.len());
                for (i, &c) in oc.iter().enumerate() {
                    if ov.get(i) {
                        a.push(od[c as usize].clone());
                    } else {
                        a.push(String::new());
                    }
                }
                va.extend(ov);
                Ok(())
            }
            _ => unreachable!("at least one side is a dict column"),
        }
    }

    /// Cast to another type. Supported casts: numeric widening/narrowing,
    /// anything → Str (rendering), Str → numeric/date (parsing; failures
    /// become null), Date ↔ Int (days since epoch), Int/Float → Bool
    /// (nonzero).
    pub fn cast(&self, to: DataType) -> Result<Column> {
        if self.dtype() == to {
            return Ok(self.clone());
        }
        if let Column::Dict(codes, dict, b) = self {
            // Cast each distinct string once, then fan out by code.
            let casted: Vec<Value> = dict
                .iter()
                .map(|s| cast_value(&Value::Str(s.clone()), to))
                .collect();
            let mut out = Column::empty(to);
            for (i, &c) in codes.iter().enumerate() {
                if b.get(i) {
                    out.push_value(&casted[c as usize])?;
                } else {
                    out.push_value(&Value::Null)?;
                }
            }
            return Ok(out);
        }
        let n = self.len();
        let mut out = Column::empty(to);
        for i in 0..n {
            let v = self.get(i);
            let cast = cast_value(&v, to);
            out.push_value(&cast)?;
        }
        Ok(out)
    }

    /// Iterate rows as scalar values (boundary-layer convenience).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// View float data (valid for Float columns).
    pub fn as_floats(&self) -> Option<(&[f64], &Bitmap)> {
        match self {
            Column::Float(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// View int data (valid for Int columns).
    pub fn as_ints(&self) -> Option<(&[i64], &Bitmap)> {
        match self {
            Column::Int(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// View string data (valid for plain `Str` columns only; `None` for
    /// the dictionary encoding — use [`Column::str_at`] or
    /// [`Column::as_dict`] for encoding-agnostic access).
    pub fn as_strs(&self) -> Option<(&[String], &Bitmap)> {
        match self {
            Column::Str(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// View dictionary data (valid for Dict columns).
    pub fn as_dict(&self) -> Option<DictParts<'_>> {
        match self {
            Column::Dict(codes, dict, b) => Some((codes, dict, b)),
            _ => None,
        }
    }

    /// View bool data (valid for Bool columns).
    pub fn as_bools(&self) -> Option<(&[bool], &Bitmap)> {
        match self {
            Column::Bool(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// View date data (valid for Date columns).
    pub fn as_dates(&self) -> Option<(&[i32], &Bitmap)> {
        match self {
            Column::Date(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// The string at row `i` under either encoding, `None` for null rows
    /// and non-string columns. This is the encoding-agnostic accessor
    /// string kernels use instead of `as_strs`.
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<&str> {
        if !self.validity().get(i) {
            return None;
        }
        match self {
            Column::Str(v, _) => Some(v[i].as_str()),
            Column::Dict(codes, dict, _) => Some(dict[codes[i] as usize].as_str()),
            _ => None,
        }
    }

    /// Dictionary-encode a plain string column: the dictionary is the
    /// sorted set of distinct valid strings, so code order equals
    /// lexicographic order. Non-string (and already-encoded) columns are
    /// returned unchanged.
    pub fn dict_encode(&self) -> Column {
        let Column::Str(v, b) = self else {
            return self.clone();
        };
        let mut uniq: Vec<&str> = Vec::with_capacity(v.len());
        for (i, s) in v.iter().enumerate() {
            if b.get(i) {
                uniq.push(s.as_str());
            }
        }
        uniq.sort_unstable();
        uniq.dedup();
        let mut code_of: FxHashMap<&str, u32> = FxHashMap::default();
        for (c, s) in uniq.iter().enumerate() {
            code_of.insert(s, c as u32);
        }
        let codes: Vec<u32> = v
            .iter()
            .enumerate()
            .map(|(i, s)| if b.get(i) { code_of[s.as_str()] } else { 0 })
            .collect();
        let dict: Vec<String> = uniq.into_iter().map(|s| s.to_string()).collect();
        Column::Dict(codes, Arc::new(dict), b.clone())
    }

    /// Late materialization: decode a dictionary column back to plain
    /// strings. Other columns are returned unchanged. This is the
    /// transparent fallback for kernels that are not dict-aware.
    pub fn materialize(&self) -> Column {
        let Column::Dict(codes, dict, b) = self else {
            return self.clone();
        };
        let mut data = Vec::with_capacity(codes.len());
        for (i, &c) in codes.iter().enumerate() {
            if b.get(i) {
                data.push(dict[c as usize].clone());
            } else {
                data.push(String::new());
            }
        }
        Column::Str(data, b.clone())
    }

    /// Heap bytes held by the dictionary itself (0 for other encodings).
    /// The storage layer uses this to charge a shared dictionary once per
    /// scan instead of once per block.
    pub fn dict_heap_bytes(&self) -> usize {
        match self {
            Column::Dict(_, dict, _) => dict.iter().map(|s| s.len() + 24).sum(),
            _ => 0,
        }
    }

    /// Numeric view of row `i`: ints widen to f64. `None` for null or
    /// non-numeric.
    #[inline]
    pub fn numeric_at(&self, i: usize) -> Option<f64> {
        if !self.validity().get(i) {
            return None;
        }
        match self {
            Column::Int(v, _) => Some(v[i] as f64),
            Column::Float(v, _) => Some(v[i]),
            Column::Date(v, _) => Some(v[i] as f64),
            _ => None,
        }
    }

    /// Approximate heap size in bytes (used by the storage layer's
    /// scan-cost meter).
    pub fn byte_size(&self) -> usize {
        let validity_bytes = self.len().div_ceil(8);
        validity_bytes
            + match self {
                Column::Bool(v, _) => v.len(),
                Column::Int(v, _) => v.len() * 8,
                Column::Float(v, _) => v.len() * 8,
                Column::Date(v, _) => v.len() * 4,
                Column::Str(v, _) => v.iter().map(|s| s.len() + 24).sum(),
                Column::Dict(codes, _, _) => codes.len() * 4 + self.dict_heap_bytes(),
            }
    }
}

/// Equality is *logical*: two columns are equal when they have the same
/// dtype, length, validity, and valid-slot values — regardless of string
/// encoding. Same-variant comparisons take fast slice paths (placeholder
/// slots are canonical, and float placeholders are 0.0, so comparing the
/// raw data preserves NaN != NaN like the old derived impl did).
impl PartialEq for Column {
    fn eq(&self, other: &Column) -> bool {
        match (self, other) {
            (Column::Bool(a, va), Column::Bool(b, vb)) => a == b && va == vb,
            (Column::Int(a, va), Column::Int(b, vb)) => a == b && va == vb,
            (Column::Float(a, va), Column::Float(b, vb)) => a == b && va == vb,
            (Column::Date(a, va), Column::Date(b, vb)) => a == b && va == vb,
            (Column::Str(a, va), Column::Str(b, vb)) => a == b && va == vb,
            (a, b)
                if matches!(a, Column::Str(..) | Column::Dict(..))
                    && matches!(b, Column::Str(..) | Column::Dict(..)) =>
            {
                if a.len() != b.len() || a.validity() != b.validity() {
                    return false;
                }
                if let (Some((ca, da, _)), Some((cb, db, _))) = (a.as_dict(), b.as_dict()) {
                    if Arc::ptr_eq(da, db) && ca == cb {
                        return true;
                    }
                }
                (0..a.len()).all(|i| a.str_at(i) == b.str_at(i))
            }
            _ => false,
        }
    }
}

/// Merge two sorted-unique dictionaries into one, returning the merged
/// dictionary and the old-code → new-code remap for each input.
pub(crate) fn merge_dicts(a: &[String], b: &[String]) -> (Vec<String>, Vec<u32>, Vec<u32>) {
    use std::cmp::Ordering;
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let mut map_a = Vec::with_capacity(a.len());
    let mut map_b = Vec::with_capacity(b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let ord = if i == a.len() {
            Ordering::Greater
        } else if j == b.len() {
            Ordering::Less
        } else {
            a[i].cmp(&b[j])
        };
        let code = merged.len() as u32;
        match ord {
            Ordering::Less => {
                merged.push(a[i].clone());
                map_a.push(code);
                i += 1;
            }
            Ordering::Greater => {
                merged.push(b[j].clone());
                map_b.push(code);
                j += 1;
            }
            Ordering::Equal => {
                merged.push(a[i].clone());
                map_a.push(code);
                map_b.push(code);
                i += 1;
                j += 1;
            }
        }
    }
    (merged, map_a, map_b)
}

/// Cast a scalar to a target type under the column cast rules. Failures
/// yield null rather than errors so bulk casts are total.
pub fn cast_value(v: &Value, to: DataType) -> Value {
    use DataType as T;
    match (v, to) {
        (Value::Null, _) => Value::Null,
        (v, T::Str) => Value::Str(v.render()),
        (Value::Int(x), T::Float) => Value::Float(*x as f64),
        (Value::Float(x), T::Int) => {
            if x.is_finite() {
                Value::Int(*x as i64)
            } else {
                Value::Null
            }
        }
        (Value::Int(x), T::Bool) => Value::Bool(*x != 0),
        (Value::Float(x), T::Bool) => Value::Bool(*x != 0.0),
        (Value::Bool(x), T::Int) => Value::Int(*x as i64),
        (Value::Bool(x), T::Float) => Value::Float(*x as i64 as f64),
        (Value::Date(x), T::Int) => Value::Int(*x as i64),
        (Value::Date(x), T::Float) => Value::Float(*x as f64),
        (Value::Int(x), T::Date) => i32::try_from(*x).map(Value::Date).unwrap_or(Value::Null),
        (Value::Str(s), T::Int) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Null),
        (Value::Str(s), T::Float) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or(Value::Null),
        (Value::Str(s), T::Bool) => match s.trim().to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" => Value::Bool(true),
            "false" | "0" | "no" => Value::Bool(false),
            _ => Value::Null,
        },
        (Value::Str(s), T::Date) => crate::date::parse_date(s)
            .map(Value::Date)
            .unwrap_or(Value::Null),
        (v, t) if v.dtype() == Some(t) => v.clone(),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_opt_ints_nulls() {
        let c = Column::from_opt_ints(vec![Some(1), None, Some(3)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
    }

    #[test]
    fn from_values_infers_type() {
        let c = Column::from_values(&[Value::Null, Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn from_values_widens_int_to_float() {
        let c = Column::from_values(&[Value::Int(1), Value::Float(2.5)]).unwrap();
        assert_eq!(c.dtype(), DataType::Float);
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn from_values_rejects_mixed() {
        assert!(Column::from_values(&[Value::Int(1), Value::Str("a".into())]).is_err());
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_strs(vec!["a", "b", "c"]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Value::Str("c".into()));
        assert_eq!(t.get(1), Value::Str("a".into()));
        assert_eq!(t.get(2), Value::Str("a".into()));
    }

    #[test]
    fn filter_mask() {
        let c = Column::from_ints(vec![10, 20, 30, 40]);
        let f = c.filter(&[true, false, false, true]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(1), Value::Int(40));
    }

    #[test]
    fn slice_clamps() {
        let c = Column::from_ints(vec![1, 2, 3]);
        let s = c.slice(2, 10);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Value::Int(3));
    }

    #[test]
    fn extend_same_type() {
        let mut a = Column::from_ints(vec![1]);
        let b = Column::from_opt_ints(vec![None, Some(2)]);
        a.extend(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.null_count(), 1);
    }

    #[test]
    fn extend_type_mismatch() {
        let mut a = Column::from_ints(vec![1]);
        let b = Column::from_strs(vec!["x"]);
        assert!(a.extend(&b).is_err());
    }

    #[test]
    fn cast_str_to_int_with_failures() {
        let c = Column::from_strs(vec!["1", "x", " 3 "]);
        let out = c.cast(DataType::Int).unwrap();
        assert_eq!(out.get(0), Value::Int(1));
        assert_eq!(out.get(1), Value::Null);
        assert_eq!(out.get(2), Value::Int(3));
    }

    #[test]
    fn cast_date_roundtrip_via_int() {
        let c = Column::from_dates(vec![0, 100]);
        let ints = c.cast(DataType::Int).unwrap();
        let back = ints.cast(DataType::Date).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn cast_anything_to_str_renders() {
        let c = Column::from_opt_floats(vec![Some(2.0), None]);
        let s = c.cast(DataType::Str).unwrap();
        assert_eq!(s.get(0), Value::Str("2.0".into()));
        assert_eq!(s.get(1), Value::Null);
    }

    #[test]
    fn numeric_at_widens() {
        let c = Column::from_ints(vec![7]);
        assert_eq!(c.numeric_at(0), Some(7.0));
        let c = Column::from_opt_floats(vec![None]);
        assert_eq!(c.numeric_at(0), None);
    }

    #[test]
    fn push_value_int_into_float() {
        let mut c = Column::empty(DataType::Float);
        c.push_value(&Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Value::Float(3.0));
    }

    #[test]
    fn byte_size_scales() {
        let small = Column::from_ints(vec![1; 10]);
        let big = Column::from_ints(vec![1; 1000]);
        assert!(big.byte_size() > small.byte_size() * 50);
    }

    fn sample_strs() -> Column {
        Column::from_opt_strs(vec![
            Some("west".into()),
            None,
            Some("east".into()),
            Some("west".into()),
            Some("".into()),
        ])
    }

    #[test]
    fn dict_roundtrip_is_logical_identity() {
        let plain = sample_strs();
        let dict = plain.dict_encode();
        assert_eq!(dict.dtype(), DataType::Str);
        let (codes, d, _) = dict.as_dict().unwrap();
        // Sorted-unique dictionary: "" < "east" < "west".
        assert_eq!(d.as_slice(), &["", "east", "west"]);
        assert_eq!(codes, &[2, 0, 1, 2, 0]);
        assert_eq!(dict.materialize(), plain);
        // Logical equality holds across encodings, both directions.
        assert_eq!(dict, plain);
        assert_eq!(plain, dict);
    }

    #[test]
    fn dict_encode_all_null_has_empty_dictionary() {
        let plain = Column::from_opt_strs(vec![None, None]);
        let dict = plain.dict_encode();
        let (_, d, _) = dict.as_dict().unwrap();
        assert!(d.is_empty());
        assert_eq!(dict.get(0), Value::Null);
        assert_eq!(dict.materialize(), plain);
    }

    #[test]
    fn dict_take_shares_dictionary() {
        let dict = sample_strs().dict_encode();
        let taken = dict.take(&[4, 1, 0]);
        let (_, d0, _) = dict.as_dict().unwrap();
        let (_, d1, _) = taken.as_dict().unwrap();
        assert!(Arc::ptr_eq(d0, d1));
        assert_eq!(taken.get(0), Value::Str("".into()));
        assert_eq!(taken.get(1), Value::Null);
        assert_eq!(taken.get(2), Value::Str("west".into()));
    }

    #[test]
    fn dict_take_opt_and_slice_share_dictionary() {
        let dict = sample_strs().dict_encode();
        let (_, d0, _) = dict.as_dict().unwrap();
        let opt = dict.take_opt(&[Some(0), None, Some(2)]);
        let (_, d1, _) = opt.as_dict().unwrap();
        assert!(Arc::ptr_eq(d0, d1));
        assert_eq!(opt.get(1), Value::Null);
        let sl = dict.slice(1, 3);
        let (_, d2, _) = sl.as_dict().unwrap();
        assert!(Arc::ptr_eq(d0, d2));
        assert_eq!(sl.materialize(), sample_strs().slice(1, 3));
    }

    #[test]
    fn dict_push_known_string_keeps_encoding() {
        let mut dict = sample_strs().dict_encode();
        dict.push_value(&Value::Str("east".into())).unwrap();
        dict.push_value(&Value::Null).unwrap();
        assert!(dict.as_dict().is_some());
        assert_eq!(dict.get(5), Value::Str("east".into()));
        assert_eq!(dict.get(6), Value::Null);
    }

    #[test]
    fn dict_push_unknown_string_falls_back_to_plain() {
        let mut dict = sample_strs().dict_encode();
        dict.push_value(&Value::Str("north".into())).unwrap();
        assert!(dict.as_strs().is_some());
        assert_eq!(dict.get(5), Value::Str("north".into()));
        // The earlier rows survive materialization.
        assert_eq!(dict.get(0), Value::Str("west".into()));
        assert_eq!(dict.get(1), Value::Null);
    }

    #[test]
    fn dict_push_wrong_type_errors() {
        let mut dict = sample_strs().dict_encode();
        assert!(dict.push_value(&Value::Int(3)).is_err());
    }

    #[test]
    fn dict_extend_merges_dictionaries() {
        let mut a = Column::from_strs(vec!["b", "a"]).dict_encode();
        let b = Column::from_opt_strs(vec![Some("c".into()), None, Some("a".into())]).dict_encode();
        a.extend(&b).unwrap();
        let (codes, d, _) = a.as_dict().unwrap();
        assert_eq!(d.as_slice(), &["a", "b", "c"]);
        assert_eq!(codes[..2], [1, 0]);
        assert_eq!(a.get(2), Value::Str("c".into()));
        assert_eq!(a.get(3), Value::Null);
        assert_eq!(a.get(4), Value::Str("a".into()));
    }

    #[test]
    fn dict_extend_mixed_encodings() {
        // Dict += Str encodes the right side and merges.
        let mut a = Column::from_strs(vec!["x"]).dict_encode();
        a.extend(&Column::from_strs(vec!["y"])).unwrap();
        assert!(a.as_dict().is_some());
        assert_eq!(a.get(1), Value::Str("y".into()));
        // Str += Dict decodes the right side.
        let mut p = Column::from_strs(vec!["x"]);
        p.extend(&Column::from_strs(vec!["y"]).dict_encode())
            .unwrap();
        assert!(p.as_strs().is_some());
        assert_eq!(p.get(1), Value::Str("y".into()));
        // Empty += Dict adopts the encoding.
        let mut e = Column::empty(DataType::Str);
        e.extend(&Column::from_strs(vec!["z"]).dict_encode())
            .unwrap();
        assert!(e.as_dict().is_some());
    }

    #[test]
    fn dict_cast_casts_each_distinct_once() {
        let c = Column::from_opt_strs(vec![Some("1".into()), Some("x".into()), None]).dict_encode();
        let out = c.cast(DataType::Int).unwrap();
        assert_eq!(out.get(0), Value::Int(1));
        assert_eq!(out.get(1), Value::Null);
        assert_eq!(out.get(2), Value::Null);
        // Same-dtype cast keeps the encoding.
        assert!(c.cast(DataType::Str).unwrap().as_dict().is_some());
    }

    #[test]
    fn dict_byte_size_beats_plain_for_repeated_strings() {
        let plain = Column::from_strs(vec!["a-reasonably-long-category"; 1000]);
        let dict = plain.dict_encode();
        assert!(dict.byte_size() * 5 < plain.byte_size());
        assert!(dict.dict_heap_bytes() > 0);
        assert_eq!(plain.dict_heap_bytes(), 0);
    }

    #[test]
    fn str_at_is_encoding_agnostic() {
        let plain = sample_strs();
        let dict = plain.dict_encode();
        for i in 0..plain.len() {
            assert_eq!(plain.str_at(i), dict.str_at(i));
        }
        assert_eq!(Column::from_ints(vec![1]).str_at(0), None);
    }
}
