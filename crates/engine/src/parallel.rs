//! Morsel-driven parallel execution.
//!
//! Large kernel inputs are split into contiguous row *morsels* which are
//! processed by a scoped worker pool (one worker per available core) and
//! re-assembled in morsel order, so every parallel kernel produces exactly
//! the same table as its serial counterpart. Inputs below
//! [`min_parallel_rows`] rows stay on the serial path: for small tables the
//! cost of spawning and stitching dwarfs the work itself.
//!
//! With `--no-default-features` (the `parallel` feature off) [`enabled`]
//! is always `false` and every kernel runs its serial body; the morsel
//! machinery still compiles so the two builds cannot drift apart.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Upper bound on rows per morsel. Sized so a handful of columns of one
/// morsel fit comfortably in L2.
pub const MORSEL_ROWS: usize = 64 * 1024;

/// Default dispatch threshold: inputs smaller than this stay serial.
pub const DEFAULT_MIN_PARALLEL_ROWS: usize = 32 * 1024;

static MIN_PARALLEL_ROWS: AtomicUsize = AtomicUsize::new(DEFAULT_MIN_PARALLEL_ROWS);

/// Current dispatch threshold in rows.
pub fn min_parallel_rows() -> usize {
    MIN_PARALLEL_ROWS.load(Ordering::Relaxed)
}

/// Override the dispatch threshold, returning the previous value.
///
/// Process-wide; intended for tests (force the morsel path on tiny inputs)
/// and benchmarks (pin a kernel to one path). Clamped to at least 1 so an
/// empty input never dispatches.
pub fn set_min_parallel_rows(rows: usize) -> usize {
    MIN_PARALLEL_ROWS.swap(rows.max(1), Ordering::Relaxed)
}

/// Whether a kernel over `rows` rows should take the morsel path.
pub fn enabled(rows: usize) -> bool {
    cfg!(feature = "parallel") && rows >= min_parallel_rows()
}

/// Number of workers used for morsel execution.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Split `rows` into contiguous morsel ranges.
///
/// Aims for several morsels per worker (for load balancing) without going
/// below a quarter of the dispatch threshold or above [`MORSEL_ROWS`].
pub fn morsels(rows: usize) -> Vec<Range<usize>> {
    if rows == 0 {
        return Vec::new();
    }
    let floor = (min_parallel_rows() / 4).max(1);
    let size = rows
        .div_ceil(num_threads() * 4)
        .clamp(floor.min(MORSEL_ROWS), MORSEL_ROWS);
    (0..rows)
        .step_by(size)
        .map(|start| start..(start + size).min(rows))
        .collect()
}

/// Run `f(i)` for `i in 0..n` on the worker pool, returning results in
/// index order. Falls back to a plain serial loop when a single worker (or
/// a single task) would not benefit from spawning.
pub fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = num_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Run `f` over each morsel range, returning per-morsel results in range
/// order.
pub fn run_morsels<R, F>(ranges: &[Range<usize>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    run_indexed(ranges.len(), |i| f(ranges[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_rows_exactly() {
        for rows in [0usize, 1, 10, MORSEL_ROWS - 1, MORSEL_ROWS, 1_000_000] {
            let ranges = morsels(rows);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, rows);
        }
    }

    #[test]
    fn run_indexed_preserves_order() {
        let out = run_indexed(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn threshold_override_roundtrip() {
        let prev = set_min_parallel_rows(4);
        assert_eq!(min_parallel_rows(), 4);
        assert!(morsels(100).len() > 1);
        set_min_parallel_rows(prev);
        assert_eq!(min_parallel_rows(), prev);
    }

    #[test]
    fn enabled_respects_feature_and_threshold() {
        let prev = set_min_parallel_rows(8);
        assert!(!enabled(7));
        assert_eq!(enabled(8), cfg!(feature = "parallel"));
        set_min_parallel_rows(prev);
    }
}
