//! Scalar values.

use std::cmp::Ordering;
use std::fmt;

use crate::date::format_date;
use crate::dtype::DataType;

/// A single scalar value, possibly null.
///
/// `Value` is the boundary type between the typed columnar kernels and the
/// untyped user-facing layers (GEL literals, skill parameters, cell reads).
/// Hot loops never materialize `Value`s; they operate on typed column
/// slices directly.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style NULL: absent / unknown.
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// The data type of this value, or `None` for null.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Whether this value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for non-numeric or null.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view; `None` for anything but `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view; `None` for anything but `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view; `None` for anything but `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is null
    /// or the types are incomparable.
    pub fn partial_cmp_sql(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Equality under SQL semantics: null equals nothing (returns `None`).
    pub fn eq_sql(&self, other: &Value) -> Option<bool> {
        self.partial_cmp_sql(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering used for sorting and group keys: nulls sort first,
    /// then by type tag, then by value. NaN sorts after all other floats.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Float(_) => 2, // ints and floats interleave numerically
                Date(_) => 3,
                Str(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Float(b)) => cmp_f64_total(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64_total(*a, *b as f64),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => cmp_f64_total(*a, *b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Render for display in spreadsheet cells and GEL output. Nulls render
    /// as the literal string `null`, matching the paper's UI screenshots.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Date(d) => format_date(*d),
        }
    }
}

fn cmp_f64_total(a: f64, b: f64) -> Ordering {
    // NaN compares greater than everything so sorts last.
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).unwrap(),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_in_sql_compare() {
        assert_eq!(Value::Null.eq_sql(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).eq_sql(&Value::Null), None);
        assert_eq!(Value::Null.eq_sql(&Value::Null), None);
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(Value::Int(2).eq_sql(&Value::Float(2.0)), Some(true));
        assert_eq!(
            Value::Float(1.5).partial_cmp_sql(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Str("a".into()).eq_sql(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_nulls_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.cmp_total(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn total_order_nan_last() {
        let mut vals = [Value::Float(f64::NAN), Value::Float(1.0), Value::Int(5)];
        vals.sort_by(|a, b| a.cmp_total(b));
        assert_eq!(vals[0], Value::Float(1.0));
        assert_eq!(vals[1], Value::Int(5));
        assert!(matches!(vals[2], Value::Float(v) if v.is_nan()));
    }

    #[test]
    fn render_matches_ui() {
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Date(0).render(), "1970-01-01");
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }
}
