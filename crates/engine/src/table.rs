//! The in-memory table: a schema plus equal-length columns.

use std::fmt;

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::schema::{Field, Schema};
use crate::value::Value;

/// An immutable, column-oriented table.
///
/// This is the engine's equivalent of a DataFrame / Arrow record batch:
/// the unit every relational operator consumes and produces. Operators
/// never mutate tables in place; they build new ones, which keeps the
/// lazy skill-DAG executor free to cache and share intermediate results.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// An empty table with no columns and no rows.
    pub fn empty() -> Table {
        Table {
            schema: Schema::empty(),
            columns: Vec::new(),
            rows: 0,
        }
    }

    /// Build a table from `(name, column)` pairs. All columns must have
    /// equal length and unique names.
    pub fn new(cols: Vec<(&str, Column)>) -> Result<Table> {
        let mut t = Table::empty();
        let mut first = true;
        for (name, col) in cols {
            if first {
                t.rows = col.len();
                first = false;
            }
            t.add_column(name, col)?;
        }
        Ok(t)
    }

    /// An empty (zero-row) table with the given schema.
    pub fn empty_with_schema(schema: &Schema) -> Table {
        Table {
            schema: schema.clone(),
            columns: schema
                .fields()
                .iter()
                .map(|f| Column::empty(f.dtype))
                .collect(),
            rows: 0,
        }
    }

    /// Append a named column. Must match the table's row count (the first
    /// column fixes it).
    pub fn add_column(&mut self, name: &str, col: Column) -> Result<()> {
        if !self.columns.is_empty() && col.len() != self.rows {
            return Err(EngineError::LengthMismatch {
                left: self.rows,
                right: col.len(),
            });
        }
        if self.columns.is_empty() {
            self.rows = col.len();
        }
        self.schema.push(Field::new(name, col.dtype()))?;
        self.columns.push(col);
        Ok(())
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by case-insensitive name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| EngineError::column_not_found(name))?;
        Ok(&self.columns[idx])
    }

    /// Column at position `i`.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Cell value at `(row, column-name)`.
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        if row >= self.rows {
            return Err(EngineError::RowOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        Ok(self.column(name)?.get(row))
    }

    /// One row as scalar values in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.rows {
            return Err(EngineError::RowOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// Gather rows at `indices` into a new table.
    pub fn take(&self, indices: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Keep rows where the mask is true.
    pub fn filter_mask(&self, mask: &[bool]) -> Result<Table> {
        if mask.len() != self.rows {
            return Err(EngineError::LengthMismatch {
                left: self.rows,
                right: mask.len(),
            });
        }
        let kept = mask.iter().filter(|&&b| b).count();
        Ok(Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
            rows: kept,
        })
    }

    /// Append the rows of `other` in place. Schemas must match by name,
    /// position and type (used to stitch per-morsel outputs back together).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema.names() != other.schema.names() {
            return Err(EngineError::schema_mismatch(format!(
                "cannot append table with columns {:?} onto {:?}",
                other.schema.names(),
                self.schema.names()
            )));
        }
        for (col, more) in self.columns.iter_mut().zip(&other.columns) {
            col.extend(more)?;
        }
        self.rows += other.rows;
        Ok(())
    }

    /// A contiguous window of rows.
    pub fn slice(&self, start: usize, count: usize) -> Table {
        let start = start.min(self.rows);
        let count = count.min(self.rows - start);
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(start, count)).collect(),
            rows: count,
        }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Table {
        self.slice(0, n)
    }

    /// Replace (or create) a column, keeping schema order; replacing keeps
    /// the original position.
    pub fn with_column(&self, name: &str, col: Column) -> Result<Table> {
        if col.len() != self.rows && !self.columns.is_empty() {
            return Err(EngineError::LengthMismatch {
                left: self.rows,
                right: col.len(),
            });
        }
        let mut out = self.clone();
        match out.schema.index_of(name) {
            Some(idx) => {
                // Preserve the user's original column casing on replace.
                let preserved = out.schema.field_at(idx).name.clone();
                let mut fields: Vec<Field> = out.schema.fields().to_vec();
                fields[idx] = Field::new(preserved, col.dtype());
                out.schema = Schema::new(fields)?;
                out.columns[idx] = col;
            }
            None => {
                out.schema.push(Field::new(name, col.dtype()))?;
                if out.columns.is_empty() {
                    out.rows = col.len();
                }
                out.columns.push(col);
            }
        }
        Ok(out)
    }

    /// Drop a column by name.
    pub fn drop_column(&self, name: &str) -> Result<Table> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| EngineError::column_not_found(name))?;
        let mut fields: Vec<Field> = self.schema.fields().to_vec();
        fields.remove(idx);
        let mut columns = self.columns.clone();
        columns.remove(idx);
        Ok(Table {
            schema: Schema::new(fields)?,
            columns,
            rows: self.rows,
        })
    }

    /// Rename a column.
    pub fn rename_column(&self, from: &str, to: &str) -> Result<Table> {
        let idx = self
            .schema
            .index_of(from)
            .ok_or_else(|| EngineError::column_not_found(from))?;
        if self.schema.index_of(to).is_some_and(|j| j != idx) {
            return Err(EngineError::DuplicateColumn { name: to.into() });
        }
        let mut fields: Vec<Field> = self.schema.fields().to_vec();
        fields[idx] = Field::new(to, fields[idx].dtype);
        Ok(Table {
            schema: Schema::new(fields)?,
            columns: self.columns.clone(),
            rows: self.rows,
        })
    }

    /// Keep only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let mut out = Table::empty();
        for &name in names {
            let idx = self
                .schema
                .index_of(name)
                .ok_or_else(|| EngineError::column_not_found(name))?;
            out.add_column(&self.schema.field_at(idx).name, self.columns[idx].clone())?;
        }
        out.rows = if out.columns.is_empty() { 0 } else { self.rows };
        Ok(out)
    }

    /// Approximate in-memory size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// A copy of the table with every plain string column
    /// dictionary-encoded ([`Column::dict_encode`]). Already-encoded and
    /// non-string columns are untouched; the schema is unchanged.
    pub fn encode_strings(&self) -> Table {
        let mut out = self.clone();
        for col in out.columns.iter_mut() {
            if matches!(col, Column::Str(..)) {
                *col = col.dict_encode();
            }
        }
        out
    }

    /// A copy of the table with every dictionary-encoded column
    /// materialized back to plain strings ([`Column::materialize`]).
    pub fn materialize_strings(&self) -> Table {
        let mut out = self.clone();
        for col in out.columns.iter_mut() {
            if matches!(col, Column::Dict(..)) {
                *col = col.materialize();
            }
        }
        out
    }

    /// Render the first `limit` rows as an aligned text grid (the
    /// spreadsheet view of the paper's UI, in terminal form).
    pub fn render(&self, limit: usize) -> String {
        let n = self.rows.min(limit);
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|s| s.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n);
        for r in 0..n {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(r).render()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{name:>width$}", width = widths[i]));
        }
        out.push('\n');
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            out.push('\n');
        }
        if self.rows > n {
            out.push_str(&format!("... ({} more rows)\n", self.rows - n));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(20))
    }
}

/// Builder for assembling a table row-by-row with a known schema (used by
/// CSV ingestion and group-by output assembly).
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Start building with a schema.
    pub fn new(schema: Schema) -> TableBuilder {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        TableBuilder { schema, columns }
    }

    /// Append one row; values must match the schema arity and types.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(EngineError::LengthMismatch {
                left: self.columns.len(),
                right: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push_value(v)?;
        }
        Ok(())
    }

    /// Finish into a table.
    pub fn finish(self) -> Table {
        let rows = self.columns.first().map_or(0, |c| c.len());
        Table {
            schema: self.schema,
            columns: self.columns,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    fn people() -> Table {
        Table::new(vec![
            ("name", Column::from_strs(vec!["ann", "bob", "cid"])),
            ("age", Column::from_opt_ints(vec![Some(34), None, Some(28)])),
            ("score", Column::from_floats(vec![1.5, 2.5, 3.5])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let t = people();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.schema().names(), vec!["name", "age", "score"]);
    }

    #[test]
    fn rejects_ragged_columns() {
        let r = Table::new(vec![
            ("a", Column::from_ints(vec![1, 2])),
            ("b", Column::from_ints(vec![1])),
        ]);
        assert!(matches!(r, Err(EngineError::LengthMismatch { .. })));
    }

    #[test]
    fn cell_access() {
        let t = people();
        assert_eq!(t.value(0, "NAME").unwrap(), Value::Str("ann".into()));
        assert_eq!(t.value(1, "age").unwrap(), Value::Null);
        assert!(t.value(5, "age").is_err());
        assert!(t.value(0, "nope").is_err());
    }

    #[test]
    fn select_projects_and_reorders() {
        let t = people().select(&["score", "name"]).unwrap();
        assert_eq!(t.schema().names(), vec!["score", "name"]);
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn with_column_replaces_in_place() {
        let t = people()
            .with_column("age", Column::from_ints(vec![1, 2, 3]))
            .unwrap();
        assert_eq!(t.schema().names(), vec!["name", "age", "score"]);
        assert_eq!(t.value(1, "age").unwrap(), Value::Int(2));
    }

    #[test]
    fn with_column_appends_new() {
        let t = people()
            .with_column("flag", Column::from_bools(vec![true, false, true]))
            .unwrap();
        assert_eq!(t.num_columns(), 4);
    }

    #[test]
    fn drop_and_rename() {
        let t = people().drop_column("age").unwrap();
        assert_eq!(t.schema().names(), vec!["name", "score"]);
        let t = t.rename_column("score", "points").unwrap();
        assert!(t.column("points").is_ok());
        assert!(t.rename_column("name", "points").is_err());
    }

    #[test]
    fn filter_and_take() {
        let t = people();
        let f = t.filter_mask(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(1, "name").unwrap(), Value::Str("cid".into()));
        let k = t.take(&[2, 2]);
        assert_eq!(k.num_rows(), 2);
        assert_eq!(k.value(0, "name").unwrap(), Value::Str("cid".into()));
    }

    #[test]
    fn slice_and_head() {
        let t = people();
        assert_eq!(t.head(2).num_rows(), 2);
        assert_eq!(t.slice(2, 5).num_rows(), 1);
        assert_eq!(t.slice(9, 5).num_rows(), 0);
    }

    #[test]
    fn builder_roundtrip() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(&[Value::Int(1), Value::Str("x".into())])
            .unwrap();
        b.push_row(&[Value::Null, Value::Str("y".into())]).unwrap();
        let t = b.finish();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "a").unwrap(), Value::Null);
    }

    #[test]
    fn render_includes_nulls_and_truncation() {
        let t = people();
        let s = t.render(2);
        assert!(s.contains("null"));
        assert!(s.contains("1 more rows"));
    }
}
