//! Vectorized expression evaluation.
//!
//! Null semantics follow SQL throughout: arithmetic and comparisons
//! propagate null, `AND`/`OR` use Kleene three-valued logic, and
//! `IS NULL` / `COALESCE` are the only constructs that observe nullness
//! directly.

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::date::{days_from_ymd, ymd_from_days};
use crate::dtype::DataType;
use crate::error::{EngineError, Result};
use crate::expr::{BinaryOp, Expr, ScalarFunc, UnaryOp};
use crate::table::Table;
use crate::value::Value;

/// Evaluate an expression against a table, producing a column with one row
/// per table row. Literals broadcast to the table's length.
///
/// Large tables are split into row morsels that evaluate concurrently and
/// are stitched back in order (see [`crate::parallel`]); the result is
/// bit-identical to the serial path because every expression kernel is
/// row-local.
pub fn eval(table: &Table, expr: &Expr) -> Result<Column> {
    if crate::parallel::enabled(table.num_rows()) && morsel_safe(expr) {
        return eval_morsel(table, expr);
    }
    eval_serial(table, expr)
}

/// Serial expression evaluation (also the per-morsel worker body).
pub fn eval_serial(table: &Table, expr: &Expr) -> Result<Column> {
    let n = table.num_rows();
    match expr {
        Expr::Column(name) => Ok(table.column(name)?.clone()),
        Expr::Literal(v) => Ok(broadcast(v, n)),
        Expr::Binary { left, op, right } => {
            let l = eval_serial(table, left)?;
            let r = eval_serial(table, right)?;
            if op.is_logical() {
                eval_logical(&l, *op, &r)
            } else if op.is_comparison() {
                eval_comparison(&l, *op, &r)
            } else {
                eval_arith(&l, *op, &r)
            }
        }
        Expr::Unary { op, expr } => {
            let c = eval_serial(table, expr)?;
            match op {
                UnaryOp::Not => eval_not(&c),
                UnaryOp::Neg => eval_neg(&c),
            }
        }
        Expr::Func { func, args } => {
            let (min, max) = func.arity();
            if args.len() < min || args.len() > max {
                return Err(EngineError::eval(format!(
                    "{} expects between {min} and {} arguments, got {}",
                    func.name(),
                    if max == usize::MAX {
                        "unbounded".to_string()
                    } else {
                        max.to_string()
                    },
                    args.len()
                )));
            }
            let cols: Vec<Column> = args
                .iter()
                .map(|a| eval_serial(table, a))
                .collect::<Result<_>>()?;
            eval_func(*func, &cols, n)
        }
        Expr::Cast { expr, to } => eval_serial(table, expr)?.cast(*to),
        Expr::IsNull(e) => {
            let c = eval_serial(table, e)?;
            Ok(Column::from_bools(
                c.validity().iter().map(|v| !v).collect(),
            ))
        }
        Expr::IsNotNull(e) => {
            let c = eval_serial(table, e)?;
            Ok(Column::from_bools(c.validity().iter().collect()))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let c = eval_serial(table, expr)?;
            let list_has_null = list.iter().any(|v| v.is_null());
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            if let Some((codes, dict, cv)) = c.as_dict() {
                // Test membership once per distinct string, then fan the
                // verdicts out by code.
                let found_of: Vec<bool> = dict
                    .iter()
                    .map(|s| {
                        let v = Value::Str(s.clone());
                        list.iter().any(|item| v.eq_sql(item) == Some(true))
                    })
                    .collect();
                for (i, &code) in codes.iter().enumerate() {
                    if !cv.get(i) {
                        data.push(false);
                        continue;
                    }
                    let found = found_of.get(code as usize).copied().unwrap_or(false);
                    if found {
                        data.push(!*negated);
                        valid.set(i, true);
                    } else if list_has_null {
                        data.push(false);
                    } else {
                        data.push(*negated);
                        valid.set(i, true);
                    }
                }
                return Ok(Column::Bool(data, valid));
            }
            for i in 0..n {
                let v = c.get(i);
                if v.is_null() {
                    data.push(false);
                    continue;
                }
                let found = list.iter().any(|item| v.eq_sql(item) == Some(true));
                if found {
                    data.push(!*negated);
                    valid.set(i, true);
                } else if list_has_null {
                    // Unknown: value may equal the null element.
                    data.push(false);
                } else {
                    data.push(*negated);
                    valid.set(i, true);
                }
            }
            Ok(Column::Bool(data, valid))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // Desugar to (expr >= low AND expr <= high), honoring 3VL.
            let inner = Expr::Binary {
                left: Box::new(Expr::binary(
                    (**expr).clone(),
                    BinaryOp::Ge,
                    (**low).clone(),
                )),
                op: BinaryOp::And,
                right: Box::new(Expr::binary(
                    (**expr).clone(),
                    BinaryOp::Le,
                    (**high).clone(),
                )),
            };
            let c = eval_serial(table, &inner)?;
            if *negated {
                eval_not(&c)
            } else {
                Ok(c)
            }
        }
    }
}

/// Resolve the columns `expr` references, so morsel workers can build
/// chunks containing only those columns — unreferenced columns (often
/// wide strings) are never copied. `None` when the expression references
/// no columns: literal broadcasts need the true row count, which a
/// zero-column chunk cannot carry.
fn referenced<'a>(table: &'a Table, expr: &Expr) -> Result<Option<Vec<(String, &'a Column)>>> {
    let mut names = Vec::new();
    expr.referenced_columns(&mut names);
    if names.is_empty() {
        return Ok(None);
    }
    let cols = names
        .into_iter()
        .map(|n| {
            let col = table.column(&n)?;
            Ok((n, col))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Some(cols))
}

/// Slice only the referenced columns into a chunk table for one morsel.
fn pruned_chunk(cols: &[(String, &Column)], r: &std::ops::Range<usize>) -> Result<Table> {
    Table::new(
        cols.iter()
            .map(|(n, c)| (n.as_str(), c.slice(r.start, r.end - r.start)))
            .collect(),
    )
}

/// Evaluate on row morsels and stitch the per-morsel columns in order.
fn eval_morsel(table: &Table, expr: &Expr) -> Result<Column> {
    let Some(cols) = referenced(table, expr)? else {
        return eval_serial(table, expr);
    };
    let ranges = crate::parallel::morsels(table.num_rows());
    let parts =
        crate::parallel::run_morsels(&ranges, |r| eval_serial(&pruned_chunk(&cols, &r)?, expr));
    let mut parts = parts.into_iter();
    let Some(first) = parts.next() else {
        return eval_serial(table, expr);
    };
    let mut out = first?;
    for part in parts {
        out.extend(&part?)?;
    }
    Ok(out)
}

/// Whether an expression can be evaluated per-morsel. Everything is
/// row-local except functions taking a constant-integer argument
/// (`round` digits, `substring` bounds): their constant-ness check must
/// see the whole column to reject per-row expressions, so they stay
/// serial.
pub(crate) fn morsel_safe(expr: &Expr) -> bool {
    match expr {
        Expr::Column(_) | Expr::Literal(_) => true,
        Expr::Binary { left, right, .. } => morsel_safe(left) && morsel_safe(right),
        Expr::Unary { expr, .. } => morsel_safe(expr),
        Expr::Func { func, args } => {
            !matches!(func, ScalarFunc::Round | ScalarFunc::Substring)
                && args.iter().all(morsel_safe)
        }
        Expr::Cast { expr, .. } => morsel_safe(expr),
        Expr::IsNull(e) | Expr::IsNotNull(e) => morsel_safe(e),
        Expr::InList { expr, .. } => morsel_safe(expr),
        Expr::Between {
            expr, low, high, ..
        } => morsel_safe(expr) && morsel_safe(low) && morsel_safe(high),
    }
}

/// Evaluate a predicate to a selection mask: null evaluates to "do not
/// keep", matching SQL `WHERE`.
pub fn eval_predicate(table: &Table, expr: &Expr) -> Result<Vec<bool>> {
    if crate::parallel::enabled(table.num_rows()) && morsel_safe(expr) {
        if let Some(cols) = referenced(table, expr)? {
            let ranges = crate::parallel::morsels(table.num_rows());
            let parts = crate::parallel::run_morsels(&ranges, |r| {
                eval_predicate_serial(&pruned_chunk(&cols, &r)?, expr)
            });
            let mut mask = Vec::with_capacity(table.num_rows());
            for part in parts {
                mask.extend(part?);
            }
            return Ok(mask);
        }
    }
    eval_predicate_serial(table, expr)
}

/// Serial predicate evaluation (also the per-morsel worker body).
pub fn eval_predicate_serial(table: &Table, expr: &Expr) -> Result<Vec<bool>> {
    let c = eval_serial(table, expr)?;
    match &c {
        Column::Bool(data, valid) => Ok(data
            .iter()
            .zip(valid.iter())
            .map(|(&b, v)| v && b)
            .collect()),
        other => Err(EngineError::TypeMismatch {
            expected: DataType::Bool,
            actual: other.dtype(),
            context: "predicate".into(),
        }),
    }
}

fn broadcast(v: &Value, n: usize) -> Column {
    match v {
        Value::Null => Column::nulls(DataType::Str, n),
        Value::Bool(x) => Column::from_bools(vec![*x; n]),
        Value::Int(x) => Column::from_ints(vec![*x; n]),
        Value::Float(x) => Column::from_floats(vec![*x; n]),
        // A broadcast string literal is a one-entry dictionary: O(1) heap
        // for the payload, and comparisons against a dict column reduce to
        // a single dictionary lookup plus integer compares.
        Value::Str(x) => Column::Dict(vec![0; n], Arc::new(vec![x.clone()]), Bitmap::new_valid(n)),
        Value::Date(x) => Column::from_dates(vec![*x; n]),
    }
}

fn eval_logical(l: &Column, op: BinaryOp, r: &Column) -> Result<Column> {
    let (ld, lv) = l.as_bools().ok_or_else(|| type_err(l, "logical operand"))?;
    let (rd, rv) = r.as_bools().ok_or_else(|| type_err(r, "logical operand"))?;
    check_len(l, r)?;
    let n = ld.len();
    let mut data = Vec::with_capacity(n);
    let mut valid = Bitmap::new_null(n);
    for i in 0..n {
        let a = lv.get(i).then(|| ld[i]);
        let b = rv.get(i).then(|| rd[i]);
        let out = match op {
            BinaryOp::And => kleene_and(a, b),
            BinaryOp::Or => kleene_or(a, b),
            _ => unreachable!(),
        };
        match out {
            Some(x) => {
                data.push(x);
                valid.set(i, true);
            }
            None => data.push(false),
        }
    }
    Ok(Column::Bool(data, valid))
}

fn kleene_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn kleene_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn eval_not(c: &Column) -> Result<Column> {
    let (data, valid) = c.as_bools().ok_or_else(|| type_err(c, "NOT operand"))?;
    Ok(Column::Bool(
        data.iter().map(|b| !b).collect(),
        valid.clone(),
    ))
}

fn eval_neg(c: &Column) -> Result<Column> {
    match c {
        Column::Int(v, b) => Ok(Column::Int(
            v.iter().map(|x| x.wrapping_neg()).collect(),
            b.clone(),
        )),
        Column::Float(v, b) => Ok(Column::Float(v.iter().map(|x| -x).collect(), b.clone())),
        _ => Err(type_err(c, "negation")),
    }
}

fn eval_comparison(l: &Column, op: BinaryOp, r: &Column) -> Result<Column> {
    check_len(l, r)?;
    let n = l.len();
    use DataType as T;
    // Fast typed kernels for the common cases; the generic fallback covers
    // the rest via Value comparison.
    let cmp_ok = |ord: std::cmp::Ordering| -> bool {
        use std::cmp::Ordering::*;
        match op {
            BinaryOp::Eq => ord == Equal,
            BinaryOp::Neq => ord != Equal,
            BinaryOp::Lt => ord == Less,
            BinaryOp::Le => ord != Greater,
            BinaryOp::Gt => ord == Greater,
            BinaryOp::Ge => ord != Less,
            _ => unreachable!(),
        }
    };
    let mut data = Vec::with_capacity(n);
    let mut valid = Bitmap::new_null(n);
    match (l.dtype(), r.dtype()) {
        (T::Int, T::Int) => {
            let (a, av) = l.as_ints().unwrap();
            let (b, bv) = r.as_ints().unwrap();
            for i in 0..n {
                if av.get(i) && bv.get(i) {
                    data.push(cmp_ok(a[i].cmp(&b[i])));
                    valid.set(i, true);
                } else {
                    data.push(false);
                }
            }
        }
        (T::Str, T::Str) => {
            if let (Some((ca, da, av)), Some((cb, db, bv))) = (l.as_dict(), r.as_dict()) {
                if matches!(op, BinaryOp::Eq | BinaryOp::Neq) {
                    // Dict × dict equality: remap the right dictionary into
                    // the left's code space once (identity when shared),
                    // then compare integers per row.
                    let eq_wanted = op == BinaryOp::Eq;
                    let remap: Vec<i64> = if Arc::ptr_eq(da, db) {
                        (0..db.len() as i64).collect()
                    } else {
                        db.iter()
                            .map(|s| da.binary_search(s).map(|c| c as i64).unwrap_or(-1))
                            .collect()
                    };
                    for i in 0..n {
                        if av.get(i) && bv.get(i) {
                            let rc = remap.get(cb[i] as usize).copied().unwrap_or(-1);
                            data.push((ca[i] as i64 == rc) == eq_wanted);
                            valid.set(i, true);
                        } else {
                            data.push(false);
                        }
                    }
                    return Ok(Column::Bool(data, valid));
                }
                if Arc::ptr_eq(da, db) {
                    // Sorted dictionary: code order is lexicographic order,
                    // so ordering comparisons stay on the codes.
                    for i in 0..n {
                        if av.get(i) && bv.get(i) {
                            data.push(cmp_ok(ca[i].cmp(&cb[i])));
                            valid.set(i, true);
                        } else {
                            data.push(false);
                        }
                    }
                    return Ok(Column::Bool(data, valid));
                }
            }
            for i in 0..n {
                match (l.str_at(i), r.str_at(i)) {
                    (Some(a), Some(b)) => {
                        data.push(cmp_ok(a.cmp(b)));
                        valid.set(i, true);
                    }
                    _ => data.push(false),
                }
            }
        }
        (a, b) if a.unify(b).is_some() || (a.is_numeric() && b.is_numeric()) => {
            for i in 0..n {
                match l.get(i).partial_cmp_sql(&r.get(i)) {
                    Some(ord) => {
                        data.push(cmp_ok(ord));
                        valid.set(i, true);
                    }
                    None => data.push(false),
                }
            }
        }
        (a, b) => return Err(EngineError::eval(format!("cannot compare {a} with {b}"))),
    }
    Ok(Column::Bool(data, valid))
}

fn eval_arith(l: &Column, op: BinaryOp, r: &Column) -> Result<Column> {
    check_len(l, r)?;
    let n = l.len();
    use DataType as T;
    match (l.dtype(), r.dtype()) {
        // Integer arithmetic stays integral except division, which widens
        // to float for user-friendliness (GEL users expect 1/2 = 0.5).
        (T::Int, T::Int) if op != BinaryOp::Div => {
            let (a, av) = l.as_ints().unwrap();
            let (b, bv) = r.as_ints().unwrap();
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                if av.get(i) && bv.get(i) {
                    let out = match op {
                        BinaryOp::Add => Some(a[i].wrapping_add(b[i])),
                        BinaryOp::Sub => Some(a[i].wrapping_sub(b[i])),
                        BinaryOp::Mul => Some(a[i].wrapping_mul(b[i])),
                        BinaryOp::Mod => {
                            if b[i] == 0 {
                                None
                            } else {
                                Some(a[i].wrapping_rem(b[i]))
                            }
                        }
                        _ => unreachable!(),
                    };
                    match out {
                        Some(x) => {
                            data.push(x);
                            valid.set(i, true);
                        }
                        None => data.push(0),
                    }
                } else {
                    data.push(0);
                }
            }
            Ok(Column::Int(data, valid))
        }
        // Date arithmetic: Date ± Int days; Date - Date = Int days.
        (T::Date, T::Int) if matches!(op, BinaryOp::Add | BinaryOp::Sub) => {
            let (a, av) = l.as_dates().unwrap();
            let (b, bv) = r.as_ints().unwrap();
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                if av.get(i) && bv.get(i) {
                    let delta = b[i] as i32;
                    data.push(if op == BinaryOp::Add {
                        a[i].wrapping_add(delta)
                    } else {
                        a[i].wrapping_sub(delta)
                    });
                    valid.set(i, true);
                } else {
                    data.push(0);
                }
            }
            Ok(Column::Date(data, valid))
        }
        (T::Date, T::Date) if op == BinaryOp::Sub => {
            let (a, av) = l.as_dates().unwrap();
            let (b, bv) = r.as_dates().unwrap();
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                if av.get(i) && bv.get(i) {
                    data.push((a[i] - b[i]) as i64);
                    valid.set(i, true);
                } else {
                    data.push(0);
                }
            }
            Ok(Column::Int(data, valid))
        }
        // String concatenation via `+`.
        (T::Str, T::Str) if op == BinaryOp::Add => {
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                match (l.str_at(i), r.str_at(i)) {
                    (Some(a), Some(b)) => {
                        let mut s = String::with_capacity(a.len() + b.len());
                        s.push_str(a);
                        s.push_str(b);
                        data.push(s);
                        valid.set(i, true);
                    }
                    _ => data.push(String::new()),
                }
            }
            Ok(Column::Str(data, valid))
        }
        (a, b) if a.is_numeric() && b.is_numeric() => {
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                match (l.numeric_at(i), r.numeric_at(i)) {
                    (Some(x), Some(y)) => {
                        let out = match op {
                            BinaryOp::Add => Some(x + y),
                            BinaryOp::Sub => Some(x - y),
                            BinaryOp::Mul => Some(x * y),
                            BinaryOp::Div => (y != 0.0).then(|| x / y),
                            BinaryOp::Mod => (y != 0.0).then(|| x % y),
                            _ => unreachable!(),
                        };
                        match out {
                            Some(v) => {
                                data.push(v);
                                valid.set(i, true);
                            }
                            None => data.push(0.0),
                        }
                    }
                    _ => data.push(0.0),
                }
            }
            Ok(Column::Float(data, valid))
        }
        (a, b) => Err(EngineError::eval(format!(
            "arithmetic {:?} not defined for {a} and {b}",
            op.sql()
        ))),
    }
}

fn eval_func(func: ScalarFunc, cols: &[Column], n: usize) -> Result<Column> {
    use ScalarFunc::*;
    match func {
        Abs | Ceil | Floor | Sqrt | Ln | Exp => {
            let c = &cols[0];
            if !c.dtype().is_numeric() {
                return Err(type_err(c, func.name()));
            }
            // Abs preserves integer-ness; the rest produce floats.
            if func == Abs {
                if let Some((v, b)) = c.as_ints() {
                    return Ok(Column::Int(
                        v.iter().map(|x| x.wrapping_abs()).collect(),
                        b.clone(),
                    ));
                }
            }
            map_numeric(c, n, |x| {
                let y = match func {
                    Abs => x.abs(),
                    Ceil => x.ceil(),
                    Floor => x.floor(),
                    Sqrt => x.sqrt(),
                    Ln => x.ln(),
                    Exp => x.exp(),
                    _ => unreachable!(),
                };
                y.is_finite().then_some(y)
            })
        }
        Round => {
            let digits = if cols.len() == 2 {
                scalar_int(&cols[1], "round digits")?
            } else {
                0
            };
            let factor = 10f64.powi(digits as i32);
            map_numeric(&cols[0], n, move |x| Some((x * factor).round() / factor))
        }
        Pow => binary_numeric(&cols[0], &cols[1], n, |a, b| {
            let y = a.powf(b);
            y.is_finite().then_some(y)
        }),
        Bin => {
            // bin(x, width): lower edge of the containing bucket.
            let c = &cols[0];
            if let (Some((v, b)), Some((w, wv))) = (c.as_ints(), cols[1].as_ints()) {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::new_null(n);
                for i in 0..n {
                    if b.get(i) && wv.get(i) && w[i] > 0 {
                        data.push(v[i].div_euclid(w[i]) * w[i]);
                        valid.set(i, true);
                    } else {
                        data.push(0);
                    }
                }
                return Ok(Column::Int(data, valid));
            }
            binary_numeric(c, &cols[1], n, |x, w| {
                (w > 0.0).then(|| (x / w).floor() * w)
            })
        }
        Lower | Upper | Trim => map_str(&cols[0], n, |s| match func {
            Lower => s.to_lowercase(),
            Upper => s.to_uppercase(),
            Trim => s.trim().to_string(),
            _ => unreachable!(),
        }),
        Length => {
            let c = &cols[0];
            if let Some((codes, dict, valid)) = c.as_dict() {
                // Count each distinct string's chars once, then fan out.
                let lens: Vec<i64> = dict.iter().map(|s| s.chars().count() as i64).collect();
                return Ok(Column::Int(
                    codes
                        .iter()
                        .map(|&cd| lens.get(cd as usize).copied().unwrap_or(0))
                        .collect(),
                    valid.clone(),
                ));
            }
            let (data, valid) = c.as_strs().ok_or_else(|| type_err(c, "length"))?;
            Ok(Column::Int(
                data.iter().map(|s| s.chars().count() as i64).collect(),
                valid.clone(),
            ))
        }
        Concat => {
            let mut data = vec![String::new(); n];
            let mut valid = Bitmap::new_valid(n);
            for c in cols {
                let rendered = c.cast(DataType::Str)?;
                for (i, slot) in data.iter_mut().enumerate().take(n) {
                    match rendered.str_at(i) {
                        Some(s) => slot.push_str(s),
                        None => valid.set(i, false),
                    }
                }
            }
            Ok(Column::Str(data, valid))
        }
        Contains | StartsWith | EndsWith => {
            for c in &cols[..2] {
                if c.dtype() != DataType::Str {
                    return Err(type_err(c, func.name()));
                }
            }
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                match (cols[0].str_at(i), cols[1].str_at(i)) {
                    (Some(a), Some(b)) => {
                        data.push(match func {
                            Contains => a.contains(b),
                            StartsWith => a.starts_with(b),
                            EndsWith => a.ends_with(b),
                            _ => unreachable!(),
                        });
                        valid.set(i, true);
                    }
                    _ => data.push(false),
                }
            }
            Ok(Column::Bool(data, valid))
        }
        Replace => {
            for c in &cols[..3] {
                if c.dtype() != DataType::Str {
                    return Err(type_err(c, "replace"));
                }
            }
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                match (cols[0].str_at(i), cols[1].str_at(i), cols[2].str_at(i)) {
                    (Some(a), Some(from), Some(to)) => {
                        data.push(a.replace(from, to));
                        valid.set(i, true);
                    }
                    _ => data.push(String::new()),
                }
            }
            Ok(Column::Str(data, valid))
        }
        Substring => {
            // substring(s, start_1_based, len)
            if cols[0].dtype() != DataType::Str {
                return Err(type_err(&cols[0], "substring"));
            }
            let start = scalar_int(&cols[1], "substring start")?;
            let len = scalar_int(&cols[2], "substring length")?;
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::new_null(n);
            for i in 0..n {
                match cols[0].str_at(i) {
                    Some(item) => {
                        let chars: Vec<char> = item.chars().collect();
                        let s = (start.max(1) - 1) as usize;
                        let e = (s + len.max(0) as usize).min(chars.len());
                        data.push(chars.get(s..e).unwrap_or(&[]).iter().collect());
                        valid.set(i, true);
                    }
                    None => data.push(String::new()),
                }
            }
            Ok(Column::Str(data, valid))
        }
        Year | Month | Day => {
            let (d, dv) = cols[0]
                .as_dates()
                .ok_or_else(|| type_err(&cols[0], func.name()))?;
            let mut data = Vec::with_capacity(n);
            for &days in d {
                let (y, m, dd) = ymd_from_days(days);
                data.push(match func {
                    Year => y,
                    Month => m as i64,
                    Day => dd as i64,
                    _ => unreachable!(),
                });
            }
            Ok(Column::Int(data, dv.clone()))
        }
        Coalesce => {
            let dtype = cols
                .iter()
                .map(|c| c.dtype())
                .reduce(|a, b| a.unify(b).unwrap_or(a))
                .unwrap_or(DataType::Str);
            let mut out = Column::empty(dtype);
            for i in 0..n {
                let v = cols
                    .iter()
                    .map(|c| c.get(i))
                    .find(|v| !v.is_null())
                    .unwrap_or(Value::Null);
                let v = crate::column::cast_value(&v, dtype);
                out.push_value(&v)?;
            }
            Ok(out)
        }
        If => {
            let (cond, cv) = cols[0]
                .as_bools()
                .ok_or_else(|| type_err(&cols[0], "if condition"))?;
            let dtype = cols[1].dtype().unify(cols[2].dtype()).ok_or_else(|| {
                EngineError::eval(format!(
                    "if branches have incompatible types {} and {}",
                    cols[1].dtype(),
                    cols[2].dtype()
                ))
            })?;
            let mut out = Column::empty(dtype);
            for (i, &c) in cond.iter().enumerate().take(n) {
                let v = if !cv.get(i) {
                    Value::Null
                } else if c {
                    cols[1].get(i)
                } else {
                    cols[2].get(i)
                };
                let v = crate::column::cast_value(&v, dtype);
                out.push_value(&v)?;
            }
            Ok(out)
        }
    }
}

fn map_numeric(c: &Column, n: usize, f: impl Fn(f64) -> Option<f64>) -> Result<Column> {
    if !c.dtype().is_numeric() {
        return Err(type_err(c, "numeric function"));
    }
    let mut data = Vec::with_capacity(n);
    let mut valid = Bitmap::new_null(n);
    for i in 0..n {
        match c.numeric_at(i).and_then(&f) {
            Some(v) => {
                data.push(v);
                valid.set(i, true);
            }
            None => data.push(0.0),
        }
    }
    Ok(Column::Float(data, valid))
}

fn binary_numeric(
    a: &Column,
    b: &Column,
    n: usize,
    f: impl Fn(f64, f64) -> Option<f64>,
) -> Result<Column> {
    if !a.dtype().is_numeric() || !b.dtype().is_numeric() {
        return Err(EngineError::eval("numeric arguments required".to_string()));
    }
    let mut data = Vec::with_capacity(n);
    let mut valid = Bitmap::new_null(n);
    for i in 0..n {
        match (a.numeric_at(i), b.numeric_at(i)) {
            (Some(x), Some(y)) => match f(x, y) {
                Some(v) => {
                    data.push(v);
                    valid.set(i, true);
                }
                None => data.push(0.0),
            },
            _ => data.push(0.0),
        }
    }
    Ok(Column::Float(data, valid))
}

fn map_str(c: &Column, n: usize, f: impl Fn(&str) -> String) -> Result<Column> {
    if let Some((codes, dict, valid)) = c.as_dict() {
        // Transform each distinct string once. The transform can collapse
        // or reorder entries (e.g. lower-casing "A" and "a"), so rebuild a
        // sorted-unique dictionary and remap the codes.
        let transformed: Vec<String> = dict.iter().map(|s| f(s)).collect();
        let mut uniq: Vec<&String> = transformed.iter().collect();
        uniq.sort_unstable();
        uniq.dedup();
        let new_dict: Vec<String> = uniq.iter().map(|s| (*s).clone()).collect();
        let remap: Vec<u32> = transformed
            .iter()
            .map(|s| new_dict.binary_search(s).unwrap_or(0) as u32)
            .collect();
        let new_codes: Vec<u32> = codes
            .iter()
            .map(|&cd| remap.get(cd as usize).copied().unwrap_or(0))
            .collect();
        return Ok(Column::Dict(new_codes, Arc::new(new_dict), valid.clone()));
    }
    let (data, valid) = c.as_strs().ok_or_else(|| type_err(c, "string function"))?;
    debug_assert_eq!(data.len(), n);
    Ok(Column::Str(
        data.iter().map(|s| f(s)).collect(),
        valid.clone(),
    ))
}

/// Extract a constant integer from a broadcast column. Function
/// arguments like round digits must be uniform literals; a per-row
/// expression is rejected instead of silently using row 0.
fn scalar_int(c: &Column, context: &str) -> Result<i64> {
    match c {
        Column::Int(v, b) => {
            let Some(first) = v.first().copied().filter(|_| b.get(0)) else {
                return Ok(0);
            };
            let uniform = (1..v.len()).all(|i| b.get(i) && v[i] == first);
            if !uniform {
                return Err(EngineError::eval(format!(
                    "{context} must be a constant integer, not a per-row expression"
                )));
            }
            Ok(first)
        }
        _ => Err(EngineError::eval(format!("{context} must be an integer"))),
    }
}

fn check_len(l: &Column, r: &Column) -> Result<()> {
    if l.len() != r.len() {
        return Err(EngineError::LengthMismatch {
            left: l.len(),
            right: r.len(),
        });
    }
    Ok(())
}

fn type_err(c: &Column, context: &str) -> EngineError {
    EngineError::TypeMismatch {
        expected: DataType::Float,
        actual: c.dtype(),
        context: context.into(),
    }
}

// Re-export for convenience in docs referencing date helpers.
#[allow(unused_imports)]
use days_from_ymd as _days_from_ymd;

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(vec![
            (
                "a",
                Column::from_opt_ints(vec![Some(1), Some(2), None, Some(4)]),
            ),
            ("b", Column::from_ints(vec![10, 0, 30, 40])),
            ("f", Column::from_floats(vec![1.5, 2.5, 3.5, 4.5])),
            (
                "s",
                Column::from_strs(vec!["driver", "pedestrian", "driver", "parked"]),
            ),
            ("flag", Column::from_bools(vec![true, false, true, false])),
            ("d", Column::from_dates(vec![0, 365, 730, 1095])),
        ])
        .unwrap()
    }

    #[test]
    fn column_and_literal() {
        let c = eval(&t(), &Expr::col("a")).unwrap();
        assert_eq!(c.get(0), Value::Int(1));
        let c = eval(&t(), &Expr::lit(7i64)).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(3), Value::Int(7));
    }

    #[test]
    fn int_arithmetic_null_propagation() {
        let e = Expr::col("a").add(Expr::col("b"));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Int(11));
        assert_eq!(c.get(2), Value::Null);
    }

    #[test]
    fn division_widens_and_guards_zero() {
        let e = Expr::col("a").div(Expr::col("b"));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Float(0.1));
        assert_eq!(c.get(1), Value::Null); // 2 / 0
    }

    #[test]
    fn mixed_numeric_is_float() {
        let e = Expr::col("a").mul(Expr::col("f"));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.dtype(), DataType::Float);
        assert_eq!(c.get(0), Value::Float(1.5));
    }

    #[test]
    fn date_arithmetic() {
        let e = Expr::col("d").add(Expr::lit(5i64));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Date(5));
        let e = Expr::col("d").sub(Expr::col("d"));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(1), Value::Int(0));
    }

    #[test]
    fn string_concat_plus() {
        let e = Expr::col("s").add(Expr::lit("!"));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Str("driver!".into()));
    }

    #[test]
    fn comparisons_with_nulls() {
        let e = Expr::col("a").gt(Expr::lit(1i64));
        let mask = eval_predicate(&t(), &e).unwrap();
        assert_eq!(mask, vec![false, true, false, true]);
    }

    #[test]
    fn kleene_logic() {
        // null AND false = false; null OR true = true.
        let null_bool = Expr::col("a").gt(Expr::lit(100i64)); // row 2 null
        let e = null_bool.clone().and(Expr::lit(false));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(2), Value::Bool(false));
        let e = null_bool.or(Expr::lit(true));
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(2), Value::Bool(true));
    }

    #[test]
    fn not_propagates_null() {
        let e = Expr::col("a").gt(Expr::lit(0i64)).not();
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Bool(false));
        assert_eq!(c.get(2), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        let c = eval(&t(), &Expr::col("a").is_null()).unwrap();
        assert_eq!(c.get(2), Value::Bool(true));
        assert_eq!(c.get(0), Value::Bool(false));
        let c = eval(&t(), &Expr::col("a").is_not_null()).unwrap();
        assert_eq!(c.get(2), Value::Bool(false));
    }

    #[test]
    fn in_list_semantics() {
        let e = Expr::col("s").in_list(vec![Value::Str("driver".into())]);
        let mask = eval_predicate(&t(), &e).unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
        // Null element makes non-matches unknown.
        let e = Expr::col("a").in_list(vec![Value::Int(1), Value::Null]);
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Bool(true));
        assert_eq!(c.get(1), Value::Null);
    }

    #[test]
    fn between_inclusive() {
        let e = Expr::col("b").between(Expr::lit(10i64), Expr::lit(30i64));
        let mask = eval_predicate(&t(), &e).unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn string_functions() {
        let c = eval(&t(), &Expr::func(ScalarFunc::Upper, vec![Expr::col("s")])).unwrap();
        assert_eq!(c.get(0), Value::Str("DRIVER".into()));
        let c = eval(
            &t(),
            &Expr::func(ScalarFunc::Contains, vec![Expr::col("s"), Expr::lit("ed")]),
        )
        .unwrap();
        assert_eq!(c.get(1), Value::Bool(true));
        assert_eq!(c.get(0), Value::Bool(false));
        let c = eval(&t(), &Expr::func(ScalarFunc::Length, vec![Expr::col("s")])).unwrap();
        assert_eq!(c.get(0), Value::Int(6));
    }

    #[test]
    fn substring_1_based() {
        let c = eval(
            &t(),
            &Expr::func(
                ScalarFunc::Substring,
                vec![Expr::col("s"), Expr::lit(1i64), Expr::lit(4i64)],
            ),
        )
        .unwrap();
        assert_eq!(c.get(0), Value::Str("driv".into()));
    }

    #[test]
    fn date_parts() {
        let c = eval(&t(), &Expr::func(ScalarFunc::Year, vec![Expr::col("d")])).unwrap();
        assert_eq!(c.get(0), Value::Int(1970));
        assert_eq!(c.get(1), Value::Int(1971));
    }

    #[test]
    fn bin_buckets_ints() {
        // The Figure 1 chart bins party_age into width-20 buckets.
        let ages = Table::new(vec![(
            "age",
            Column::from_opt_ints(vec![Some(18), Some(34), Some(60), None]),
        )])
        .unwrap();
        let c = eval(
            &ages,
            &Expr::func(ScalarFunc::Bin, vec![Expr::col("age"), Expr::lit(20i64)]),
        )
        .unwrap();
        assert_eq!(c.get(0), Value::Int(0));
        assert_eq!(c.get(1), Value::Int(20));
        assert_eq!(c.get(2), Value::Int(60));
        assert_eq!(c.get(3), Value::Null);
    }

    #[test]
    fn coalesce_first_valid() {
        let e = Expr::func(ScalarFunc::Coalesce, vec![Expr::col("a"), Expr::lit(-1i64)]);
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(2), Value::Int(-1));
        assert_eq!(c.get(0), Value::Int(1));
    }

    #[test]
    fn if_branches() {
        let e = Expr::func(
            ScalarFunc::If,
            vec![Expr::col("flag"), Expr::lit("yes"), Expr::lit("no")],
        );
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Str("yes".into()));
        assert_eq!(c.get(1), Value::Str("no".into()));
    }

    #[test]
    fn sqrt_of_negative_is_null() {
        let neg = Table::new(vec![("x", Column::from_floats(vec![-4.0, 9.0]))]).unwrap();
        let c = eval(&neg, &Expr::func(ScalarFunc::Sqrt, vec![Expr::col("x")])).unwrap();
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Float(3.0));
    }

    #[test]
    fn arity_enforced() {
        let e = Expr::func(ScalarFunc::Sqrt, vec![]);
        assert!(eval(&t(), &e).is_err());
    }

    #[test]
    fn predicate_requires_bool() {
        assert!(eval_predicate(&t(), &Expr::col("a")).is_err());
    }

    #[test]
    fn cast_in_expression() {
        let e = Expr::col("a").cast(DataType::Str);
        let c = eval(&t(), &e).unwrap();
        assert_eq!(c.get(0), Value::Str("1".into()));
        assert_eq!(c.get(2), Value::Null);
    }
}
