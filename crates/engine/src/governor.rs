//! Memory-budget governor for out-of-core operator execution.
//!
//! A [`MemoryGovernor`] is a process-wide budget that heavy operators
//! (hash join, group-by, sort) reserve transient state against before
//! choosing their in-memory fast path. When a reservation is refused the
//! operator falls back to its partitioned spill path, writing
//! intermediate partitions through the [`crate::blockio`] columnar block
//! format into a scoped spill directory.
//!
//! The governor's contract (DESIGN.md §14):
//!
//! * The budget covers **transient operator state** — hash indexes,
//!   partition buffers, sort runs — not operator inputs or outputs, which
//!   are `Arc`-shared tables whose lifetime the session layer manages.
//! * Reservations are RAII: dropping a [`Reservation`] returns its bytes.
//! * Refusal is advisory pressure, not failure: operators degrade to
//!   disk, they never error because memory was tight.
//! * Spill recursion is depth-capped ([`MemContext::max_recursion`]); a
//!   partition still over budget at the cap runs in memory with a forced
//!   reservation, so skewed keys degrade to over-admission, never to
//!   non-termination.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{EngineError, Result};

/// A process-wide memory budget operators reserve transient state against.
#[derive(Debug)]
pub struct MemoryGovernor {
    budget: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryGovernor {
    /// A governor with a hard byte budget.
    pub fn new(budget_bytes: u64) -> Arc<MemoryGovernor> {
        Arc::new(MemoryGovernor {
            budget: budget_bytes,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        })
    }

    /// A governor that always admits (budget `u64::MAX`).
    pub fn unlimited() -> Arc<MemoryGovernor> {
        MemoryGovernor::new(u64::MAX)
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Bytes still available under the budget.
    pub fn available(&self) -> u64 {
        self.budget.saturating_sub(self.used())
    }

    fn admit(self: &Arc<Self>, bytes: u64) -> Reservation {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        Reservation {
            governor: Arc::clone(self),
            bytes,
        }
    }

    /// Try to reserve `bytes`; `None` when the budget would be exceeded.
    /// A refused reservation is the signal to take a spill path.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<Reservation> {
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used.saturating_add(bytes) > self.budget {
                return None;
            }
            match self.used.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(used + bytes, Ordering::Relaxed);
                    return Some(Reservation {
                        governor: Arc::clone(self),
                        bytes,
                    });
                }
                Err(actual) => used = actual,
            }
        }
    }

    /// Reserve `bytes` unconditionally, possibly over-admitting past the
    /// budget. Used only at the spill recursion depth cap, where running
    /// a skewed partition in memory is the sole remaining option.
    pub fn reserve_force(self: &Arc<Self>, bytes: u64) -> Reservation {
        self.admit(bytes)
    }
}

/// RAII admission under a [`MemoryGovernor`]; dropping returns the bytes.
#[derive(Debug)]
pub struct Reservation {
    governor: Arc<MemoryGovernor>,
    bytes: u64,
}

impl Reservation {
    /// Bytes this reservation holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.governor.used.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Shared spill accounting. Counters only ever grow; callers diff
/// [`SpillMetrics::snapshot`]s to attribute activity to one operator.
#[derive(Debug, Default)]
pub struct SpillMetrics {
    bytes_spilled: AtomicU64,
    spill_partitions: AtomicU64,
    spill_events: AtomicU64,
}

/// Point-in-time copy of [`SpillMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillSnapshot {
    /// Bytes written to spill files.
    pub bytes_spilled: u64,
    /// Spill partitions (or sort runs) written.
    pub spill_partitions: u64,
    /// Operator executions that took a spill path.
    pub spill_events: u64,
}

impl SpillMetrics {
    /// Record one spill file of `bytes`.
    pub fn record_file(&self, bytes: u64) {
        self.bytes_spilled.fetch_add(bytes, Ordering::Relaxed);
        self.spill_partitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that an operator chose a spill path.
    pub fn record_event(&self) {
        self.spill_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> SpillSnapshot {
        SpillSnapshot {
            bytes_spilled: self.bytes_spilled.load(Ordering::Relaxed),
            spill_partitions: self.spill_partitions.load(Ordering::Relaxed),
            spill_events: self.spill_events.load(Ordering::Relaxed),
        }
    }
}

impl SpillSnapshot {
    /// Activity since `earlier`.
    pub fn delta_since(&self, earlier: SpillSnapshot) -> SpillSnapshot {
        SpillSnapshot {
            bytes_spilled: self.bytes_spilled - earlier.bytes_spilled,
            spill_partitions: self.spill_partitions - earlier.spill_partitions,
            spill_events: self.spill_events - earlier.spill_events,
        }
    }
}

/// Chaos hooks on the spill I/O paths. The storage layer implements this
/// over its `FaultInjector` so the chaos suite exercises out-of-core
/// recovery; an `io::Error` of kind [`io::ErrorKind::Interrupted`] is
/// surfaced as a *retryable* [`EngineError::Spill`], anything else as a
/// permanent one.
pub trait SpillHooks: Send + Sync {
    /// Called before each spill-file write.
    fn before_spill_write(&self) -> io::Result<()> {
        Ok(())
    }

    /// Called before each spill-file read.
    fn before_spill_read(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Map a spill-path I/O failure into an engine error, preserving
/// transience: interrupted writes/reads are retryable weather, everything
/// else (disk full, permission) is a hard failure.
pub fn spill_error(context: &str, e: io::Error) -> EngineError {
    EngineError::Spill {
        message: format!("{context}: {e}"),
        retryable: e.kind() == io::ErrorKind::Interrupted,
    }
}

/// Everything an operator needs to run out of core: the governor to
/// reserve against, a spill directory, shared metrics, tuning knobs, and
/// optional chaos hooks.
pub struct MemContext {
    /// Budget transient operator state is admitted against.
    pub governor: Arc<MemoryGovernor>,
    /// Root directory spill files are created under (per-operator
    /// subdirectories, removed as each operator finishes).
    pub spill_root: PathBuf,
    /// Shared spill accounting.
    pub metrics: SpillMetrics,
    /// Rows per block in spill files.
    pub spill_block_rows: usize,
    /// Partition fan-out per spill level.
    pub fanout: usize,
    /// Maximum spill recursion depth; at the cap, partitions run in
    /// memory under a forced reservation.
    pub max_recursion: u32,
    /// Chaos hooks on spill write/read.
    pub hooks: Option<Arc<dyn SpillHooks>>,
    /// When the context owns its root (temp-dir construction), the guard
    /// that removes it on drop.
    _root_guard: Option<ScopedSpillDir>,
}

impl std::fmt::Debug for MemContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemContext")
            .field("budget", &self.governor.budget())
            .field("spill_root", &self.spill_root)
            .field("metrics", &self.metrics.snapshot())
            .finish()
    }
}

impl MemContext {
    /// A context over an existing governor and spill root. The caller
    /// owns the root directory's lifetime.
    pub fn new(governor: Arc<MemoryGovernor>, spill_root: impl Into<PathBuf>) -> MemContext {
        MemContext {
            governor,
            spill_root: spill_root.into(),
            metrics: SpillMetrics::default(),
            spill_block_rows: 64 * 1024,
            fanout: 16,
            max_recursion: 4,
            hooks: None,
            _root_guard: None,
        }
    }

    /// A self-contained context with `budget_bytes` and a fresh temp spill
    /// directory that is removed when the context drops.
    pub fn with_budget(budget_bytes: u64) -> Result<MemContext> {
        let root = ScopedSpillDir::create_in(std::env::temp_dir(), "dc-spill")?;
        let path = root.path().to_path_buf();
        let mut ctx = MemContext::new(MemoryGovernor::new(budget_bytes), path);
        ctx._root_guard = Some(root);
        Ok(ctx)
    }

    /// Install chaos hooks on the spill I/O paths.
    pub fn with_hooks(mut self, hooks: Arc<dyn SpillHooks>) -> MemContext {
        self.hooks = Some(hooks);
        self
    }

    /// Create a fresh uniquely-named spill subdirectory for one operator
    /// execution. The returned guard removes it (and every file inside)
    /// on drop — including drops during panic unwinding, which is what
    /// keeps retried attempts from leaking partitions.
    pub fn op_dir(&self, label: &str) -> Result<ScopedSpillDir> {
        ScopedSpillDir::create_in(&self.spill_root, label)
    }

    /// Run the before-write hook, mapping failures to engine errors.
    pub fn check_spill_write(&self) -> Result<()> {
        if let Some(h) = &self.hooks {
            h.before_spill_write()
                .map_err(|e| spill_error("spill write", e))?;
        }
        Ok(())
    }

    /// Run the before-read hook, mapping failures to engine errors.
    pub fn check_spill_read(&self) -> Result<()> {
        if let Some(h) = &self.hooks {
            h.before_spill_read()
                .map_err(|e| spill_error("spill read", e))?;
        }
        Ok(())
    }
}

/// Process-unique suffix counter for spill directory names.
static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named directory removed (recursively) on drop. `Drop` runs
/// during unwinding too, so spill files cannot outlive a panicking or
/// retried operator attempt.
#[derive(Debug)]
pub struct ScopedSpillDir {
    path: PathBuf,
}

impl ScopedSpillDir {
    /// Create `parent/<label>-<pid>-<n>` (and `parent` itself if needed).
    pub fn create_in(parent: impl AsRef<Path>, label: &str) -> Result<ScopedSpillDir> {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = parent
            .as_ref()
            .join(format!("{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).map_err(|e| spill_error("spill dir create", e))?;
        Ok(ScopedSpillDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Files currently inside (recursive), for leak checks in tests.
    pub fn live_files(&self) -> Vec<PathBuf> {
        fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
            let Ok(entries) = std::fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    walk(&p, out);
                } else {
                    out.push(p);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.path, &mut out);
        out
    }
}

impl Drop for ScopedSpillDir {
    fn drop(&mut self) {
        // Best-effort: a failed removal must not turn cleanup into a
        // second panic mid-unwind.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_are_raii() {
        let gov = MemoryGovernor::new(100);
        let r = gov.try_reserve(60).expect("fits");
        assert_eq!(gov.used(), 60);
        assert!(gov.try_reserve(50).is_none());
        let r2 = gov.try_reserve(40).expect("exactly fits");
        assert_eq!(gov.available(), 0);
        drop(r);
        assert_eq!(gov.used(), 40);
        drop(r2);
        assert_eq!(gov.used(), 0);
        assert_eq!(gov.peak(), 100);
    }

    #[test]
    fn force_reserve_over_admits() {
        let gov = MemoryGovernor::new(10);
        let r = gov.reserve_force(1000);
        assert_eq!(gov.used(), 1000);
        assert_eq!(r.bytes(), 1000);
        drop(r);
        assert_eq!(gov.used(), 0);
    }

    #[test]
    fn unlimited_always_admits() {
        let gov = MemoryGovernor::unlimited();
        assert!(gov.try_reserve(u64::MAX / 2).is_some());
    }

    #[test]
    fn scoped_dir_removed_on_drop_and_panic() {
        let ctx = MemContext::with_budget(1024).unwrap();
        let root = ctx.spill_root.clone();
        let dir = ctx.op_dir("join").unwrap();
        let kept = dir.path().to_path_buf();
        std::fs::write(dir.path().join("p0.dcb"), b"x").unwrap();
        assert_eq!(dir.live_files().len(), 1);
        drop(dir);
        assert!(!kept.exists(), "op dir must be removed on drop");

        // Unwinding drops the guard too.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let dir = ctx.op_dir("sort").unwrap();
            std::fs::write(dir.path().join("run0.dcb"), b"y").unwrap();
            let p = dir.path().to_path_buf();
            panic!("boom {}", p.display());
        }));
        assert!(result.is_err());
        let leaked: Vec<_> = std::fs::read_dir(&root).unwrap().flatten().collect();
        assert!(leaked.is_empty(), "panic leaked spill dirs: {leaked:?}");
        drop(ctx);
        assert!(!root.exists(), "context root must be removed on drop");
    }

    #[test]
    fn metrics_delta() {
        let m = SpillMetrics::default();
        let before = m.snapshot();
        m.record_event();
        m.record_file(100);
        m.record_file(24);
        let d = m.snapshot().delta_since(before);
        assert_eq!(d.bytes_spilled, 124);
        assert_eq!(d.spill_partitions, 2);
        assert_eq!(d.spill_events, 1);
    }
}
