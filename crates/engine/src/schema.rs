//! Schemas: ordered, named, typed fields.

use std::fmt;

use crate::dtype::DataType;
use crate::error::{EngineError, Result};

/// A named, typed field in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.dtype)
    }
}

/// An ordered collection of fields. Column names are unique and matched
/// case-insensitively on lookup (GEL users type `Party_Sobriety` and
/// `party_sobriety` interchangeably) while preserving declared casing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// An empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Build from fields, rejecting duplicate names (case-insensitive).
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut s = Schema::empty();
        for f in fields {
            s.push(f)?;
        }
        Ok(s)
    }

    /// Append a field, rejecting duplicates.
    pub fn push(&mut self, field: Field) -> Result<()> {
        if self.index_of(&field.name).is_some() {
            return Err(EngineError::DuplicateColumn { name: field.name });
        }
        self.fields.push(field);
        Ok(())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Field by case-insensitive name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field by name, erroring when absent.
    pub fn field_or_err(&self, name: &str) -> Result<&Field> {
        self.field(name)
            .ok_or_else(|| EngineError::column_not_found(name))
    }

    /// Field at position `i`.
    pub fn field_at(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Whether two schemas are compatible for concatenation: same names
    /// (case-insensitive, same order) and unifiable types.
    pub fn concat_compatible(&self, other: &Schema) -> Result<Schema> {
        if self.len() != other.len() {
            return Err(EngineError::schema_mismatch(format!(
                "column count differs: {} vs {}",
                self.len(),
                other.len()
            )));
        }
        let mut out = Schema::empty();
        for (a, b) in self.fields.iter().zip(other.fields.iter()) {
            if !a.name.eq_ignore_ascii_case(&b.name) {
                return Err(EngineError::schema_mismatch(format!(
                    "column name differs: {} vs {}",
                    a.name, b.name
                )));
            }
            let dtype = a.dtype.unify(b.dtype).ok_or_else(|| {
                EngineError::schema_mismatch(format!(
                    "column {} has incompatible types {} vs {}",
                    a.name, a.dtype, b.dtype
                ))
            })?;
            out.push(Field::new(a.name.clone(), dtype))?;
        }
        Ok(out)
    }

    /// Generate a column name not already present, based on `base`
    /// (`base`, `base_2`, `base_3`, ...). Used by skills that create
    /// computed columns when the user supplies no name.
    pub fn fresh_name(&self, base: &str) -> String {
        if self.index_of(base).is_none() {
            return base.to_string();
        }
        let mut i = 2usize;
        loop {
            let candidate = format!("{base}_{i}");
            if self.index_of(&candidate).is_none() {
                return candidate;
            }
            i += 1;
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("party_type", DataType::Str),
            Field::new("at_fault", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("PARTY_TYPE"), Some(1));
        assert_eq!(s.field("At_Fault").unwrap().dtype, DataType::Bool);
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn rejects_duplicates() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("A", DataType::Str),
        ]);
        assert!(matches!(r, Err(EngineError::DuplicateColumn { .. })));
    }

    #[test]
    fn concat_compatible_unifies() {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let b = Schema::new(vec![Field::new("X", DataType::Float)]).unwrap();
        let u = a.concat_compatible(&b).unwrap();
        assert_eq!(u.field_at(0).dtype, DataType::Float);
    }

    #[test]
    fn concat_incompatible() {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let b = Schema::new(vec![Field::new("y", DataType::Int)]).unwrap();
        assert!(a.concat_compatible(&b).is_err());
        let c = Schema::new(vec![Field::new("x", DataType::Str)]).unwrap();
        assert!(a.concat_compatible(&c).is_err());
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let s = sample();
        assert_eq!(s.fresh_name("new_col"), "new_col");
        assert_eq!(s.fresh_name("id"), "id_2");
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        assert_eq!(s.to_string(), "(x: Int)");
    }
}
