//! CSV reading and writing with type inference.
//!
//! Implements the `Load data from the file <name>` skill's parsing layer:
//! RFC-4180-style quoting, header row, and per-column type inference over
//! the whole file (Int ⊂ Float ⊂ Str; dates recognized in the formats
//! accepted by [`crate::date::parse_date`]).

use crate::column::Column;
use crate::date::parse_date;
use crate::dtype::DataType;
use crate::error::{EngineError, Result};
use crate::table::Table;
use crate::value::Value;

/// Parse CSV text into raw records (fields as strings; empty = missing).
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        // Embedded quote in unquoted field: take literally.
                        field.push('"');
                    }
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(EngineError::parse("unterminated quoted field"));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any {
        return Err(EngineError::parse("empty CSV input"));
    }
    // Drop fully-empty trailing lines.
    while records
        .last()
        .is_some_and(|r| r.len() == 1 && r[0].is_empty())
    {
        records.pop();
    }
    Ok(records)
}

/// Infer the narrowest type that parses every non-empty sample.
fn infer_type(samples: &[&str]) -> DataType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_date = true;
    let mut all_bool = true;
    let mut any = false;
    for s in samples {
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        any = true;
        if all_int && s.parse::<i64>().is_err() {
            all_int = false;
        }
        if all_float && s.parse::<f64>().is_err() {
            all_float = false;
        }
        if all_date && parse_date(s).is_err() {
            all_date = false;
        }
        if all_bool
            && !matches!(
                s.to_ascii_lowercase().as_str(),
                "true" | "false" | "yes" | "no"
            )
        {
            all_bool = false;
        }
    }
    if !any {
        return DataType::Str;
    }
    if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else if all_date {
        DataType::Date
    } else {
        DataType::Str
    }
}

fn parse_cell(s: &str, dtype: DataType) -> Value {
    let s = s.trim();
    if s.is_empty() || s.eq_ignore_ascii_case("null") || s.eq_ignore_ascii_case("na") {
        return Value::Null;
    }
    match dtype {
        DataType::Bool => match s.to_ascii_lowercase().as_str() {
            "true" | "yes" => Value::Bool(true),
            "false" | "no" => Value::Bool(false),
            _ => Value::Null,
        },
        DataType::Int => s.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        DataType::Float => s.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        DataType::Date => parse_date(s).map(Value::Date).unwrap_or(Value::Null),
        DataType::Str => Value::Str(s.to_string()),
    }
}

/// Read CSV text (with a header row) into a table, inferring column types.
pub fn read_csv(text: &str) -> Result<Table> {
    let records = parse_records(text)?;
    let Some((header, rows)) = records.split_first() else {
        return Err(EngineError::parse("CSV has no header row"));
    };
    let ncols = header.len();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != ncols {
            return Err(EngineError::parse(format!(
                "row {} has {} fields, expected {ncols}",
                i + 2,
                r.len()
            )));
        }
    }
    // Infer per-column type. "null"/"na" markers count as missing.
    let mut out = Table::empty();
    for (c, raw_name) in header.iter().enumerate() {
        let samples: Vec<&str> = rows
            .iter()
            .map(|r| r[c].as_str())
            .filter(|s| {
                let t = s.trim();
                !(t.is_empty() || t.eq_ignore_ascii_case("null") || t.eq_ignore_ascii_case("na"))
            })
            .collect();
        let dtype = infer_type(&samples);
        let mut col = Column::empty(dtype);
        for r in rows {
            col.push_value(&parse_cell(&r[c], dtype))?;
        }
        // String columns leave ingest dictionary-encoded so every
        // downstream kernel starts from the cheap representation.
        let col = col.dict_encode();
        let name = if raw_name.trim().is_empty() {
            format!("column_{}", c + 1)
        } else {
            raw_name.trim().to_string()
        };
        let name = out.schema().fresh_name(&name);
        out.add_column(&name, col)?;
    }
    Ok(out)
}

/// Write a table as CSV text (header + rows, RFC-4180 quoting).
pub fn write_csv(table: &Table) -> String {
    fn quote(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for r in 0..table.num_rows() {
        let cells: Vec<String> = table
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(r);
                if v.is_null() {
                    String::new()
                } else {
                    quote(&v.render())
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_inference() {
        let t = read_csv("a,b,c,d\n1,1.5,hello,2020-01-01\n2,2.5,world,2020-06-15\n").unwrap();
        assert_eq!(t.column("a").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("b").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("c").unwrap().dtype(), DataType::Str);
        assert_eq!(t.column("d").unwrap().dtype(), DataType::Date);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn missing_values_become_null() {
        let t = read_csv("x,y\n1,\n,b\nnull,c\n").unwrap();
        assert_eq!(t.value(0, "y").unwrap(), Value::Null);
        assert_eq!(t.value(1, "x").unwrap(), Value::Null);
        assert_eq!(t.value(2, "x").unwrap(), Value::Null);
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Int);
    }

    #[test]
    fn quoted_fields() {
        let t = read_csv("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\nplain,ok\n").unwrap();
        assert_eq!(
            t.value(0, "name").unwrap(),
            Value::Str("Smith, John".into())
        );
        assert_eq!(
            t.value(0, "notes").unwrap(),
            Value::Str("said \"hi\"".into())
        );
    }

    #[test]
    fn quoted_newline_inside_field() {
        let t = read_csv("a,b\n\"line1\nline2\",x\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "a").unwrap(), Value::Str("line1\nline2".into()));
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_csv("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "b").unwrap(), Value::Int(4));
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(read_csv("a,b\n1\n").is_err());
        assert!(read_csv("a,b\n1,2,3\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv("a\n\"oops\n").is_err());
        assert!(read_csv("").is_err());
    }

    #[test]
    fn bool_inference() {
        let t = read_csv("flag\ntrue\nno\n").unwrap();
        assert_eq!(t.column("flag").unwrap().dtype(), DataType::Bool);
        assert_eq!(t.value(1, "flag").unwrap(), Value::Bool(false));
    }

    #[test]
    fn duplicate_and_blank_headers_renamed() {
        let t = read_csv("a,a,\n1,2,3\n").unwrap();
        assert_eq!(t.schema().names(), vec!["a", "a_2", "column_3"]);
    }

    #[test]
    fn roundtrip() {
        let original = read_csv("a,b\n1,\"x,y\"\n,plain\n").unwrap();
        let text = write_csv(&original);
        let back = read_csv(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn mixed_int_float_widens() {
        let t = read_csv("v\n1\n2.5\n").unwrap();
        assert_eq!(t.column("v").unwrap().dtype(), DataType::Float);
    }

    #[test]
    fn no_trailing_newline() {
        let t = read_csv("a,b\n1,2").unwrap();
        assert_eq!(t.num_rows(), 1);
    }
}
