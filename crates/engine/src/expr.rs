//! Expression AST.
//!
//! Expressions are the leaf language under every skill: filter predicates,
//! computed columns, aggregate arguments, and the formulas in the Visualize
//! skill's KPI phrases all lower to this AST, which the evaluator in
//! [`crate::eval`] executes vectorized against a [`crate::table::Table`].

use std::fmt;

use crate::dtype::DataType;
use crate::value::Value;

pub mod prune;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    /// Whether this operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | Neq | Lt | Le | Gt | Ge)
    }

    /// Whether this operator combines booleans.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Eq => "=",
            Neq => "<>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            And => "AND",
            Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Boolean NOT (three-valued).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    Abs,
    Ceil,
    Floor,
    Round,
    Sqrt,
    Ln,
    Exp,
    Pow,
    Lower,
    Upper,
    Trim,
    Length,
    Concat,
    Contains,
    StartsWith,
    EndsWith,
    Replace,
    Substring,
    /// Year of a date.
    Year,
    /// Month (1-12) of a date.
    Month,
    /// Day of month of a date.
    Day,
    /// First non-null argument.
    Coalesce,
    /// `if(cond, then, else)`.
    If,
    /// `bin(x, width)`: lower bound of the width-sized bucket containing
    /// `x` (powers the `party_ageInt20`-style binned axes of Figure 1).
    Bin,
}

impl ScalarFunc {
    /// Canonical lowercase name (used by SQL generation and GEL parsing).
    pub fn name(self) -> &'static str {
        use ScalarFunc::*;
        match self {
            Abs => "abs",
            Ceil => "ceil",
            Floor => "floor",
            Round => "round",
            Sqrt => "sqrt",
            Ln => "ln",
            Exp => "exp",
            Pow => "pow",
            Lower => "lower",
            Upper => "upper",
            Trim => "trim",
            Length => "length",
            Concat => "concat",
            Contains => "contains",
            StartsWith => "starts_with",
            EndsWith => "ends_with",
            Replace => "replace",
            Substring => "substring",
            Year => "year",
            Month => "month",
            Day => "day",
            Coalesce => "coalesce",
            If => "if",
            Bin => "bin",
        }
    }

    /// Look up a function by case-insensitive name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        use ScalarFunc::*;
        let all = [
            Abs, Ceil, Floor, Round, Sqrt, Ln, Exp, Pow, Lower, Upper, Trim, Length, Concat,
            Contains, StartsWith, EndsWith, Replace, Substring, Year, Month, Day, Coalesce, If,
            Bin,
        ];
        all.into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(name))
    }

    /// Expected argument count range `(min, max)`.
    pub fn arity(self) -> (usize, usize) {
        use ScalarFunc::*;
        match self {
            Abs | Ceil | Floor | Sqrt | Ln | Exp | Lower | Upper | Trim | Length | Year | Month
            | Day => (1, 1),
            Round => (1, 2),
            Pow | Contains | StartsWith | EndsWith | Bin => (2, 2),
            Replace | Substring | If => (3, 3),
            Concat | Coalesce => (1, usize::MAX),
        }
    }
}

/// An expression tree evaluated against a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by (case-insensitive) name.
    Column(String),
    /// A constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Scalar function call.
    Func { func: ScalarFunc, args: Vec<Expr> },
    /// Explicit cast.
    Cast { expr: Box<Expr>, to: DataType },
    /// `expr IS NULL` (never itself null).
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// `expr IN (v1, v2, ...)`, optionally negated.
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive), optionally negated.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Build a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Eq, other)
    }
    /// `self <> other`.
    pub fn neq(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Neq, other)
    }
    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Lt, other)
    }
    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Le, other)
    }
    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Gt, other)
    }
    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Ge, other)
    }
    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, other)
    }
    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Or, other)
    }
    /// `self + other`.
    #[allow(clippy::should_implement_trait)] // builder method, not an operator impl
    pub fn add(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Add, other)
    }
    /// `self - other`.
    #[allow(clippy::should_implement_trait)] // builder method, not an operator impl
    pub fn sub(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Sub, other)
    }
    /// `self * other`.
    #[allow(clippy::should_implement_trait)] // builder method, not an operator impl
    pub fn mul(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Mul, other)
    }
    /// `self / other`.
    #[allow(clippy::should_implement_trait)] // builder method, not an operator impl
    pub fn div(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Div, other)
    }
    /// Boolean negation.
    #[allow(clippy::should_implement_trait)] // builder method, not an operator impl
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }
    /// `self BETWEEN low AND high`.
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(self),
            low: Box::new(low),
            high: Box::new(high),
            negated: false,
        }
    }
    /// `self IN (list)`.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }
    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self IS NOT NULL`.
    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }
    /// Scalar function call.
    pub fn func(func: ScalarFunc, args: Vec<Expr>) -> Expr {
        Expr::Func { func, args }
    }
    /// Explicit cast.
    pub fn cast(self, to: DataType) -> Expr {
        Expr::Cast {
            expr: Box::new(self),
            to,
        }
    }

    /// Collect every column name referenced in the tree (used by skill-DAG
    /// slicing to decide which upstream steps an artifact depends on).
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.iter().any(|c| c.eq_ignore_ascii_case(name)) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Unary { expr, .. } => expr.referenced_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Cast { expr, .. } => expr.referenced_columns(out),
            Expr::IsNull(e) | Expr::IsNotNull(e) => e.referenced_columns(out),
            Expr::InList { expr, .. } => expr.referenced_columns(out),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
        }
    }

    /// Render as a SQL fragment (quoting identifiers, escaping strings).
    pub fn to_sql(&self) -> String {
        match self {
            Expr::Column(name) => quote_ident(name),
            Expr::Literal(v) => sql_literal(v),
            Expr::Binary { left, op, right } => {
                format!("({} {} {})", left.to_sql(), op.sql(), right.to_sql())
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => format!("(NOT {})", expr.to_sql()),
                UnaryOp::Neg => format!("(-{})", expr.to_sql()),
            },
            Expr::Func { func, args } => {
                let args: Vec<String> = args.iter().map(|a| a.to_sql()).collect();
                format!("{}({})", func.name(), args.join(", "))
            }
            Expr::Cast { expr, to } => format!("CAST({} AS {})", expr.to_sql(), to.name()),
            Expr::IsNull(e) => format!("({} IS NULL)", e.to_sql()),
            Expr::IsNotNull(e) => format!("({} IS NOT NULL)", e.to_sql()),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(sql_literal).collect();
                format!(
                    "({} {}IN ({}))",
                    expr.to_sql(),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => format!(
                "({} {}BETWEEN {} AND {})",
                expr.to_sql(),
                if *negated { "NOT " } else { "" },
                low.to_sql(),
                high.to_sql()
            ),
        }
    }
}

/// Quote a SQL identifier.
pub fn quote_ident(name: &str) -> String {
    let simple = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.chars().next().unwrap().is_ascii_digit();
    if simple {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// Render a value as a SQL literal.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{}'", crate::date::format_date(*d)),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composition() {
        let e = Expr::col("age")
            .ge(Expr::lit(18i64))
            .and(Expr::col("party_type").eq(Expr::lit("driver")));
        assert_eq!(e.to_sql(), "((age >= 18) AND (party_type = 'driver'))");
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("a").add(Expr::col("A")).mul(Expr::col("b"));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn sql_literal_escaping() {
        assert_eq!(sql_literal(&Value::Str("it's".into())), "'it''s'");
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::Date(0)), "DATE '1970-01-01'");
    }

    #[test]
    fn quote_ident_rules() {
        assert_eq!(quote_ident("party_type"), "party_type");
        assert_eq!(quote_ident("2col"), "\"2col\"");
        assert_eq!(quote_ident("has space"), "\"has space\"");
        assert_eq!(quote_ident("has\"quote"), "\"has\"\"quote\"");
    }

    #[test]
    fn func_lookup() {
        assert_eq!(ScalarFunc::from_name("LOWER"), Some(ScalarFunc::Lower));
        assert_eq!(ScalarFunc::from_name("nope"), None);
        assert_eq!(ScalarFunc::If.arity(), (3, 3));
    }

    #[test]
    fn between_and_in_sql() {
        let e = Expr::col("x").between(Expr::lit(1i64), Expr::lit(5i64));
        assert_eq!(e.to_sql(), "(x BETWEEN 1 AND 5)");
        let e = Expr::col("c").in_list(vec![Value::Str("a".into()), Value::Str("b".into())]);
        assert_eq!(e.to_sql(), "(c IN ('a', 'b'))");
    }
}
