//! Tri-state zone-map evaluation of predicates over per-block statistics.
//!
//! A *zone map* summarizes one block of one column: the min/max of its
//! valid values plus a null count. Given those summaries, a predicate can
//! often be decided for the whole block without reading a single row:
//!
//! * [`Tri::AllFalse`] — no row of the block can satisfy the predicate
//!   (every row evaluates to FALSE or NULL, both of which a filter
//!   drops), so the scan may skip the block entirely;
//! * [`Tri::AllTrue`] — every row satisfies it (requires proving no row
//!   evaluates to NULL), so the scan may keep the block without
//!   row-level filtering;
//! * [`Tri::Unknown`] — the statistics are inconclusive; scan and filter.
//!
//! The evaluator is deliberately conservative under SQL's three-valued
//! logic: claims are only made when they hold for *every possible* block
//! matching the statistics. Anything it cannot reason about — scalar
//! functions, casts, arithmetic, column-vs-column comparisons,
//! cross-type comparisons (which the engine reports as errors and
//! pruning must not silence) — degrades to [`Tri::Unknown`].
//!
//! This module lives in `dc-engine` so both the storage scan and the
//! static analyzer (lint DC0204) share one definition of "prunable".

use crate::dtype::DataType;
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::value::Value;
use std::cmp::Ordering;

/// Verdict of a zone-map check for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Every row satisfies the predicate (and none evaluates to NULL).
    AllTrue,
    /// No row satisfies the predicate.
    AllFalse,
    /// Cannot decide from statistics alone.
    Unknown,
}

impl Tri {
    /// Kleene AND over whole-block claims.
    pub fn and(self, other: Tri) -> Tri {
        use Tri::*;
        match (self, other) {
            (AllFalse, _) | (_, AllFalse) => AllFalse,
            (AllTrue, AllTrue) => AllTrue,
            _ => Unknown,
        }
    }

    /// Kleene OR over whole-block claims.
    pub fn or(self, other: Tri) -> Tri {
        use Tri::*;
        match (self, other) {
            (AllTrue, _) | (_, AllTrue) => AllTrue,
            (AllFalse, AllFalse) => AllFalse,
            _ => Unknown,
        }
    }

    /// Kleene NOT. `AllFalse` means "every row is FALSE *or NULL*", and
    /// NOT NULL is still NULL, so only `AllTrue` flips decisively.
    #[allow(clippy::should_implement_trait)] // mirrors Expr::not, not an operator impl
    pub fn not(self) -> Tri {
        match self {
            Tri::AllTrue => Tri::AllFalse,
            _ => Tri::Unknown,
        }
    }
}

/// Per-block statistics for one column, as seen by the evaluator.
///
/// `min`/`max` cover the *valid* (non-null) values only; `None` means no
/// bounds are available (all-null block, unsupported dtype, or a float
/// block containing NaN). Dictionary-coded columns translate their code
/// range to the corresponding strings before reaching this struct.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Declared column type (used to rule out comparisons the engine
    /// would reject at runtime).
    pub dtype: DataType,
    /// Smallest valid value in the block, if known.
    pub min: Option<Value>,
    /// Largest valid value in the block, if known.
    pub max: Option<Value>,
    /// Number of null rows in the block.
    pub null_count: u64,
    /// Total rows in the block.
    pub row_count: u64,
}

impl ColumnStats {
    fn all_null(&self) -> bool {
        self.null_count >= self.row_count
    }
}

/// Source of per-column statistics for the block under consideration.
/// Returning `None` for a column makes every claim about it `Unknown`.
pub type StatsLookup<'a> = dyn Fn(&str) -> Option<ColumnStats> + 'a;

/// Evaluate `expr` against one block's statistics.
///
/// The contract is directional soundness: `AllFalse` is only returned
/// when no row of the block can evaluate to TRUE, and `AllTrue` only
/// when every row evaluates to TRUE. `Unknown` is always safe.
pub fn prune_predicate(expr: &Expr, stats: &StatsLookup) -> Tri {
    match expr {
        Expr::Literal(Value::Bool(true)) => Tri::AllTrue,
        Expr::Literal(Value::Bool(false)) => Tri::AllFalse,
        // A NULL predicate keeps no rows. (Non-bool literals would be a
        // runtime type error, which pruning must preserve: Unknown.)
        Expr::Literal(Value::Null) => Tri::AllFalse,
        Expr::Binary { left, op, right } if op.is_logical() => {
            let l = prune_predicate(left, stats);
            let r = prune_predicate(right, stats);
            match op {
                BinaryOp::And => l.and(r),
                _ => l.or(r),
            }
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            prune_comparison(left, *op, right, stats)
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => prune_predicate(expr, stats).not(),
        Expr::IsNull(inner) => match column_stats(inner, stats) {
            Some(s) if s.all_null() => Tri::AllTrue,
            Some(s) if s.null_count == 0 && s.row_count > 0 => Tri::AllFalse,
            _ => Tri::Unknown,
        },
        Expr::IsNotNull(inner) => match column_stats(inner, stats) {
            Some(s) if s.null_count == 0 => Tri::AllTrue,
            Some(s) if s.all_null() && s.row_count > 0 => Tri::AllFalse,
            _ => Tri::Unknown,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // x BETWEEN a AND b  ==  x >= a AND x <= b; the negation is
            // its Kleene NOT, equivalent to x < a OR x > b.
            let ge = prune_comparison(expr, BinaryOp::Ge, low, stats);
            let le = prune_comparison(expr, BinaryOp::Le, high, stats);
            if *negated {
                let lt = prune_comparison(expr, BinaryOp::Lt, low, stats);
                let gt = prune_comparison(expr, BinaryOp::Gt, high, stats);
                lt.or(gt)
            } else {
                ge.and(le)
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => prune_in_list(expr, list, *negated, stats),
        _ => Tri::Unknown,
    }
}

/// Stats for an expression, but only when it is a bare column reference.
fn column_stats(expr: &Expr, stats: &StatsLookup) -> Option<ColumnStats> {
    match expr {
        Expr::Column(name) => stats(name),
        _ => None,
    }
}

/// Whether the engine's comparison kernels accept `col_dtype ⚬ lit`
/// without erroring (same type, or both numeric). Pruning a comparison
/// the engine would reject would silently swallow the error.
fn comparable(col_dtype: DataType, lit: &Value) -> bool {
    let Some(lit_dtype) = lit.dtype() else {
        return false;
    };
    col_dtype.unify(lit_dtype).is_some() || (col_dtype.is_numeric() && lit_dtype.is_numeric())
}

/// Tri-state for `left ⚬ right` where one side is a column and the
/// other a non-null literal (flipped operators handle `lit ⚬ col`).
/// Everything else — including NULL literals, whose broadcast dtype the
/// engine may still type-check — is `Unknown`.
fn prune_comparison(left: &Expr, op: BinaryOp, right: &Expr, stats: &StatsLookup) -> Tri {
    let (col, lit, op) = match (left, right) {
        (Expr::Column(c), Expr::Literal(v)) => (c, v, op),
        (Expr::Literal(v), Expr::Column(c)) => (c, v, flip(op)),
        _ => return Tri::Unknown,
    };
    if lit.is_null() {
        return Tri::Unknown;
    }
    let Some(s) = stats(col) else {
        return Tri::Unknown;
    };
    if !comparable(s.dtype, lit) {
        return Tri::Unknown;
    }
    // All-null block: every comparison row evaluates to NULL → dropped.
    if s.all_null() {
        return Tri::AllFalse;
    }
    let (Some(min), Some(max)) = (&s.min, &s.max) else {
        return Tri::Unknown;
    };
    let (Some(min_lit), Some(max_lit)) = (min.partial_cmp_sql(lit), max.partial_cmp_sql(lit))
    else {
        return Tri::Unknown;
    };
    use Ordering::*;
    // `holds_none`: no valid row can satisfy the comparison.
    // `holds_all`: every valid row satisfies it (AllTrue additionally
    // requires the block to have no nulls).
    let (holds_none, holds_all) = match op {
        BinaryOp::Eq => (
            min_lit == Greater || max_lit == Less,
            min_lit == Equal && max_lit == Equal,
        ),
        BinaryOp::Neq => (
            min_lit == Equal && max_lit == Equal,
            min_lit == Greater || max_lit == Less,
        ),
        BinaryOp::Lt => (min_lit != Less, max_lit == Less),
        BinaryOp::Le => (min_lit == Greater, max_lit != Greater),
        BinaryOp::Gt => (max_lit != Greater, min_lit == Greater),
        BinaryOp::Ge => (max_lit == Less, min_lit != Less),
        _ => (false, false),
    };
    if holds_none {
        Tri::AllFalse
    } else if holds_all && s.null_count == 0 {
        Tri::AllTrue
    } else {
        Tri::Unknown
    }
}

/// Mirror an operator across its operands: `lit ⚬ col` → `col ⚬' lit`.
fn flip(op: BinaryOp) -> BinaryOp {
    use BinaryOp::*;
    match op {
        Lt => Gt,
        Le => Ge,
        Gt => Lt,
        Ge => Le,
        other => other,
    }
}

/// Tri-state for `col [NOT] IN (list)` under the engine's semantics: a
/// match yields TRUE/FALSE by `negated`; a non-match with a NULL element
/// in the list yields NULL; a NULL row yields NULL.
fn prune_in_list(expr: &Expr, list: &[Value], negated: bool, stats: &StatsLookup) -> Tri {
    let Some(s) = column_stats(expr, stats) else {
        return Tri::Unknown;
    };
    if s.all_null() && s.row_count > 0 {
        return Tri::AllFalse;
    }
    let list_has_null = list.iter().any(|v| v.is_null());
    let (Some(min), Some(max)) = (&s.min, &s.max) else {
        return Tri::Unknown;
    };
    // An element can only match a row if it is non-null, comparable with
    // the column, and inside the block's [min, max] envelope.
    let may_match = |v: &Value| -> bool {
        if v.is_null() || !comparable(s.dtype, v) {
            return false;
        }
        match (min.partial_cmp_sql(v), max.partial_cmp_sql(v)) {
            (Some(lo), Some(hi)) => lo != Ordering::Greater && hi != Ordering::Less,
            _ => true, // can't bound it: assume it may match
        }
    };
    let any_may_match = list.iter().any(may_match);
    if !negated {
        // IN: TRUE requires a match; no candidate element → AllFalse.
        if !any_may_match {
            return Tri::AllFalse;
        }
        // Single-valued block fully contained in the list.
        if s.null_count == 0
            && min.partial_cmp_sql(max) == Some(Ordering::Equal)
            && list
                .iter()
                .any(|v| !v.is_null() && min.partial_cmp_sql(v) == Some(Ordering::Equal))
        {
            return Tri::AllTrue;
        }
        Tri::Unknown
    } else {
        // NOT IN: a NULL element means no row is ever TRUE.
        if list_has_null {
            return Tri::AllFalse;
        }
        // Every valid row matches the single list value → all FALSE.
        if min.partial_cmp_sql(max) == Some(Ordering::Equal)
            && list
                .iter()
                .any(|v| !v.is_null() && min.partial_cmp_sql(v) == Some(Ordering::Equal))
        {
            return Tri::AllFalse;
        }
        // TRUE for every row needs: no nulls anywhere and no element
        // that could match any row.
        if s.null_count == 0 && !any_may_match {
            return Tri::AllTrue;
        }
        Tri::Unknown
    }
}

/// Flatten nested `AND`s into their conjunct list.
pub fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Re-assemble conjuncts into a single `AND` tree (None when empty).
pub fn conjoin(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let first = if conjuncts.is_empty() {
        return None;
    } else {
        conjuncts.remove(0)
    };
    Some(conjuncts.into_iter().fold(first, |acc, c| acc.and(c)))
}

/// Negation normal form under Kleene three-valued logic: pushes `NOT`
/// through AND/OR (De Morgan), flips comparisons (`NOT (a < b)` ≡
/// `a >= b`, identical even when either side is NULL), and toggles the
/// `negated` flags of BETWEEN / IN / IS NULL. Sub-expressions it cannot
/// rewrite keep their `NOT`.
pub fn nnf(expr: Expr) -> Expr {
    match expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: inner,
        } => negate(*inner),
        Expr::Binary { left, op, right } if op.is_logical() => Expr::Binary {
            left: Box::new(nnf(*left)),
            op,
            right: Box::new(nnf(*right)),
        },
        other => other,
    }
}

fn negate(expr: Expr) -> Expr {
    use BinaryOp::*;
    match expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: inner,
        } => nnf(*inner),
        Expr::Binary { left, op, right } if op.is_logical() => {
            let flipped = if op == And { Or } else { And };
            Expr::Binary {
                left: Box::new(negate(*left)),
                op: flipped,
                right: Box::new(negate(*right)),
            }
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let neg = match op {
                Eq => Neq,
                Neq => Eq,
                Lt => Ge,
                Le => Gt,
                Gt => Le,
                Ge => Lt,
                other => other,
            };
            Expr::Binary {
                left,
                op: neg,
                right,
            }
        }
        Expr::IsNull(e) => Expr::IsNotNull(e),
        Expr::IsNotNull(e) => Expr::IsNull(e),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr,
            low,
            high,
            negated: !negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr,
            list,
            negated: !negated,
        },
        Expr::Literal(Value::Bool(b)) => Expr::Literal(Value::Bool(!b)),
        other => other.not(),
    }
}

/// Whether a conjunct has a *form* zone maps can ever act on: a
/// column-vs-literal comparison (non-null literal), BETWEEN / IN / IS
/// NULL on a bare column, a boolean literal, or AND/OR of prunable
/// parts (OR needs both arms, since a verdict requires both).
pub fn is_prunable(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(Value::Bool(_)) => true,
        Expr::Binary { left, op, right } if op.is_comparison() => matches!(
            (left.as_ref(), right.as_ref()),
            (Expr::Column(_), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(_))
                if !v.is_null()
        ),
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => is_prunable(left) || is_prunable(right),
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => is_prunable(left) && is_prunable(right),
        Expr::IsNull(inner) | Expr::IsNotNull(inner) => matches!(inner.as_ref(), Expr::Column(_)),
        Expr::Between {
            expr, low, high, ..
        } => {
            matches!(expr.as_ref(), Expr::Column(_))
                && matches!(low.as_ref(), Expr::Literal(v) if !v.is_null())
                && matches!(high.as_ref(), Expr::Literal(v) if !v.is_null())
        }
        Expr::InList { expr, .. } => matches!(expr.as_ref(), Expr::Column(_)),
        _ => false,
    }
}

/// The conjuncts of `expr` a zone-mapped scan could act on, in order.
pub fn prunable_conjuncts(expr: &Expr) -> Vec<Expr> {
    split_conjuncts(expr)
        .into_iter()
        .filter(|c| is_prunable(c))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr as E;

    fn int_stats(min: i64, max: i64, nulls: u64, rows: u64) -> ColumnStats {
        ColumnStats {
            dtype: DataType::Int,
            min: Some(Value::Int(min)),
            max: Some(Value::Int(max)),
            null_count: nulls,
            row_count: rows,
        }
    }

    fn lookup(stats: ColumnStats) -> impl Fn(&str) -> Option<ColumnStats> {
        move |name: &str| {
            if name.eq_ignore_ascii_case("x") {
                Some(stats.clone())
            } else {
                None
            }
        }
    }

    #[test]
    fn comparison_verdicts() {
        let s = lookup(int_stats(10, 20, 0, 100));
        let cases = [
            (E::col("x").lt(E::lit(10)), Tri::AllFalse),
            (E::col("x").lt(E::lit(21)), Tri::AllTrue),
            (E::col("x").lt(E::lit(15)), Tri::Unknown),
            (E::col("x").ge(E::lit(10)), Tri::AllTrue),
            (E::col("x").gt(E::lit(20)), Tri::AllFalse),
            (E::col("x").eq(E::lit(25)), Tri::AllFalse),
            (E::col("x").eq(E::lit(15)), Tri::Unknown),
            (E::col("x").neq(E::lit(25)), Tri::AllTrue),
            // flipped literal side
            (E::lit(21).gt(E::col("x")), Tri::AllTrue),
            (E::lit(9).ge(E::col("x")), Tri::AllFalse),
        ];
        for (e, want) in cases {
            assert_eq!(prune_predicate(&e, &s), want, "{}", e.to_sql());
        }
    }

    #[test]
    fn nulls_block_all_true_but_not_all_false() {
        let s = lookup(int_stats(10, 20, 5, 100));
        // Every valid row passes, but 5 nulls would be dropped by the
        // filter, so the block cannot be passed through unfiltered.
        assert_eq!(
            prune_predicate(&E::col("x").ge(E::lit(0)), &s),
            Tri::Unknown
        );
        // AllFalse is unaffected by nulls: null rows never pass anyway.
        assert_eq!(
            prune_predicate(&E::col("x").gt(E::lit(100)), &s),
            Tri::AllFalse
        );
    }

    #[test]
    fn all_null_blocks_fail_everything_except_is_null() {
        let s = lookup(ColumnStats {
            dtype: DataType::Int,
            min: None,
            max: None,
            null_count: 7,
            row_count: 7,
        });
        assert_eq!(
            prune_predicate(&E::col("x").eq(E::lit(1)), &s),
            Tri::AllFalse
        );
        assert_eq!(prune_predicate(&E::col("x").is_null(), &s), Tri::AllTrue);
        assert_eq!(
            prune_predicate(&E::col("x").is_not_null(), &s),
            Tri::AllFalse
        );
    }

    #[test]
    fn cross_type_comparison_stays_unknown() {
        // Str column vs Int literal errors at runtime; pruning must not
        // swallow that error by claiming AllFalse.
        let s = lookup(ColumnStats {
            dtype: DataType::Str,
            min: Some(Value::Str("a".into())),
            max: Some(Value::Str("z".into())),
            null_count: 0,
            row_count: 10,
        });
        assert_eq!(
            prune_predicate(&E::col("x").gt(E::lit(5)), &s),
            Tri::Unknown
        );
    }

    #[test]
    fn null_literal_stays_unknown() {
        let s = lookup(int_stats(1, 2, 0, 3));
        assert_eq!(
            prune_predicate(&E::col("x").eq(E::Literal(Value::Null)), &s),
            Tri::Unknown
        );
    }

    #[test]
    fn logic_combinators() {
        let s = lookup(int_stats(10, 20, 0, 100));
        let t = E::col("x").ge(E::lit(10)); // AllTrue
        let f = E::col("x").gt(E::lit(20)); // AllFalse
        let u = E::col("x").gt(E::lit(15)); // Unknown
        assert_eq!(
            prune_predicate(&t.clone().and(f.clone()), &s),
            Tri::AllFalse
        );
        assert_eq!(
            prune_predicate(&u.clone().and(f.clone()), &s),
            Tri::AllFalse
        );
        assert_eq!(prune_predicate(&t.clone().and(t.clone()), &s), Tri::AllTrue);
        assert_eq!(prune_predicate(&t.clone().or(u.clone()), &s), Tri::AllTrue);
        assert_eq!(prune_predicate(&f.clone().or(f.clone()), &s), Tri::AllFalse);
        assert_eq!(prune_predicate(&f.clone().or(u.clone()), &s), Tri::Unknown);
        assert_eq!(prune_predicate(&t.clone().not(), &s), Tri::AllFalse);
        // NOT AllFalse is *not* AllTrue: null rows would stay null.
        assert_eq!(prune_predicate(&f.not(), &s), Tri::Unknown);
        let _ = u;
    }

    fn not_in(col: &str, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(E::col(col)),
            list,
            negated: true,
        }
    }

    #[test]
    fn between_and_in_list() {
        let s = lookup(int_stats(10, 20, 0, 100));
        assert_eq!(
            prune_predicate(&E::col("x").between(E::lit(30), E::lit(40)), &s),
            Tri::AllFalse
        );
        assert_eq!(
            prune_predicate(&E::col("x").between(E::lit(0), E::lit(50)), &s),
            Tri::AllTrue
        );
        assert_eq!(
            prune_predicate(&E::col("x").in_list(vec![Value::Int(1), Value::Int(2)]), &s),
            Tri::AllFalse
        );
        // NOT IN with a NULL element is never TRUE.
        assert_eq!(
            prune_predicate(&not_in("x", vec![Value::Int(1), Value::Null]), &s),
            Tri::AllFalse
        );
        // NOT IN over values entirely outside the block, no nulls: TRUE.
        assert_eq!(
            prune_predicate(&not_in("x", vec![Value::Int(1), Value::Int(2)]), &s),
            Tri::AllTrue
        );
    }

    #[test]
    fn single_valued_block_in_list() {
        let s = lookup(int_stats(5, 5, 0, 10));
        assert_eq!(
            prune_predicate(&E::col("x").in_list(vec![Value::Int(5)]), &s),
            Tri::AllTrue
        );
        assert_eq!(
            prune_predicate(&not_in("x", vec![Value::Int(5)]), &s),
            Tri::AllFalse
        );
    }

    #[test]
    fn nnf_flips_through_not() {
        let e = E::col("x").le(E::lit(10)).not();
        assert_eq!(nnf(e), E::col("x").gt(E::lit(10)));
        let e = E::col("x")
            .eq(E::lit(1))
            .and(E::col("y").lt(E::lit(2)))
            .not();
        assert_eq!(
            nnf(e),
            E::col("x").neq(E::lit(1)).or(E::col("y").ge(E::lit(2)))
        );
        let e = E::col("x").is_null().not().not();
        assert_eq!(nnf(e), E::col("x").is_null());
        let e = E::col("x").between(E::lit(1), E::lit(2)).not();
        let want = Expr::Between {
            expr: Box::new(E::col("x")),
            low: Box::new(E::lit(1)),
            high: Box::new(E::lit(2)),
            negated: true,
        };
        assert_eq!(nnf(e), want);
    }

    #[test]
    fn prunable_forms() {
        assert!(is_prunable(&E::col("x").lt(E::lit(5))));
        assert!(is_prunable(&E::lit(5).lt(E::col("x"))));
        assert!(is_prunable(&E::col("x").is_null()));
        assert!(is_prunable(&E::col("x").between(E::lit(1), E::lit(2))));
        // Arithmetic left-hand sides defeat zone maps.
        assert!(!is_prunable(&E::col("x").add(E::lit(1)).gt(E::lit(5))));
        assert!(!is_prunable(&E::col("x").le(E::lit(10)).not()));
        // OR requires both arms prunable.
        assert!(is_prunable(
            &E::col("x").lt(E::lit(1)).or(E::col("x").gt(E::lit(9)))
        ));
        assert!(!is_prunable(
            &E::col("x")
                .lt(E::lit(1))
                .or(E::col("x").add(E::lit(1)).gt(E::lit(9)))
        ));
        // NULL literals are not prunable (evaluator returns Unknown).
        assert!(!is_prunable(&E::col("x").eq(E::Literal(Value::Null))));
    }

    #[test]
    fn conjunct_split_and_join() {
        let e = E::col("a")
            .lt(E::lit(1))
            .and(E::col("b").gt(E::lit(2)).and(E::col("c").eq(E::lit(3))));
        let parts = split_conjuncts(&e);
        assert_eq!(parts.len(), 3);
        let rejoined = conjoin(parts.into_iter().cloned().collect()).unwrap();
        assert_eq!(split_conjuncts(&rejoined).len(), 3);
        assert!(conjoin(vec![]).is_none());
        let only = prunable_conjuncts(
            &E::col("a")
                .lt(E::lit(1))
                .and(E::col("b").add(E::lit(1)).gt(E::lit(2))),
        );
        assert_eq!(only, vec![E::col("a").lt(E::lit(1))]);
    }

    #[test]
    fn empty_block_claims_nothing_positive() {
        let s = lookup(ColumnStats {
            dtype: DataType::Int,
            min: None,
            max: None,
            null_count: 0,
            row_count: 0,
        });
        // 0 == row_count means "all null" vacuously: AllFalse is sound
        // (there are no rows to keep).
        assert_eq!(
            prune_predicate(&E::col("x").eq(E::lit(1)), &s),
            Tri::AllFalse
        );
    }
}
