//! Error types for the engine crate.

use std::fmt;

use crate::dtype::DataType;

/// Errors produced by engine operations.
///
/// Every fallible public API in `dc-engine` returns [`Result`] with this
/// error type; user-facing layers (skills, GEL, NL2Code) convert these into
/// human-readable messages.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound { name: String },
    /// A column with this name already exists.
    DuplicateColumn { name: String },
    /// An operation received a value or column of the wrong type.
    TypeMismatch {
        expected: DataType,
        actual: DataType,
        context: String,
    },
    /// Two columns (or tables) that must have equal length do not.
    LengthMismatch { left: usize, right: usize },
    /// A row index was out of bounds.
    RowOutOfBounds { index: usize, len: usize },
    /// Failure parsing external data (CSV, dates, numbers).
    Parse { message: String },
    /// An expression could not be evaluated.
    Eval { message: String },
    /// Invalid argument to an operation (bad sample rate, empty key list, ...).
    InvalidArgument { message: String },
    /// Schemas are incompatible (e.g. for concatenation or union).
    SchemaMismatch { message: String },
    /// Out-of-core spill I/O failed (writing or reading spill partitions,
    /// sort runs, or on-disk blocks). `retryable` marks transient faults
    /// (e.g. interrupted writes) that the resilient executor may retry.
    Spill { message: String, retryable: bool },
}

impl EngineError {
    /// Convenience constructor for [`EngineError::ColumnNotFound`].
    pub fn column_not_found(name: impl Into<String>) -> Self {
        EngineError::ColumnNotFound { name: name.into() }
    }

    /// Convenience constructor for [`EngineError::Parse`].
    pub fn parse(message: impl Into<String>) -> Self {
        EngineError::Parse {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EngineError::Eval`].
    pub fn eval(message: impl Into<String>) -> Self {
        EngineError::Eval {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EngineError::InvalidArgument`].
    pub fn invalid_argument(message: impl Into<String>) -> Self {
        EngineError::InvalidArgument {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EngineError::SchemaMismatch`].
    pub fn schema_mismatch(message: impl Into<String>) -> Self {
        EngineError::SchemaMismatch {
            message: message.into(),
        }
    }

    /// Convenience constructor for a non-retryable [`EngineError::Spill`].
    pub fn spill(message: impl Into<String>) -> Self {
        EngineError::Spill {
            message: message.into(),
            retryable: false,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ColumnNotFound { name } => {
                write!(f, "column not found: {name:?}")
            }
            EngineError::DuplicateColumn { name } => {
                write!(f, "duplicate column: {name:?}")
            }
            EngineError::TypeMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, got {actual}"
            ),
            EngineError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            EngineError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for length {len}")
            }
            EngineError::Parse { message } => write!(f, "parse error: {message}"),
            EngineError::Eval { message } => write!(f, "evaluation error: {message}"),
            EngineError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
            EngineError::SchemaMismatch { message } => {
                write!(f, "schema mismatch: {message}")
            }
            EngineError::Spill { message, retryable } => {
                let kind = if *retryable { "transient" } else { "permanent" };
                write!(f, "spill I/O error ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias used throughout the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = EngineError::column_not_found("age");
        assert_eq!(e.to_string(), "column not found: \"age\"");
    }

    #[test]
    fn display_type_mismatch() {
        let e = EngineError::TypeMismatch {
            expected: DataType::Int,
            actual: DataType::Str,
            context: "filter".into(),
        };
        assert!(e.to_string().contains("filter"));
        assert!(e.to_string().contains("Int"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EngineError::parse("bad"));
    }
}
