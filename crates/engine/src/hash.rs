//! Fast non-cryptographic hashing for internal hash indexes.
//!
//! Join builds and group-by dictionaries hash millions of small keys per
//! query into tables that live only for the duration of one kernel call,
//! so SipHash's DoS resistance buys nothing while its per-write cost
//! dominates the probe loop. [`FxHasher`] uses the multiply-rotate-xor
//! scheme popularized by the Firefox/rustc hasher: one multiply per
//! 8-byte word.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate-xor hasher; one multiply per 8-byte word written.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"datachat"), h(b"datachat"));
        assert_ne!(h(b"datachat"), h(b"datachaT"));
        assert_ne!(h(b"ab"), h(b"ba"));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<i64, usize> = FxHashMap::default();
        for i in 0..1000 {
            map.insert(i, i as usize * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&500], 1000);
    }
}
