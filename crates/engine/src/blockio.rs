//! On-disk columnar block format.
//!
//! One file holds a sequence of immutable row blocks sharing a schema,
//! followed by a footer with everything needed to *decide* before
//! reading: per-block/per-column byte ranges, zone maps (min/max bounds
//! and null counts in the shape the tri-state pruning evaluator
//! consumes), and the shared string dictionaries — so dictionary columns
//! stay encoded on disk and blocks share one in-memory dictionary
//! allocation after read-back, exactly like [`crate::column::Column::Dict`]
//! in RAM.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "DCB1" | block payloads... | footer | footer_len: u64 | "DCB1"
//! ```
//!
//! Block payloads store each column contiguously (validity bits, then
//! data), and the footer records each column's absolute byte range, so a
//! projected read faults in only the columns it needs. The default read
//! path is positional buffered reads (`pread`); the `mmap` feature
//! switches to a memory map.
//!
//! Both spill files (operator partitions, sort runs) and the storage
//! layer's on-disk tables use this format; the storage layer adds scan
//! receipts and pricing on top.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::dtype::DataType;
use crate::error::{EngineError, Result};
use crate::governor::spill_error;
use crate::table::Table;
use crate::value::Value;

/// File magic, leading and trailing.
const MAGIC: &[u8; 4] = b"DCB1";

/// Column encodings as stored. `Dict` is an encoding of logical `Str`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Enc {
    Bool = 0,
    Int = 1,
    Float = 2,
    Str = 3,
    Date = 4,
    Dict = 5,
}

impl Enc {
    fn from_u8(v: u8) -> Result<Enc> {
        Ok(match v {
            0 => Enc::Bool,
            1 => Enc::Int,
            2 => Enc::Float,
            3 => Enc::Str,
            4 => Enc::Date,
            5 => Enc::Dict,
            _ => return Err(EngineError::parse(format!("bad column encoding {v}"))),
        })
    }

    fn of(col: &Column) -> Enc {
        match col {
            Column::Bool(..) => Enc::Bool,
            Column::Int(..) => Enc::Int,
            Column::Float(..) => Enc::Float,
            Column::Str(..) => Enc::Str,
            Column::Date(..) => Enc::Date,
            Column::Dict(..) => Enc::Dict,
        }
    }
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Date => 4,
    }
}

fn dtype_from_tag(v: u8) -> Result<DataType> {
    Ok(match v {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Date,
        _ => return Err(EngineError::parse(format!("bad dtype tag {v}"))),
    })
}

/// Zone-map bounds for one block of one column, as persisted in the
/// footer. Mirrors the storage layer's in-RAM zone maps: value bounds for
/// numeric/date columns, code bounds into the sorted dictionary for dict
/// columns, nothing for unsummarizable blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneBoundsIo {
    /// No usable bounds (all-null, NaN present, bool/plain-str, or zone
    /// computation disabled at write time).
    None,
    /// Value bounds over valid rows.
    Values { min: Value, max: Value },
    /// Code bounds into the column's shared sorted dictionary.
    DictCodes { min: u32, max: u32 },
}

/// Persisted zone map for one block of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneInfo {
    pub bounds: ZoneBoundsIo,
    pub null_count: u64,
}

/// Footer metadata for one column of one block.
#[derive(Debug, Clone)]
pub struct ColMeta {
    enc: Enc,
    /// Absolute byte offset of this column's stored bytes.
    pub offset: u64,
    /// Stored length in bytes.
    pub len: u64,
    /// Logical in-memory payload bytes (excluding shared dictionary
    /// heap), the same quantity the in-RAM block table charges scans.
    pub data_bytes: u64,
    /// For dict columns, index into [`FileMeta::dicts`].
    dict_id: u32,
    /// Zone map.
    pub zone: ZoneInfo,
}

impl ColMeta {
    /// For dict-encoded columns, the index into [`FileMeta::dicts`].
    pub fn dict_index(&self) -> Option<usize> {
        (self.enc == Enc::Dict).then_some(self.dict_id as usize)
    }
}

/// Footer metadata for one block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Rows in this block.
    pub rows: u32,
    /// Per-column metadata, in schema order.
    pub cols: Vec<ColMeta>,
}

/// Parsed footer of a block file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Column names and logical dtypes.
    pub schema: Vec<(String, DataType)>,
    /// Shared dictionaries, one `Arc` per registered dictionary; all
    /// blocks referencing dict `i` share `dicts[i]` after read-back.
    pub dicts: Vec<Arc<Vec<String>>>,
    /// Per-block metadata.
    pub blocks: Vec<BlockMeta>,
    /// Bytes of footer + magic/trailer (metadata read once at open).
    pub meta_bytes: u64,
}

impl FileMeta {
    /// Total rows across blocks.
    pub fn num_rows(&self) -> usize {
        self.blocks.iter().map(|b| b.rows as usize).sum()
    }

    /// Heap bytes of dictionary `i`'s strings (0 when out of range).
    pub fn dict_heap_bytes(&self, i: usize) -> u64 {
        self.dicts.get(i).map_or(0, |d| {
            d.iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum::<usize>() as u64
        })
    }

    /// Dictionary heap bytes for column `ci` (0 for non-dict columns),
    /// derived from the first block that stores it dict-encoded.
    pub fn column_dict_bytes(&self, ci: usize) -> u64 {
        for b in &self.blocks {
            let c = &b.cols[ci];
            if c.enc == Enc::Dict {
                return self.dict_heap_bytes(c.dict_id as usize);
            }
        }
        0
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding helpers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

/// Cursor over a byte slice with bounds-checked reads.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(EngineError::parse("truncated block file metadata"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| EngineError::parse("non-utf8 string"))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap())),
            3 => Value::Float(f64::from_bits(u64::from_le_bytes(
                self.bytes(8)?.try_into().unwrap(),
            ))),
            4 => Value::Str(self.str()?),
            5 => Value::Date(i32::from_le_bytes(self.bytes(4)?.try_into().unwrap())),
            t => return Err(EngineError::parse(format!("bad value tag {t}"))),
        })
    }
}

fn pack_bits(bits: impl Iterator<Item = bool>, n: usize) -> Vec<u8> {
    let mut out = vec![0u8; n.div_ceil(8)];
    for (i, b) in bits.enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(buf: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| buf[i / 8] & (1 << (i % 8)) != 0).collect()
}

// ---------------------------------------------------------------------------
// Zone computation (mirrors the storage layer's in-RAM zone maps)
// ---------------------------------------------------------------------------

fn compute_zone(col: &Column) -> ZoneInfo {
    let null_count = col.null_count() as u64;
    let n = col.len();
    if null_count as usize >= n {
        return ZoneInfo {
            bounds: ZoneBoundsIo::None,
            null_count,
        };
    }
    let bounds = if let Some((codes, _, validity)) = col.as_dict() {
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for (i, &c) in codes.iter().enumerate() {
            if validity.get(i) {
                lo = lo.min(c);
                hi = hi.max(c);
            }
        }
        ZoneBoundsIo::DictCodes { min: lo, max: hi }
    } else {
        match col.dtype() {
            DataType::Int | DataType::Float | DataType::Date => {
                let mut min: Option<Value> = None;
                let mut max: Option<Value> = None;
                let mut usable = true;
                for i in 0..n {
                    let v = col.get(i);
                    if v.is_null() {
                        continue;
                    }
                    if matches!(&v, Value::Float(f) if f.is_nan()) {
                        usable = false;
                        break;
                    }
                    let lower = match &min {
                        None => true,
                        Some(m) => v.partial_cmp_sql(m) == Some(std::cmp::Ordering::Less),
                    };
                    if lower {
                        min = Some(v.clone());
                    }
                    let higher = match &max {
                        None => true,
                        Some(m) => v.partial_cmp_sql(m) == Some(std::cmp::Ordering::Greater),
                    };
                    if higher {
                        max = Some(v);
                    }
                }
                match (usable, min, max) {
                    (true, Some(min), Some(max)) => ZoneBoundsIo::Values { min, max },
                    _ => ZoneBoundsIo::None,
                }
            }
            _ => ZoneBoundsIo::None,
        }
    };
    ZoneInfo {
        bounds,
        null_count,
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Summary returned by [`BlockWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSummary {
    /// Total file size, footer included.
    pub total_bytes: u64,
    /// Logical data bytes across blocks (same accounting as the in-RAM
    /// block table: payload excluding shared dictionary heap).
    pub data_bytes: u64,
    /// Blocks written.
    pub blocks: usize,
    /// Rows written.
    pub rows: usize,
}

/// Streaming writer: append whole blocks, then `finish` to seal the
/// footer. All appended blocks must share one schema.
pub struct BlockWriter {
    file: File,
    path: PathBuf,
    offset: u64,
    schema: Option<Vec<(String, DataType)>>,
    dicts: Vec<Arc<Vec<String>>>,
    blocks: Vec<BlockMeta>,
    rows: usize,
    compute_zones: bool,
}

impl BlockWriter {
    /// Create (truncate) `path`. Zone maps are computed per block by
    /// default; disable with [`BlockWriter::without_zones`] for spill
    /// files that are always read back in full.
    pub fn create(path: impl Into<PathBuf>) -> Result<BlockWriter> {
        let path = path.into();
        let mut file = File::create(&path).map_err(|e| spill_error("block file create", e))?;
        file.write_all(MAGIC)
            .map_err(|e| spill_error("block file write", e))?;
        Ok(BlockWriter {
            file,
            path,
            offset: MAGIC.len() as u64,
            schema: None,
            dicts: Vec::new(),
            blocks: Vec::new(),
            rows: 0,
            compute_zones: true,
        })
    }

    /// Skip zone-map computation (spill files that never prune).
    pub fn without_zones(mut self) -> BlockWriter {
        self.compute_zones = false;
        self
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn dict_id(&mut self, dict: &Arc<Vec<String>>) -> u32 {
        for (i, d) in self.dicts.iter().enumerate() {
            if Arc::ptr_eq(d, dict) {
                return i as u32;
            }
        }
        self.dicts.push(Arc::clone(dict));
        (self.dicts.len() - 1) as u32
    }

    /// Append one block. Returns the bytes written for this block.
    pub fn append(&mut self, block: &Table) -> Result<u64> {
        let schema: Vec<(String, DataType)> = block
            .schema()
            .fields()
            .iter()
            .map(|f| (f.name.clone(), f.dtype))
            .collect();
        match &self.schema {
            None => self.schema = Some(schema),
            Some(s) if *s == schema => {}
            Some(_) => {
                return Err(EngineError::schema_mismatch(
                    "block file appends must share one schema",
                ))
            }
        }
        let n = block.num_rows();
        let mut cols = Vec::with_capacity(block.num_columns());
        let mut written = 0u64;
        for col in block.columns() {
            let mut buf = Vec::new();
            let validity = pack_bits(col.validity().iter(), n);
            buf.extend_from_slice(&validity);
            let mut dict_id = u32::MAX;
            match col {
                Column::Bool(v, _) => buf.extend_from_slice(&pack_bits(v.iter().copied(), n)),
                Column::Int(v, _) => {
                    for x in v {
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                }
                Column::Float(v, _) => {
                    for x in v {
                        buf.extend_from_slice(&x.to_bits().to_le_bytes());
                    }
                }
                Column::Date(v, _) => {
                    for x in v {
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                }
                Column::Str(v, b) => {
                    for (i, s) in v.iter().enumerate() {
                        if b.get(i) {
                            put_str(&mut buf, s);
                        } else {
                            put_u32(&mut buf, 0);
                        }
                    }
                }
                Column::Dict(codes, dict, _) => {
                    dict_id = self.dict_id(dict);
                    for c in codes {
                        buf.extend_from_slice(&c.to_le_bytes());
                    }
                }
            }
            let zone = if self.compute_zones {
                compute_zone(col)
            } else {
                ZoneInfo {
                    bounds: ZoneBoundsIo::None,
                    null_count: col.null_count() as u64,
                }
            };
            self.file
                .write_all(&buf)
                .map_err(|e| spill_error("block file write", e))?;
            cols.push(ColMeta {
                enc: Enc::of(col),
                offset: self.offset,
                len: buf.len() as u64,
                data_bytes: (col.byte_size() - col.dict_heap_bytes()) as u64,
                dict_id,
                zone,
            });
            self.offset += buf.len() as u64;
            written += buf.len() as u64;
        }
        self.blocks.push(BlockMeta {
            rows: n as u32,
            cols,
        });
        self.rows += n;
        Ok(written)
    }

    /// Write the footer and seal the file.
    pub fn finish(mut self) -> Result<FileSummary> {
        let mut f = Vec::new();
        let schema = self.schema.clone().unwrap_or_default();
        put_u32(&mut f, schema.len() as u32);
        for (name, dtype) in &schema {
            put_str(&mut f, name);
            f.push(dtype_tag(*dtype));
        }
        put_u32(&mut f, self.dicts.len() as u32);
        for dict in &self.dicts {
            put_u32(&mut f, dict.len() as u32);
            for s in dict.iter() {
                put_str(&mut f, s);
            }
        }
        put_u32(&mut f, self.blocks.len() as u32);
        for b in &self.blocks {
            put_u32(&mut f, b.rows);
            for c in &b.cols {
                f.push(c.enc as u8);
                put_u64(&mut f, c.offset);
                put_u64(&mut f, c.len);
                put_u64(&mut f, c.data_bytes);
                put_u32(&mut f, c.dict_id);
                match &c.zone.bounds {
                    ZoneBoundsIo::None => f.push(0),
                    ZoneBoundsIo::Values { min, max } => {
                        f.push(1);
                        put_value(&mut f, min);
                        put_value(&mut f, max);
                    }
                    ZoneBoundsIo::DictCodes { min, max } => {
                        f.push(2);
                        put_u32(&mut f, *min);
                        put_u32(&mut f, *max);
                    }
                }
                put_u64(&mut f, c.zone.null_count);
            }
        }
        let footer_len = f.len() as u64;
        put_u64(&mut f, footer_len);
        f.extend_from_slice(MAGIC);
        self.file
            .write_all(&f)
            .map_err(|e| spill_error("block file write", e))?;
        self.file
            .flush()
            .map_err(|e| spill_error("block file flush", e))?;
        let data_bytes = self
            .blocks
            .iter()
            .flat_map(|b| b.cols.iter())
            .map(|c| c.data_bytes)
            .sum();
        Ok(FileSummary {
            total_bytes: self.offset + f.len() as u64,
            data_bytes,
            blocks: self.blocks.len(),
            rows: self.rows,
        })
    }
}

/// Write `table` to `path` in blocks of `block_rows` rows.
pub fn write_table(path: impl Into<PathBuf>, table: &Table, block_rows: usize) -> Result<FileSummary> {
    if block_rows == 0 {
        return Err(EngineError::invalid_argument("block_rows must be positive"));
    }
    let mut w = BlockWriter::create(path)?;
    let rows = table.num_rows();
    if rows == 0 {
        w.append(table)?;
    } else {
        let mut start = 0;
        while start < rows {
            w.append(&table.slice(start, block_rows))?;
            start += block_rows;
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// An opened block file: parsed footer plus a handle for paging blocks
/// in on demand. The footer (schema, dictionaries, zone maps) is resident
/// after `open`; block payloads are faulted off storage per read.
pub struct BlockFile {
    file: File,
    /// Parsed footer.
    pub meta: FileMeta,
    #[cfg(feature = "mmap")]
    map: Option<memmap2::Mmap>,
}

impl std::fmt::Debug for BlockFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockFile")
            .field("blocks", &self.meta.blocks.len())
            .field("rows", &self.meta.num_rows())
            .finish()
    }
}

impl BlockFile {
    /// Open `path`, reading and parsing the footer.
    pub fn open(path: impl AsRef<Path>) -> Result<BlockFile> {
        let mut file = File::open(path.as_ref()).map_err(|e| spill_error("block file open", e))?;
        let total = file
            .seek(SeekFrom::End(0))
            .map_err(|e| spill_error("block file seek", e))?;
        let tail_len = 8 + MAGIC.len() as u64;
        if total < MAGIC.len() as u64 + tail_len {
            return Err(EngineError::parse("block file too short"));
        }
        let mut tail = [0u8; 12];
        read_at(&mut file, total - tail_len, &mut tail)?;
        if &tail[8..] != MAGIC {
            return Err(EngineError::parse("block file trailer magic mismatch"));
        }
        let footer_len = u64::from_le_bytes(tail[..8].try_into().unwrap());
        if footer_len + tail_len > total {
            return Err(EngineError::parse("block file footer length out of range"));
        }
        let mut footer = vec![0u8; footer_len as usize];
        read_at(&mut file, total - tail_len - footer_len, &mut footer)?;
        let meta = parse_footer(&footer, footer_len + tail_len)?;
        Ok(BlockFile {
            file,
            meta,
            #[cfg(feature = "mmap")]
            map: None,
        })
    }

    /// Open with an mmap-backed read path (only with the `mmap` feature).
    #[cfg(feature = "mmap")]
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<BlockFile> {
        let mut bf = BlockFile::open(path)?;
        let map = unsafe { memmap2::Mmap::map(&bf.file) }
            .map_err(|e| spill_error("block file mmap", e))?;
        bf.map = Some(map);
        Ok(bf)
    }

    /// Blocks in the file.
    pub fn num_blocks(&self) -> usize {
        self.meta.blocks.len()
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        self.meta.num_rows()
    }

    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        #[cfg(feature = "mmap")]
        if let Some(map) = &self.map {
            let start = offset as usize;
            let end = start + len as usize;
            if end > map.len() {
                return Err(EngineError::parse("block range out of file bounds"));
            }
            return Ok(map[start..end].to_vec());
        }
        let mut buf = vec![0u8; len as usize];
        read_exact_at(&self.file, offset, &mut buf)?;
        Ok(buf)
    }

    /// Read one whole block. Returns the table and the bytes actually
    /// faulted off storage for it.
    pub fn read_block(&self, bi: usize) -> Result<(Table, u64)> {
        let all: Vec<usize> = (0..self.meta.schema.len()).collect();
        self.read_block_projected(bi, &all)
    }

    /// Read a projection of one block (columns by schema index, in the
    /// given order). Only the selected columns' byte ranges are read.
    pub fn read_block_projected(&self, bi: usize, cols: &[usize]) -> Result<(Table, u64)> {
        let block = self
            .meta
            .blocks
            .get(bi)
            .ok_or_else(|| EngineError::invalid_argument(format!("block {bi} out of range")))?;
        let n = block.rows as usize;
        let mut out = Table::empty();
        let mut bytes_read = 0u64;
        for &ci in cols {
            let (name, _) = self
                .meta
                .schema
                .get(ci)
                .ok_or_else(|| EngineError::invalid_argument(format!("column {ci} out of range")))?;
            let cm = &block.cols[ci];
            let buf = self.read_range(cm.offset, cm.len)?;
            bytes_read += cm.len;
            let mut cur = Cur::new(&buf);
            let validity = Bitmap::from_bools(&unpack_bits(cur.bytes(n.div_ceil(8))?, n));
            let col = match cm.enc {
                Enc::Bool => {
                    let bits = unpack_bits(cur.bytes(n.div_ceil(8))?, n);
                    Column::Bool(bits, validity)
                }
                Enc::Int => {
                    let raw = cur.bytes(n * 8)?;
                    let v = raw
                        .chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    Column::Int(v, validity)
                }
                Enc::Float => {
                    let raw = cur.bytes(n * 8)?;
                    let v = raw
                        .chunks_exact(8)
                        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                        .collect();
                    Column::Float(v, validity)
                }
                Enc::Date => {
                    let raw = cur.bytes(n * 4)?;
                    let v = raw
                        .chunks_exact(4)
                        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    Column::Date(v, validity)
                }
                Enc::Str => {
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(cur.str()?);
                    }
                    Column::Str(v, validity)
                }
                Enc::Dict => {
                    let dict = self
                        .meta
                        .dicts
                        .get(cm.dict_id as usize)
                        .ok_or_else(|| EngineError::parse("dict id out of range"))?;
                    let raw = cur.bytes(n * 4)?;
                    let codes = raw
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    Column::Dict(codes, Arc::clone(dict), validity)
                }
            };
            out.add_column(name, col)?;
        }
        Ok((out, bytes_read))
    }

    /// Read every block and concatenate (spill partition read-back).
    pub fn read_all(&self) -> Result<(Table, u64)> {
        let mut out: Option<Table> = None;
        let mut bytes = 0u64;
        for bi in 0..self.num_blocks() {
            let (block, b) = self.read_block(bi)?;
            bytes += b;
            match &mut out {
                None => out = Some(block),
                Some(t) => t.append(&block)?,
            }
        }
        Ok((
            out.unwrap_or_else(Table::empty),
            bytes,
        ))
    }
}

fn parse_footer(buf: &[u8], meta_bytes: u64) -> Result<FileMeta> {
    let mut cur = Cur::new(buf);
    let ncols = cur.u32()? as usize;
    let mut schema = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = cur.str()?;
        let dtype = dtype_from_tag(cur.u8()?)?;
        schema.push((name, dtype));
    }
    let ndicts = cur.u32()? as usize;
    let mut dicts = Vec::with_capacity(ndicts);
    for _ in 0..ndicts {
        let n = cur.u32()? as usize;
        let mut d = Vec::with_capacity(n);
        for _ in 0..n {
            d.push(cur.str()?);
        }
        dicts.push(Arc::new(d));
    }
    let nblocks = cur.u32()? as usize;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let rows = cur.u32()?;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let enc = Enc::from_u8(cur.u8()?)?;
            let offset = cur.u64()?;
            let len = cur.u64()?;
            let data_bytes = cur.u64()?;
            let dict_id = cur.u32()?;
            let bounds = match cur.u8()? {
                0 => ZoneBoundsIo::None,
                1 => ZoneBoundsIo::Values {
                    min: cur.value()?,
                    max: cur.value()?,
                },
                2 => ZoneBoundsIo::DictCodes {
                    min: cur.u32()?,
                    max: cur.u32()?,
                },
                t => return Err(EngineError::parse(format!("bad zone tag {t}"))),
            };
            let null_count = cur.u64()?;
            cols.push(ColMeta {
                enc,
                offset,
                len,
                data_bytes,
                dict_id,
                zone: ZoneInfo {
                    bounds,
                    null_count,
                },
            });
        }
        blocks.push(BlockMeta { rows, cols });
    }
    Ok(FileMeta {
        schema,
        dicts,
        blocks,
        meta_bytes,
    })
}

/// Positional read at `offset` (buffered pread; no shared-cursor races).
#[cfg(unix)]
fn read_exact_at(file: &File, offset: u64, buf: &mut [u8]) -> Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
        .map_err(|e| spill_error("block file read", e))
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, offset: u64, buf: &mut [u8]) -> Result<()> {
    let mut f = file
        .try_clone()
        .map_err(|e| spill_error("block file clone", e))?;
    f.seek(SeekFrom::Start(offset))
        .map_err(|e| spill_error("block file seek", e))?;
    f.read_exact(buf).map_err(|e| spill_error("block file read", e))
}

/// Positional read through a `&mut File` during open (footer parsing).
fn read_at(file: &mut File, offset: u64, buf: &mut [u8]) -> Result<()> {
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| spill_error("block file seek", e))?;
    file.read_exact(buf)
        .map_err(|e| spill_error("block file read", e))
}

// Silence unused-import warnings on non-unix builds.
#[allow(unused_imports)]
use io::ErrorKind as _IoErrorKind;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> Table {
        Table::new(vec![
            (
                "i",
                Column::from_opt_ints(vec![Some(3), None, Some(-7), Some(40), Some(5)]),
            ),
            (
                "f",
                Column::from_opt_floats(vec![Some(1.5), Some(-0.0), None, Some(2.25), Some(9.0)]),
            ),
            (
                "s",
                Column::from_opt_strs(vec![
                    Some("b".into()),
                    Some("a".into()),
                    None,
                    Some("b".into()),
                    Some("c".into()),
                ]),
            ),
            ("b", Column::from_bools(vec![true, false, true, true, false])),
            (
                "d",
                Column::from_opt_dates(vec![Some(10), Some(20), Some(30), None, Some(50)]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_plain_and_dict() {
        let dir = ScopedDir::new("blockio-rt");
        let t = sample();
        let path = dir.0.join("t.dcb");
        let summary = write_table(&path, &t, 2).unwrap();
        assert_eq!(summary.rows, 5);
        assert_eq!(summary.blocks, 3);
        let f = BlockFile::open(&path).unwrap();
        let (back, bytes) = f.read_all().unwrap();
        assert!(bytes > 0);
        assert_eq!(back, t);

        // Dict-encoded strings stay encoded on disk and share one Arc
        // across read-back blocks.
        let enc = t.encode_strings();
        let path2 = dir.0.join("t2.dcb");
        write_table(&path2, &enc, 2).unwrap();
        let f2 = BlockFile::open(&path2).unwrap();
        assert_eq!(f2.meta.dicts.len(), 1);
        let (b0, _) = f2.read_block(0).unwrap();
        let (b1, _) = f2.read_block(1).unwrap();
        let d0 = b0.column("s").unwrap().as_dict().unwrap().1;
        let d1 = b1.column("s").unwrap().as_dict().unwrap().1;
        assert!(Arc::ptr_eq(d0, d1), "blocks must share the dict Arc");
        let (back2, _) = f2.read_all().unwrap();
        assert_eq!(back2.num_rows(), 5);
        assert_eq!(back2.column("s").unwrap().str_at(0), Some("b"));
    }

    #[test]
    fn projected_read_faults_fewer_bytes() {
        let dir = ScopedDir::new("blockio-proj");
        let t = sample();
        let path = dir.0.join("t.dcb");
        write_table(&path, &t, 4).unwrap();
        let f = BlockFile::open(&path).unwrap();
        let (full, full_bytes) = f.read_block(0).unwrap();
        let (proj, proj_bytes) = f.read_block_projected(0, &[0]).unwrap();
        assert_eq!(proj.num_columns(), 1);
        assert_eq!(proj.column("i").unwrap(), full.column("i").unwrap());
        assert!(proj_bytes < full_bytes);
    }

    #[test]
    fn zones_match_in_ram_semantics() {
        let dir = ScopedDir::new("blockio-zones");
        let t = sample();
        let path = dir.0.join("t.dcb");
        write_table(&path, &t, 5).unwrap();
        let f = BlockFile::open(&path).unwrap();
        let zone_i = &f.meta.blocks[0].cols[0].zone;
        assert_eq!(zone_i.null_count, 1);
        assert_eq!(
            zone_i.bounds,
            ZoneBoundsIo::Values {
                min: Value::Int(-7),
                max: Value::Int(40)
            }
        );
        // Bool columns publish no bounds.
        assert_eq!(f.meta.blocks[0].cols[3].zone.bounds, ZoneBoundsIo::None);
    }

    #[test]
    fn empty_table_roundtrip() {
        let dir = ScopedDir::new("blockio-empty");
        let t = sample().slice(0, 0);
        let path = dir.0.join("e.dcb");
        write_table(&path, &t, 4).unwrap();
        let f = BlockFile::open(&path).unwrap();
        assert_eq!(f.num_rows(), 0);
        let (back, _) = f.read_all().unwrap();
        assert_eq!(back.schema().names(), t.schema().names());
    }

    #[test]
    fn corrupt_trailer_rejected() {
        let dir = ScopedDir::new("blockio-corrupt");
        let path = dir.0.join("c.dcb");
        std::fs::write(&path, b"not a block file at all....").unwrap();
        assert!(BlockFile::open(&path).is_err());
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_read_matches_pread() {
        let dir = ScopedDir::new("blockio-mmap");
        let t = sample();
        let path = dir.0.join("t.dcb");
        write_table(&path, &t, 2).unwrap();
        let pread = BlockFile::open(&path).unwrap().read_all().unwrap().0;
        let mapped = BlockFile::open_mmap(&path).unwrap().read_all().unwrap().0;
        assert_eq!(pread, mapped);
    }

    struct ScopedDir(PathBuf);
    impl ScopedDir {
        fn new(label: &str) -> ScopedDir {
            let p = std::env::temp_dir().join(format!("{label}-{}", std::process::id()));
            std::fs::create_dir_all(&p).unwrap();
            ScopedDir(p)
        }
    }
    impl Drop for ScopedDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}
