//! Minimal proleptic-Gregorian calendar support.
//!
//! Dates are stored as `i32` days since the Unix epoch (1970-01-01). This is
//! the only temporal representation skills need: the paper's recipes filter
//! by date ranges ("Keep the rows where DATE is between the dates
//! 01-01-2005 to 12-31-2020") and advance quarterly series for forecasting.

use crate::error::{EngineError, Result};

/// Days in each month of a non-leap year.
const MONTH_DAYS: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Whether `year` is a leap year in the Gregorian calendar.
pub fn is_leap_year(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` (1-12) of `year`.
pub fn days_in_month(year: i64, month: u32) -> i64 {
    debug_assert!((1..=12).contains(&month));
    if month == 2 && is_leap_year(year) {
        29
    } else {
        MONTH_DAYS[(month - 1) as usize]
    }
}

/// Convert a calendar date to days since 1970-01-01.
///
/// Uses the standard civil-from-days algorithm (Howard Hinnant's
/// `days_from_civil`), valid for the entire `i32` day range.
pub fn days_from_ymd(year: i64, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Convert days since 1970-01-01 back to `(year, month, day)`.
pub fn ymd_from_days(days: i32) -> (i64, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse a date string into days since epoch.
///
/// Accepts the formats users type in GEL sentences:
/// `YYYY-MM-DD`, `MM-DD-YYYY`, `MM/DD/YYYY`, and `YYYY/MM/DD`.
pub fn parse_date(s: &str) -> Result<i32> {
    let sep = if s.contains('/') { '/' } else { '-' };
    let parts: Vec<&str> = s.trim().split(sep).collect();
    if parts.len() != 3 {
        return Err(EngineError::parse(format!("invalid date: {s:?}")));
    }
    let nums: Vec<i64> = parts
        .iter()
        .map(|p| {
            p.parse::<i64>()
                .map_err(|_| EngineError::parse(format!("invalid date component in {s:?}")))
        })
        .collect::<Result<_>>()?;
    // Disambiguate by which side holds the 4-digit year.
    let (y, m, d) = if parts[0].len() == 4 {
        (nums[0], nums[1], nums[2])
    } else if parts[2].len() == 4 {
        (nums[2], nums[0], nums[1])
    } else {
        return Err(EngineError::parse(format!(
            "ambiguous date (no 4-digit year): {s:?}"
        )));
    };
    if !(1..=12).contains(&m) {
        return Err(EngineError::parse(format!("month out of range in {s:?}")));
    }
    let m = m as u32;
    if d < 1 || d > days_in_month(y, m) {
        return Err(EngineError::parse(format!("day out of range in {s:?}")));
    }
    Ok(days_from_ymd(y, m, d as u32))
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = ymd_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Add `n` calendar months to a date, clamping the day to the target
/// month's length (used by time-series forecasting to step quarterly and
/// monthly series).
pub fn add_months(days: i32, n: i32) -> i32 {
    let (y, m, d) = ymd_from_days(days);
    let total = y * 12 + (m as i64 - 1) + n as i64;
    let ny = total.div_euclid(12);
    let nm = (total.rem_euclid(12) + 1) as u32;
    let nd = (d as i64).min(days_in_month(ny, nm)) as u32;
    days_from_ymd(ny, nm, nd)
}

/// Add `n` years to a date (Feb 29 clamps to Feb 28 in non-leap targets).
pub fn add_years(days: i32, n: i32) -> i32 {
    add_months(days, n * 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(days_from_ymd(1970, 1, 1), 0);
        assert_eq!(ymd_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(days_from_ymd(2000, 3, 1), 11017);
        assert_eq!(days_from_ymd(1969, 12, 31), -1);
        assert_eq!(format_date(days_from_ymd(2020, 2, 29)), "2020-02-29");
    }

    #[test]
    fn roundtrip_range() {
        for days in (-200_000..200_000).step_by(997) {
            let (y, m, d) = ymd_from_days(days);
            assert_eq!(days_from_ymd(y, m, d), days);
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
    }

    #[test]
    fn parse_iso() {
        assert_eq!(parse_date("2005-01-01").unwrap(), days_from_ymd(2005, 1, 1));
    }

    #[test]
    fn parse_us() {
        // The Figure 2 recipe uses "01-01-2005" and "12-31-2020".
        assert_eq!(parse_date("01-01-2005").unwrap(), days_from_ymd(2005, 1, 1));
        assert_eq!(
            parse_date("12-31-2020").unwrap(),
            days_from_ymd(2020, 12, 31)
        );
        assert_eq!(
            parse_date("12/31/2020").unwrap(),
            days_from_ymd(2020, 12, 31)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_date("not a date").is_err());
        assert!(parse_date("2020-13-01").is_err());
        assert!(parse_date("2020-02-30").is_err());
        assert!(parse_date("1-2-3").is_err());
    }

    #[test]
    fn month_arithmetic() {
        let d = days_from_ymd(2020, 1, 31);
        assert_eq!(ymd_from_days(add_months(d, 1)), (2020, 2, 29));
        assert_eq!(ymd_from_days(add_months(d, 13)), (2021, 2, 28));
        let q = days_from_ymd(2020, 10, 1);
        assert_eq!(ymd_from_days(add_months(q, 3)), (2021, 1, 1));
    }

    #[test]
    fn year_arithmetic() {
        let d = days_from_ymd(2020, 2, 29);
        assert_eq!(ymd_from_days(add_years(d, 1)), (2021, 2, 28));
        assert_eq!(ymd_from_days(add_years(d, -10)), (2010, 2, 28));
    }
}
