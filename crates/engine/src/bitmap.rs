//! Validity bitmaps for nullable columns.

/// A packed bitmap tracking which rows of a column are valid (non-null).
///
/// Bit `i` set means row `i` holds a real value. Packing 64 rows per word
/// keeps null checks cache-friendly in the vectorized kernels, following
/// the Arrow/DataFusion representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all valid.
    pub fn new_valid(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// A bitmap of `len` bits, all null.
    pub fn new_null(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from a bool slice (`true` = valid).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Bitmap::new_null(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            if v {
                b.set(i, true);
            }
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        if valid {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Append a bit.
    pub fn push(&mut self, valid: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if valid {
            self.set(self.len - 1, true);
        }
    }

    /// Count of valid bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Count of null bits.
    pub fn count_null(&self) -> usize {
        self.len - self.count_valid()
    }

    /// Whether every bit is valid (fast path used by kernels to skip null
    /// checks entirely).
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// Bitwise AND of two bitmaps (null if either is null).
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Gather the bits at `indices` into a new bitmap.
    pub fn take(&self, indices: &[usize]) -> Bitmap {
        let mut out = Bitmap::new_null(indices.len());
        for (o, &i) in indices.iter().enumerate() {
            if self.get(i) {
                out.set(o, true);
            }
        }
        out
    }

    /// Extend with the contents of another bitmap.
    pub fn extend(&mut self, other: &Bitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// A contiguous slice `[start, start+count)` as a new bitmap.
    pub fn slice(&self, start: usize, count: usize) -> Bitmap {
        let mut out = Bitmap::new_null(count);
        for o in 0..count {
            if self.get(start + o) {
                out.set(o, true);
            }
        }
        out
    }

    /// Iterate validity bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Clear any garbage bits beyond `len` in the last word so popcounts
    /// stay correct.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_valid_counts() {
        let b = Bitmap::new_valid(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_valid(), 130);
        assert!(b.all_valid());
    }

    #[test]
    fn new_null_counts() {
        let b = Bitmap::new_null(70);
        assert_eq!(b.count_valid(), 0);
        assert_eq!(b.count_null(), 70);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new_null(100);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(99, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_valid(), 4);
        b.set(63, false);
        assert!(!b.get(63));
        assert_eq!(b.count_valid(), 3);
    }

    #[test]
    fn push_across_word_boundary() {
        let mut b = Bitmap::new_null(0);
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_valid(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn and_combines() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        let c = a.and(&b);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn take_gathers() {
        let b = Bitmap::from_bools(&[true, false, true, false, true]);
        let t = b.take(&[4, 1, 0]);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![true, false, true]);
    }

    #[test]
    fn slice_window() {
        let b = Bitmap::from_bools(&[true, false, true, true, false]);
        let s = b.slice(1, 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![false, true, true]);
    }

    #[test]
    fn tail_masked_after_new_valid() {
        // 65 valid bits must not report 128 from an unmasked last word.
        let b = Bitmap::new_valid(65);
        assert_eq!(b.count_valid(), 65);
    }
}
