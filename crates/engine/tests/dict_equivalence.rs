//! Property tests asserting every kernel is encoding-agnostic:
//! `encode → op → materialize` produces exactly the same table as the
//! op on plain `Column::Str` data — nulls, empty strings, empty
//! dictionaries and all included.
//!
//! Each property runs twice, once with the morsel threshold forced to
//! 1 row and once with dispatch effectively disabled, so the dict
//! kernels are exercised under both schedulers. Test names carry the
//! `parallel` marker so the sanitizer matrix picks this suite up.

use dc_engine::ops::{
    concat, distinct, filter, group_by, join, sample_fraction, sort_by, AggFunc, AggSpec, JoinType,
    SortKey,
};
use dc_engine::parallel::set_min_parallel_rows;
use dc_engine::stats::describe_table;
use dc_engine::{eval, Column, DataType, Expr, ScalarFunc, Table, Value};
use proptest::prelude::*;

/// Run `f` under the morsel scheduler (threshold 1) and then with
/// dispatch disabled (threshold usize::MAX), so equivalence holds no
/// matter which path a production table size selects.
fn on_both_schedulers(
    f: impl Fn() -> std::result::Result<(), TestCaseError>,
) -> std::result::Result<(), TestCaseError> {
    set_min_parallel_rows(1);
    let morsel = f();
    set_min_parallel_rows(usize::MAX);
    let serial = f();
    morsel.and(serial)
}

/// Keys over a tiny alphabet (lots of repeats), including the empty
/// string and nulls.
fn opt_key() -> impl Strategy<Value = Option<String>> {
    prop::option::of("[a-c]{0,2}")
}

fn opt_int() -> impl Strategy<Value = Option<i64>> {
    prop::option::of(-5i64..20)
}

fn table(rows: &[(Option<String>, Option<i64>)]) -> Table {
    Table::new(vec![
        (
            "k",
            Column::from_opt_strs(rows.iter().map(|(k, _)| k.clone()).collect()),
        ),
        (
            "v",
            Column::from_opt_ints(rows.iter().map(|(_, v)| *v).collect()),
        ),
    ])
    .unwrap()
}

/// The equivalence contract: the op output on the encoded table, once
/// materialized back to plain strings, is byte-for-byte the op output
/// on the plain table.
macro_rules! same {
    ($plain:expr, $dict:expr) => {{
        let plain = $plain;
        let dict = $dict;
        prop_assert_eq!(
            dict.materialize_strings(),
            plain.materialize_strings(),
            "dict result diverged from plain"
        );
        // Logical table equality must also hold across encodings.
        prop_assert_eq!(dict, plain);
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_parallel_and_serial_match_plain(
        rows in prop::collection::vec((opt_key(), opt_int()), 0..200),
    ) {
        let plain = table(&rows);
        let enc = plain.encode_strings();
        let preds = [
            // Equality/inequality against a literal: translated to one
            // code comparison on the dict path.
            Expr::col("k").eq(Expr::lit("a")),
            Expr::col("k").neq(Expr::lit("b")),
            // Ordering against a literal uses dictionary rank.
            Expr::col("k").lt(Expr::lit("b")),
            // IN list with and without a null element (3VL).
            Expr::col("k").in_list(vec![Value::Str("a".into()), Value::Str("ca".into())]),
            Expr::col("k")
                .in_list(vec![Value::Str("a".into()), Value::Null])
                .not(),
            Expr::col("k").is_null().or(Expr::col("v").gt(Expr::lit(5i64))),
        ];
        on_both_schedulers(|| {
            for pred in &preds {
                same!(filter(&plain, pred).unwrap(), filter(&enc, pred).unwrap());
            }
            Ok(())
        }).unwrap();
    }

    #[test]
    fn eval_string_kernels_parallel_and_serial_match_plain(
        rows in prop::collection::vec((opt_key(), opt_key()), 0..200),
    ) {
        let plain = Table::new(vec![
            ("a", Column::from_opt_strs(rows.iter().map(|(a, _)| a.clone()).collect())),
            ("b", Column::from_opt_strs(rows.iter().map(|(_, b)| b.clone()).collect())),
        ])
        .unwrap();
        let enc = plain.encode_strings();
        let exprs = [
            // Column-to-column comparison (merged/shared dict paths).
            Expr::col("a").eq(Expr::col("b")),
            Expr::col("a").le(Expr::col("b")),
            // String transforms rewrite the dictionary once.
            Expr::func(ScalarFunc::Upper, vec![Expr::col("a")]),
            Expr::func(ScalarFunc::Length, vec![Expr::col("a")]),
            Expr::func(ScalarFunc::Concat, vec![Expr::col("a"), Expr::col("b")]),
            Expr::func(
                ScalarFunc::Contains,
                vec![Expr::col("a"), Expr::lit("a")],
            ),
            Expr::func(
                ScalarFunc::Replace,
                vec![Expr::col("a"), Expr::lit("a"), Expr::lit("z")],
            ),
            // Arithmetic concat via `+`.
            Expr::col("a").add(Expr::col("b")),
            // Casting dict → str must stay logically identical.
            Expr::col("a").cast(DataType::Str),
        ];
        on_both_schedulers(|| {
            for expr in &exprs {
                let p = eval::eval(&plain, expr).unwrap();
                let d = eval::eval(&enc, expr).unwrap();
                prop_assert_eq!(
                    d.materialize(),
                    p.materialize(),
                    "expr {:?} diverged",
                    expr
                );
            }
            Ok(())
        }).unwrap();
    }

    #[test]
    fn group_by_parallel_and_serial_match_plain(
        rows in prop::collection::vec((opt_key(), opt_int()), 0..200),
    ) {
        let plain = table(&rows);
        let enc = plain.encode_strings();
        let aggs = [
            AggSpec::count_records("n"),
            AggSpec::new(AggFunc::Sum, "v", "sum"),
            AggSpec::new(AggFunc::CountDistinct, "k", "kd"),
            AggSpec::new(AggFunc::Min, "k", "klo"),
            AggSpec::new(AggFunc::Max, "k", "khi"),
        ];
        on_both_schedulers(|| {
            same!(group_by(&plain, &["k"], &aggs).unwrap(), group_by(&enc, &["k"], &aggs).unwrap());
            same!(
                group_by(&plain, &["k", "v"], &aggs[..2]).unwrap(),
                group_by(&enc, &["k", "v"], &aggs[..2]).unwrap()
            );
            Ok(())
        }).unwrap();
    }

    #[test]
    fn join_parallel_and_serial_match_plain(
        lrows in prop::collection::vec((opt_key(), 0i64..100), 0..120),
        rrows in prop::collection::vec((opt_key(), opt_int()), 0..120),
    ) {
        let left = Table::new(vec![
            ("k", Column::from_opt_strs(lrows.iter().map(|(k, _)| k.clone()).collect())),
            ("payload", Column::from_ints(lrows.iter().map(|(_, v)| *v).collect())),
        ])
        .unwrap();
        let right = Table::new(vec![
            ("k", Column::from_opt_strs(rrows.iter().map(|(k, _)| k.clone()).collect())),
            ("tag", Column::from_opt_ints(rrows.iter().map(|(_, t)| *t).collect())),
        ])
        .unwrap();
        let (el, er) = (left.encode_strings(), right.encode_strings());
        on_both_schedulers(|| {
            for how in [JoinType::Inner, JoinType::Left, JoinType::Right, JoinType::Full] {
                let plain = join(&left, &right, &["k"], &["k"], how).unwrap();
                // Dict × dict (distinct dictionaries → code remap).
                same!(plain.clone(), join(&el, &er, &["k"], &["k"], how).unwrap());
                // Mixed encodings exercise the dict × plain probe.
                same!(plain.clone(), join(&el, &right, &["k"], &["k"], how).unwrap());
                same!(plain, join(&left, &er, &["k"], &["k"], how).unwrap());
            }
            Ok(())
        }).unwrap();
    }

    #[test]
    fn sort_distinct_parallel_and_serial_match_plain(
        rows in prop::collection::vec((opt_key(), opt_int()), 0..200),
    ) {
        let plain = table(&rows);
        let enc = plain.encode_strings();
        on_both_schedulers(|| {
            let keys = [SortKey::asc("k"), SortKey::desc("v")];
            same!(sort_by(&plain, &keys).unwrap(), sort_by(&enc, &keys).unwrap());
            let keys = [SortKey::desc("k")];
            same!(sort_by(&plain, &keys).unwrap(), sort_by(&enc, &keys).unwrap());
            same!(distinct(&plain, &["k"]).unwrap(), distinct(&enc, &["k"]).unwrap());
            same!(distinct(&plain, &[]).unwrap(), distinct(&enc, &[]).unwrap());
            Ok(())
        }).unwrap();
    }

    #[test]
    fn concat_sample_slice_parallel_and_serial_match_plain(
        arows in prop::collection::vec((opt_key(), opt_int()), 0..120),
        brows in prop::collection::vec((opt_key(), opt_int()), 0..120),
        seed in 0u64..32,
    ) {
        let (a, b) = (table(&arows), table(&brows));
        let (ea, eb) = (a.encode_strings(), b.encode_strings());
        on_both_schedulers(|| {
            let plain = concat(&[&a, &b], false).unwrap();
            // Dict + dict merges dictionaries; mixed pairs hit the
            // cross-encoding extend paths.
            same!(plain.clone(), concat(&[&ea, &eb], false).unwrap());
            same!(plain.clone(), concat(&[&ea, &b], false).unwrap());
            same!(plain, concat(&[&a, &eb], false).unwrap());
            same!(
                sample_fraction(&a, 0.5, seed).unwrap(),
                sample_fraction(&ea, 0.5, seed).unwrap()
            );
            same!(a.slice(1, 3), ea.slice(1, 3));
            same!(a.head(5), ea.head(5));
            Ok(())
        }).unwrap();
    }

    #[test]
    fn describe_parallel_and_serial_match_plain(
        rows in prop::collection::vec((opt_key(), opt_int()), 0..200),
    ) {
        let plain = table(&rows);
        let enc = plain.encode_strings();
        on_both_schedulers(|| {
            // Dict summaries read cardinality off the dictionary; they
            // must agree with the rendered-key path, mode tie-break
            // included.
            prop_assert_eq!(describe_table(&enc), describe_table(&plain));
            Ok(())
        }).unwrap();
    }
}

/// Deterministic edges the generators only rarely cover: all-null
/// columns (empty dictionary) and empty tables.
#[test]
fn all_null_and_empty_parallel_edges_match_plain() {
    let plain = Table::new(vec![
        ("k", Column::from_opt_strs(vec![None, None, None])),
        ("v", Column::from_ints(vec![1, 2, 3])),
    ])
    .unwrap();
    let enc = plain.encode_strings();
    let (_, dict, _) = enc.column("k").unwrap().as_dict().expect("encoded");
    assert!(dict.is_empty(), "all-null column must carry an empty dict");

    for threshold in [1, usize::MAX] {
        set_min_parallel_rows(threshold);
        let aggs = [AggSpec::count_records("n")];
        assert_eq!(
            group_by(&enc, &["k"], &aggs).unwrap(),
            group_by(&plain, &["k"], &aggs).unwrap()
        );
        assert_eq!(
            sort_by(&enc, &[SortKey::asc("k")]).unwrap(),
            sort_by(&plain, &[SortKey::asc("k")]).unwrap()
        );
        assert_eq!(
            distinct(&enc, &["k"]).unwrap(),
            distinct(&plain, &["k"]).unwrap()
        );
        let pred = Expr::col("k").eq(Expr::lit("a"));
        assert_eq!(filter(&enc, &pred).unwrap(), filter(&plain, &pred).unwrap());
        assert_eq!(
            join(&enc, &enc, &["k"], &["k"], JoinType::Full).unwrap(),
            join(&plain, &plain, &["k"], &["k"], JoinType::Full).unwrap()
        );

        // Empty tables stay equivalent too.
        let empty = plain.head(0);
        let eempty = enc.head(0);
        assert_eq!(
            distinct(&eempty, &[]).unwrap(),
            distinct(&empty, &[]).unwrap()
        );
        assert_eq!(
            sort_by(&eempty, &[SortKey::asc("k")]).unwrap(),
            sort_by(&empty, &[SortKey::asc("k")]).unwrap()
        );
        assert_eq!(describe_table(&eempty), describe_table(&empty));
    }
}
