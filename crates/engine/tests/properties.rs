//! Property-based tests over the engine's core invariants.

use dc_engine::column::Column;
use dc_engine::csv::{read_csv, write_csv};
use dc_engine::date::{days_from_ymd, parse_date, ymd_from_days};
use dc_engine::expr::Expr;
use dc_engine::ops::{
    concat, distinct, filter, group_by, sample_fraction, sample_n, sort_by, AggFunc, AggSpec,
    SortKey,
};
use dc_engine::table::Table;
use dc_engine::value::Value;
use proptest::prelude::*;

fn opt_int_table(vals: Vec<Option<i64>>) -> Table {
    Table::new(vec![("x", Column::from_opt_ints(vals))]).unwrap()
}

proptest! {
    #[test]
    fn date_roundtrip(days in -1_000_000i32..1_000_000) {
        let (y, m, d) = ymd_from_days(days);
        prop_assert_eq!(days_from_ymd(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn date_format_parse_roundtrip(days in -500_000i32..500_000) {
        let s = dc_engine::date::format_date(days);
        prop_assert_eq!(parse_date(&s).unwrap(), days);
    }

    #[test]
    fn sort_is_permutation_and_ordered(vals in prop::collection::vec(prop::option::of(-100i64..100), 0..200)) {
        let t = opt_int_table(vals.clone());
        let sorted = sort_by(&t, &[SortKey::asc("x")]).unwrap();
        prop_assert_eq!(sorted.num_rows(), t.num_rows());
        // Ordered with nulls first.
        let got: Vec<Value> = (0..sorted.num_rows())
            .map(|r| sorted.value(r, "x").unwrap())
            .collect();
        for w in got.windows(2) {
            prop_assert!(w[0].cmp_total(&w[1]) != std::cmp::Ordering::Greater);
        }
        // Multiset equality via sorted renders.
        let mut a: Vec<String> = vals.iter().map(|v| Value::from(*v).render()).collect();
        let mut b: Vec<String> = got.iter().map(|v| v.render()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn filter_never_keeps_violating_rows(vals in prop::collection::vec(prop::option::of(-50i64..50), 0..200), threshold in -50i64..50) {
        let t = opt_int_table(vals);
        let out = filter(&t, &Expr::col("x").gt(Expr::lit(threshold))).unwrap();
        for r in 0..out.num_rows() {
            let v = out.value(r, "x").unwrap();
            prop_assert!(v.as_i64().unwrap() > threshold);
        }
    }

    #[test]
    fn group_count_records_sums_to_total(vals in prop::collection::vec(0i64..5, 1..300)) {
        let t = opt_int_table(vals.iter().map(|&v| Some(v)).collect());
        let g = group_by(&t, &["x"], &[AggSpec::count_records("n")]).unwrap();
        let total: i64 = (0..g.num_rows())
            .map(|r| g.value(r, "n").unwrap().as_i64().unwrap())
            .sum();
        prop_assert_eq!(total, vals.len() as i64);
    }

    #[test]
    fn group_sum_matches_reference(vals in prop::collection::vec((0i64..4, -100i64..100), 1..200)) {
        let keys: Vec<i64> = vals.iter().map(|(k, _)| *k).collect();
        let xs: Vec<i64> = vals.iter().map(|(_, x)| *x).collect();
        let t = Table::new(vec![
            ("k", Column::from_ints(keys.clone())),
            ("v", Column::from_ints(xs.clone())),
        ])
        .unwrap();
        let g = group_by(&t, &["k"], &[AggSpec::new(AggFunc::Sum, "v", "s")]).unwrap();
        for r in 0..g.num_rows() {
            let k = g.value(r, "k").unwrap().as_i64().unwrap();
            let s = g.value(r, "s").unwrap().as_i64().unwrap();
            let expect: i64 = keys
                .iter()
                .zip(&xs)
                .filter(|(kk, _)| **kk == k)
                .map(|(_, x)| *x)
                .sum();
            prop_assert_eq!(s, expect);
        }
    }

    #[test]
    fn distinct_idempotent(vals in prop::collection::vec(prop::option::of(0i64..10), 0..200)) {
        let t = opt_int_table(vals);
        let once = distinct(&t, &[]).unwrap();
        let twice = distinct(&once, &[]).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.num_rows() <= t.num_rows());
        prop_assert!(once.num_rows() <= 11); // at most 10 values + null
    }

    #[test]
    fn concat_row_count_adds(a in prop::collection::vec(-10i64..10, 0..50), b in prop::collection::vec(-10i64..10, 0..50)) {
        let ta = opt_int_table(a.iter().map(|&v| Some(v)).collect());
        let tb = opt_int_table(b.iter().map(|&v| Some(v)).collect());
        let out = concat(&[&ta, &tb], false).unwrap();
        prop_assert_eq!(out.num_rows(), a.len() + b.len());
    }

    #[test]
    fn sample_n_subset(vals in prop::collection::vec(0i64..1000, 1..100), n in 0usize..120, seed in 0u64..1000) {
        let t = opt_int_table(vals.iter().map(|&v| Some(v)).collect());
        let s = sample_n(&t, n, seed).unwrap();
        prop_assert_eq!(s.num_rows(), n.min(vals.len()));
    }

    #[test]
    fn sample_fraction_subset_of_rows(seed in 0u64..100) {
        let t = opt_int_table((0..500).map(Some).collect());
        let s = sample_fraction(&t, 0.3, seed).unwrap();
        prop_assert!(s.num_rows() <= 500);
        // Each sampled value existed in the source.
        for r in 0..s.num_rows() {
            let v = s.value(r, "x").unwrap().as_i64().unwrap();
            prop_assert!((0..500).contains(&v));
        }
    }

    #[test]
    fn csv_roundtrip_ints(vals in prop::collection::vec(prop::option::of(-1000i64..1000), 0..100)) {
        // A never-null index column prevents all-blank lines, which CSV
        // cannot distinguish from trailing blank lines (pandas skips them
        // too — a representational ambiguity, not an engine bug).
        let idx: Vec<i64> = (0..vals.len() as i64).collect();
        let t = Table::new(vec![
            ("i", Column::from_ints(idx)),
            ("x", Column::from_opt_ints(vals)),
        ])
        .unwrap();
        let text = write_csv(&t);
        let back = read_csv(&text).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            prop_assert_eq!(back.value(r, "x").unwrap(), t.value(r, "x").unwrap());
        }
    }

    #[test]
    fn csv_roundtrip_weird_strings(vals in prop::collection::vec("[ -~]{0,20}", 0..50)) {
        // Printable-ASCII strings incl. commas and quotes survive a roundtrip.
        // Values that render as empty/null markers read back as null, so
        // skip those inputs.
        let keep: Vec<String> = vals
            .into_iter()
            .filter(|s| {
                let t = s.trim();
                !t.is_empty()
                    && !t.eq_ignore_ascii_case("null")
                    && !t.eq_ignore_ascii_case("na")
                    && *s == t // leading/trailing spaces are trimmed by design
                    && t.parse::<f64>().is_err() // numeric strings re-infer as numbers
                    && dc_engine::date::parse_date(t).is_err()
                    && !matches!(t.to_ascii_lowercase().as_str(), "true"|"false"|"yes"|"no")
            })
            .collect();
        let t = Table::new(vec![("s", Column::from_strs(keep.clone()))]).unwrap();
        let back = read_csv(&write_csv(&t)).unwrap();
        prop_assert_eq!(back.num_rows(), keep.len());
        for (r, s) in keep.iter().enumerate() {
            prop_assert_eq!(back.value(r, "s").unwrap(), Value::Str(s.clone()));
        }
    }

    #[test]
    fn expression_arith_matches_scalar(a in prop::collection::vec(-1000i64..1000, 1..50), k in -100i64..100) {
        let t = opt_int_table(a.iter().map(|&v| Some(v)).collect());
        let out = dc_engine::eval::eval(&t, &Expr::col("x").add(Expr::lit(k))).unwrap();
        for (r, &v) in a.iter().enumerate() {
            prop_assert_eq!(out.get(r), Value::Int(v + k));
        }
    }
}
