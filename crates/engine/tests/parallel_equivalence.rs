//! Property tests asserting the morsel-parallel kernel paths produce
//! exactly the same tables as their serial counterparts, including on
//! null-heavy columns.
//!
//! The dispatch threshold is forced down to 1 row so even tiny generated
//! tables split into several morsels and exercise the merge logic. Under
//! `--no-default-features` dispatch is disabled and these tests compare
//! the serial path with itself, which keeps the suite green in both
//! builds.

use dc_engine::ops::{
    filter, filter_serial, group_by, group_by_serial, join, join_serial, sort_by, sort_by_serial,
    AggFunc, AggSpec, JoinType, SortKey,
};
use dc_engine::parallel::set_min_parallel_rows;
use dc_engine::{eval, Column, Expr, Table, Value};
use proptest::prelude::*;

/// Force every kernel onto the morsel path (when the feature is on).
fn force_morsels() {
    set_min_parallel_rows(1);
}

fn opt_int() -> impl Strategy<Value = Option<i64>> {
    prop::option::of(-5i64..20)
}

fn opt_key() -> impl Strategy<Value = Option<String>> {
    prop::option::of("[a-c]{1,2}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_and_eval_match_serial(
        rows in prop::collection::vec((opt_int(), opt_key()), 0..300),
    ) {
        force_morsels();
        let t = Table::new(vec![
            ("x", Column::from_opt_ints(rows.iter().map(|(x, _)| *x).collect())),
            ("k", Column::from_opt_strs(rows.iter().map(|(_, k)| k.clone()).collect())),
        ])
        .unwrap();
        let pred = Expr::col("x").gt(Expr::lit(3i64)).or(Expr::col("k").is_null());
        prop_assert_eq!(
            filter(&t, &pred).unwrap(),
            filter_serial(&t, &pred).unwrap()
        );
        let expr = Expr::col("x").mul(Expr::lit(2i64)).add(Expr::lit(1i64));
        prop_assert_eq!(
            eval::eval(&t, &expr).unwrap(),
            eval::eval_serial(&t, &expr).unwrap()
        );
    }

    #[test]
    fn group_by_matches_serial(
        rows in prop::collection::vec((opt_key(), opt_int(), opt_int()), 0..300),
    ) {
        force_morsels();
        // Float values are integer-valued so partial sums are exact in
        // f64 regardless of morsel association.
        let t = Table::new(vec![
            ("k", Column::from_opt_strs(rows.iter().map(|(k, _, _)| k.clone()).collect())),
            ("v", Column::from_opt_ints(rows.iter().map(|(_, v, _)| *v).collect())),
            (
                "f",
                Column::from_opt_floats(
                    rows.iter().map(|(_, _, f)| f.map(|x| x as f64)).collect(),
                ),
            ),
        ])
        .unwrap();
        let aggs = [
            AggSpec::count_records("n"),
            AggSpec::new(AggFunc::Count, "v", "cnt"),
            AggSpec::new(AggFunc::CountDistinct, "v", "dist"),
            AggSpec::new(AggFunc::Sum, "v", "sum"),
            AggSpec::new(AggFunc::Sum, "f", "fsum"),
            AggSpec::new(AggFunc::Avg, "f", "avg"),
            AggSpec::new(AggFunc::Min, "v", "lo"),
            AggSpec::new(AggFunc::Max, "v", "hi"),
            AggSpec::new(AggFunc::Median, "f", "mid"),
            AggSpec::new(AggFunc::First, "v", "first"),
            AggSpec::new(AggFunc::Last, "v", "last"),
        ];
        prop_assert_eq!(
            group_by(&t, &["k"], &aggs).unwrap(),
            group_by_serial(&t, &["k"], &aggs).unwrap()
        );
        // Multi-key grouping and the global (empty-key) group.
        prop_assert_eq!(
            group_by(&t, &["k", "v"], &aggs[..4]).unwrap(),
            group_by_serial(&t, &["k", "v"], &aggs[..4]).unwrap()
        );
        if !rows.is_empty() {
            prop_assert_eq!(
                group_by(&t, &[], &aggs).unwrap(),
                group_by_serial(&t, &[], &aggs).unwrap()
            );
        }
    }

    #[test]
    fn group_by_moments_match_serial_approximately(
        rows in prop::collection::vec((opt_key(), opt_int()), 0..300),
    ) {
        force_morsels();
        let t = Table::new(vec![
            ("k", Column::from_opt_strs(rows.iter().map(|(k, _)| k.clone()).collect())),
            ("v", Column::from_opt_ints(rows.iter().map(|(_, v)| *v).collect())),
        ])
        .unwrap();
        let aggs = [
            AggSpec::new(AggFunc::Variance, "v", "var"),
            AggSpec::new(AggFunc::StdDev, "v", "sd"),
        ];
        // Parallel Welford merging is not bit-identical to the serial
        // update, so moments are compared within a tolerance.
        let par = group_by(&t, &["k"], &aggs).unwrap();
        let ser = group_by_serial(&t, &["k"], &aggs).unwrap();
        prop_assert_eq!(par.num_rows(), ser.num_rows());
        for row in 0..par.num_rows() {
            prop_assert_eq!(par.value(row, "k").unwrap(), ser.value(row, "k").unwrap());
            for col in ["var", "sd"] {
                match (par.value(row, col).unwrap(), ser.value(row, col).unwrap()) {
                    (Value::Null, Value::Null) => {}
                    (Value::Float(a), Value::Float(b)) => {
                        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
                    }
                    (a, b) => prop_assert!(false, "mismatched moments {:?} vs {:?}", a, b),
                }
            }
        }
    }

    #[test]
    fn join_matches_serial(
        lrows in prop::collection::vec((prop::option::of(0i64..8), 0i64..100), 0..150),
        rrows in prop::collection::vec((prop::option::of(0i64..8), opt_key()), 0..150),
    ) {
        force_morsels();
        let left = Table::new(vec![
            ("id", Column::from_opt_ints(lrows.iter().map(|(k, _)| *k).collect())),
            ("payload", Column::from_ints(lrows.iter().map(|(_, v)| *v).collect())),
        ])
        .unwrap();
        let right = Table::new(vec![
            ("id", Column::from_opt_ints(rrows.iter().map(|(k, _)| *k).collect())),
            ("tag", Column::from_opt_strs(rrows.iter().map(|(_, t)| t.clone()).collect())),
        ])
        .unwrap();
        for how in [JoinType::Inner, JoinType::Left, JoinType::Right, JoinType::Full] {
            prop_assert_eq!(
                join(&left, &right, &["id"], &["id"], how).unwrap(),
                join_serial(&left, &right, &["id"], &["id"], how).unwrap()
            );
        }
    }

    #[test]
    fn multi_key_join_matches_serial(
        lrows in prop::collection::vec((opt_key(), prop::option::of(0i64..4)), 0..120),
        rrows in prop::collection::vec((opt_key(), prop::option::of(0i64..4)), 0..120),
    ) {
        force_morsels();
        let left = Table::new(vec![
            ("a", Column::from_opt_strs(lrows.iter().map(|(a, _)| a.clone()).collect())),
            ("b", Column::from_opt_ints(lrows.iter().map(|(_, b)| *b).collect())),
        ])
        .unwrap();
        let right = Table::new(vec![
            ("a", Column::from_opt_strs(rrows.iter().map(|(a, _)| a.clone()).collect())),
            ("b", Column::from_opt_ints(rrows.iter().map(|(_, b)| *b).collect())),
        ])
        .unwrap();
        for how in [JoinType::Inner, JoinType::Left, JoinType::Right, JoinType::Full] {
            prop_assert_eq!(
                join(&left, &right, &["a", "b"], &["a", "b"], how).unwrap(),
                join_serial(&left, &right, &["a", "b"], &["a", "b"], how).unwrap()
            );
        }
    }

    #[test]
    fn sort_matches_serial(
        rows in prop::collection::vec((opt_key(), opt_int()), 0..300),
    ) {
        force_morsels();
        let t = Table::new(vec![
            ("k", Column::from_opt_strs(rows.iter().map(|(k, _)| k.clone()).collect())),
            ("v", Column::from_opt_ints(rows.iter().map(|(_, v)| *v).collect())),
        ])
        .unwrap();
        let keys = [SortKey::asc("k"), SortKey::desc("v")];
        prop_assert_eq!(
            sort_by(&t, &keys).unwrap(),
            sort_by_serial(&t, &keys).unwrap()
        );
        let keys = [SortKey::desc("v")];
        prop_assert_eq!(
            sort_by(&t, &keys).unwrap(),
            sort_by_serial(&t, &keys).unwrap()
        );
    }
}
