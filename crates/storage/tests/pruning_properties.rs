//! Soundness property for zone-map pruning: for ANY table and ANY
//! well-typed predicate, a pruned scan must return exactly the rows a
//! full scan followed by an engine filter returns — pruning may only
//! skip work, never rows. Tables mix nullable int/float/dictionary-
//! string columns, an all-null column, NaN floats, and empty inputs;
//! predicates exercise every prunable leaf plus And/Or/Not nesting.
//!
//! The reference filter runs through both engine paths — `filter` (the
//! morsel-parallel kernel under default features, serial without) and
//! `filter_serial` — so the property also pins scheduler equivalence.

use dc_engine::ops::{filter, filter_serial};
use dc_engine::{Column, DataType, Expr, Table, Value};
use dc_storage::{BlockTable, ScanOptions};
use proptest::prelude::*;

const STRINGS: [&str; 5] = ["apple", "berry", "cherry", "date", "elder"];
const COLS: [&str; 4] = ["i", "f", "s", "n"];

/// One generated row: (nullable int, float selector, string selector).
/// Selectors are decoded in [`build_table`] so the whole row shape fits
/// the vendored proptest's tuple + range strategies.
type RowSeed = (Option<i64>, Option<u32>, u32);

fn build_table(rows: &[RowSeed]) -> Table {
    let n = rows.len();
    let ints = rows.iter().map(|r| r.0).collect();
    // Float selector: mostly small decimals, 39 → NaN.
    let floats = rows
        .iter()
        .map(|r| {
            r.1.map(|v| {
                if v >= 39 {
                    f64::NAN
                } else {
                    v as f64 / 10.0 - 2.0
                }
            })
        })
        .collect();
    // String selector: < 5 picks a dictionary value, the rest are null.
    let strs = rows
        .iter()
        .map(|r| (r.2 < 5).then(|| STRINGS[r.2 as usize].to_string()))
        .collect();
    Table::new(vec![
        ("i", Column::from_opt_ints(ints)),
        ("f", Column::from_opt_floats(floats)),
        ("s", Column::from_opt_strs(strs)),
        ("n", Column::nulls(DataType::Int, n)),
    ])
    .unwrap()
}

/// One predicate leaf: (kind, comparison op, int literal, aux selector).
type LeafSeed = (u32, u32, i64, u32);

fn build_leaf(&(kind, op, v, aux): &LeafSeed) -> Expr {
    let cmp = |col: &str, lit: Expr| {
        let c = Expr::col(col);
        match op % 6 {
            0 => c.eq(lit),
            1 => c.neq(lit),
            2 => c.lt(lit),
            3 => c.le(lit),
            4 => c.gt(lit),
            _ => c.ge(lit),
        }
    };
    match kind % 8 {
        0 => cmp("i", Expr::lit(v)),
        1 => cmp("f", Expr::lit(v as f64 / 2.0)),
        2 => cmp("s", Expr::lit(Value::Str(STRINGS[aux as usize % 5].into()))),
        3 => cmp("n", Expr::lit(v)),
        4 => Expr::col("i").between(Expr::lit(v), Expr::lit(v + (aux as i64 % 4))),
        5 => Expr::InList {
            expr: Box::new(Expr::col("s")),
            list: (0..=aux % 5)
                .map(|ix| Value::Str(STRINGS[ix as usize].into()))
                .collect(),
            negated: op % 2 == 1,
        },
        6 => Expr::col(COLS[aux as usize % 4]).is_null(),
        _ => Expr::col(COLS[aux as usize % 4]).is_not_null(),
    }
}

/// Fold leaves into one predicate, mixing And/Or/Not by selector.
fn build_predicate(leaves: &[(LeafSeed, u32)]) -> Expr {
    let mut expr: Option<Expr> = None;
    for (seed, comb) in leaves {
        let mut leaf = build_leaf(seed);
        if comb % 5 == 4 {
            leaf = leaf.not();
        }
        expr = Some(match expr {
            None => leaf,
            Some(e) if comb % 2 == 0 => e.and(leaf),
            Some(e) => e.or(leaf),
        });
    }
    expr.expect("at least one leaf")
}

fn leaf_strategy() -> impl Strategy<Value = (LeafSeed, u32)> {
    ((0u32..8, 0u32..6, -6i64..6, 0u32..8), 0u32..10)
}

/// Cell-wise table equality that treats NaN as equal to itself —
/// `Table`'s derived `PartialEq` inherits IEEE `NaN != NaN`, which
/// would fail rows that legitimately carry NaN through a filter.
fn same_table(a: &Table, b: &Table) -> bool {
    a.schema() == b.schema()
        && a.num_rows() == b.num_rows()
        && a.schema().names().iter().all(|col| {
            (0..a.num_rows())
                .all(|r| a.value(r, col).unwrap().render() == b.value(r, col).unwrap().render())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pruned scan ≡ full scan + filter, and the receipt's pruning
    /// arithmetic accounts for every byte and block of the full scan.
    #[test]
    fn pruned_scan_equals_filter_over_full_scan(
        rows in prop::collection::vec(
            (prop::option::of(-5i64..5), prop::option::of(0u32..40), 0u32..8),
            0..48,
        ),
        leaves in prop::collection::vec(leaf_strategy(), 1..4),
        block_rows in 1usize..8,
    ) {
        let t = build_table(&rows);
        let pred = build_predicate(&leaves);
        let bt = BlockTable::new(&t, block_rows).unwrap();
        let (full, full_receipt) = bt.scan(&ScanOptions::full()).unwrap();
        let expected = filter(&full, &pred).unwrap();
        prop_assert!(same_table(&filter_serial(&full, &pred).unwrap(), &expected));

        let mut opts = ScanOptions::full();
        opts.predicate = Some(pred.clone());
        let (pruned, receipt) = bt.scan(&opts).unwrap();
        prop_assert!(
            same_table(&pruned, &expected),
            "pruned scan diverged for {:?}:\n  pruned   {:?}\n  expected {:?}",
            pred, pruned, expected
        );

        // Pruning only ever removes cost, and the split is exact: what
        // was scanned plus what was skipped is the full-scan footprint.
        // Faulted bytes can never exceed the logical charge.
        prop_assert!(receipt.bytes_scanned <= full_receipt.bytes_scanned);
        prop_assert!(receipt.bytes_read <= receipt.bytes_scanned);
        prop_assert!(full_receipt.bytes_read <= full_receipt.bytes_scanned);
        prop_assert_eq!(
            receipt.bytes_scanned + receipt.bytes_pruned,
            full_receipt.bytes_scanned
        );
        prop_assert_eq!(
            receipt.blocks_scanned + receipt.blocks_pruned,
            receipt.total_blocks
        );
    }

    /// Pruning composes with block sampling: the degraded (sampled)
    /// scan with a predicate equals filtering the sampled scan, for any
    /// seed — the row mask depends only on row counts, never on which
    /// blocks were pruned.
    #[test]
    fn pruned_sampled_scan_equals_filter_over_sampled_scan(
        rows in prop::collection::vec(
            (prop::option::of(-5i64..5), prop::option::of(0u32..40), 0u32..8),
            0..48,
        ),
        leaves in prop::collection::vec(leaf_strategy(), 1..4),
        seed in 0u64..200,
    ) {
        let t = build_table(&rows);
        let pred = build_predicate(&leaves);
        let bt = BlockTable::new(&t, 5).unwrap();
        let (sampled, _) = bt.scan(&ScanOptions::block_sampled(0.5, seed)).unwrap();
        let expected = filter(&sampled, &pred).unwrap();

        let mut opts = ScanOptions::block_sampled(0.5, seed);
        opts.predicate = Some(pred);
        let (out, _) = bt.scan(&opts).unwrap();
        prop_assert!(same_table(&out, &expected));
    }
}
