//! Property tests for the storage layer's invariants.

use dc_engine::{Column, Table};
use dc_storage::{BlockTable, CloudDatabase, Pricing, ScanOptions, SnapshotStore};
use proptest::prelude::*;

fn table(n: usize) -> Table {
    Table::new(vec![
        ("id", Column::from_ints((0..n as i64).collect())),
        (
            "v",
            Column::from_floats((0..n).map(|i| i as f64 / 3.0).collect()),
        ),
    ])
    .unwrap()
}

proptest! {
    /// A full scan reassembles exactly the stored table, for any block
    /// size.
    #[test]
    fn full_scan_is_identity(rows in 0usize..3000, block_rows in 1usize..500) {
        let t = table(rows);
        let bt = BlockTable::new(&t, block_rows).unwrap();
        let (out, receipt) = bt.scan(&ScanOptions::full()).unwrap();
        prop_assert_eq!(&out, &t);
        prop_assert_eq!(receipt.rows_scanned as usize, rows);
        prop_assert_eq!(receipt.blocks_scanned, receipt.total_blocks);
    }

    /// Block count is ceil(rows / block_rows) (min 1).
    #[test]
    fn block_count_formula(rows in 0usize..5000, block_rows in 1usize..700) {
        let bt = BlockTable::new(&table(rows), block_rows).unwrap();
        let expected = if rows == 0 { 1 } else { rows.div_ceil(block_rows) };
        prop_assert_eq!(bt.num_blocks(), expected);
    }

    /// Block sampling returns a subset of the table's rows (no invented
    /// data) and scans no more bytes than a full scan.
    #[test]
    fn block_sample_is_subset(seed in 0u64..500, rate in 1u32..100) {
        let t = table(2000);
        let bt = BlockTable::new(&t, 128).unwrap();
        let rate = rate as f64 / 100.0;
        let (sample, receipt) = bt.scan(&ScanOptions::block_sampled(rate, seed)).unwrap();
        let (_, full) = bt.scan(&ScanOptions::full()).unwrap();
        prop_assert!(receipt.bytes_scanned <= full.bytes_scanned);
        prop_assert!(receipt.bytes_read <= receipt.bytes_scanned);
        prop_assert!(sample.num_rows() <= t.num_rows());
        // Every sampled id exists in the source (block sampling never
        // fabricates rows).
        for r in 0..sample.num_rows() {
            let id = sample.value(r, "id").unwrap().as_i64().unwrap();
            prop_assert!((0..2000).contains(&id));
        }
        // Determinism.
        let (again, _) = bt.scan(&ScanOptions::block_sampled(rate, seed)).unwrap();
        prop_assert_eq!(sample, again);
    }

    /// Scan cost is linear in bytes under consumption pricing, for any
    /// rate.
    #[test]
    fn cost_linear_in_bytes(dollars_per_tb in 0.1f64..10_000.0, bytes in 0u64..10_000_000_000) {
        let p = Pricing::PerTbScanned { dollars_per_tb };
        let unit = p.scan_cost(1_000_000);
        let cost = p.scan_cost(bytes);
        prop_assert!((cost - unit * bytes as f64 / 1e6).abs() < 1e-9 * (1.0 + cost.abs()));
    }

    /// The database meter equals the sum of its receipts.
    #[test]
    fn meter_sums_receipts(scans in prop::collection::vec(1u32..100, 1..10)) {
        let mut db = CloudDatabase::new("d", Pricing::default_cloud());
        db.create_table_with_blocks("t", &table(1000), 64).unwrap();
        let mut bytes = 0u64;
        for (i, rate) in scans.iter().enumerate() {
            let rate = *rate as f64 / 100.0;
            let (_, receipt) = db
                .scan("t", &ScanOptions::block_sampled(rate, i as u64))
                .unwrap();
            bytes += receipt.bytes_scanned;
        }
        prop_assert_eq!(db.meter().bytes(), bytes);
        prop_assert_eq!(db.meter().queries(), scans.len() as u64);
    }

    /// Snapshot store: create/read/refresh/delete lifecycle is total and
    /// reads are always free.
    #[test]
    fn snapshot_lifecycle(sizes in prop::collection::vec(0usize..500, 1..8)) {
        let mut store = SnapshotStore::new();
        for (i, &n) in sizes.iter().enumerate() {
            let name = format!("s{i}");
            store.create(&name, table(n), "src", vec![], None).unwrap();
            prop_assert_eq!(store.read(&name).unwrap().num_rows(), n);
            let v = store.refresh(&name, table(n + 1)).unwrap();
            prop_assert_eq!(v, 2);
        }
        prop_assert_eq!(store.meter().dollars(), 0.0);
        prop_assert_eq!(store.names().len(), sizes.len());
        for i in 0..sizes.len() {
            store.delete(&format!("s{i}")).unwrap();
        }
        prop_assert!(store.names().is_empty());
    }
}
