//! Storage-layer errors.

use std::fmt;

/// Errors from the simulated cloud-database and snapshot layers.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// No such database in the catalog.
    DatabaseNotFound { name: String },
    /// No such table in the database.
    TableNotFound { database: String, name: String },
    /// A table/snapshot with this name already exists.
    AlreadyExists { name: String },
    /// No such snapshot in the local store.
    SnapshotNotFound { name: String },
    /// Invalid argument (bad sample rate, zero block size, ...).
    InvalidArgument { message: String },
    /// A transient infrastructure failure (flaky connection, throttled
    /// scan, interrupted write). Retrying the same operation is expected
    /// to succeed.
    Transient { operation: String, message: String },
    /// The backing service is down. Retrying within a request's budget
    /// will not help; callers should fail the dependent work instead.
    Unavailable { operation: String, message: String },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
}

impl StorageError {
    /// Convenience constructor for [`StorageError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        StorageError::InvalidArgument {
            message: message.into(),
        }
    }

    /// Whether retrying the failed operation can plausibly succeed.
    /// Only [`StorageError::Transient`] qualifies: everything else is
    /// either a logic error (wrong name, bad argument) or a hard outage.
    pub fn is_retryable(&self) -> bool {
        matches!(self, StorageError::Transient { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DatabaseNotFound { name } => write!(f, "database not found: {name:?}"),
            StorageError::TableNotFound { database, name } => {
                write!(f, "table not found: {database:?}.{name:?}")
            }
            StorageError::AlreadyExists { name } => write!(f, "already exists: {name:?}"),
            StorageError::SnapshotNotFound { name } => write!(f, "snapshot not found: {name:?}"),
            StorageError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            StorageError::Transient { operation, message } => {
                write!(f, "transient {operation} failure: {message}")
            }
            StorageError::Unavailable { operation, message } => {
                write!(f, "{operation} unavailable: {message}")
            }
            StorageError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dc_engine::EngineError> for StorageError {
    fn from(e: dc_engine::EngineError) -> Self {
        StorageError::Engine(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StorageError::TableNotFound {
            database: "MainDatabase".into(),
            name: "parties".into(),
        };
        assert!(e.to_string().contains("parties"));
        let e: StorageError = dc_engine::EngineError::column_not_found("x").into();
        assert!(e.to_string().contains("engine error"));
    }

    #[test]
    fn retryable_taxonomy() {
        let t = StorageError::Transient {
            operation: "scan".into(),
            message: "throttled".into(),
        };
        assert!(t.is_retryable());
        assert!(t.to_string().contains("transient scan failure"));
        let u = StorageError::Unavailable {
            operation: "scan".into(),
            message: "down".into(),
        };
        assert!(!u.is_retryable());
        assert!(u.to_string().contains("unavailable"));
        assert!(!StorageError::invalid("x").is_retryable());
        assert!(!StorageError::SnapshotNotFound { name: "s".into() }.is_retryable());
    }
}
