//! Storage-layer errors.

use std::fmt;

/// Errors from the simulated cloud-database and snapshot layers.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// No such database in the catalog.
    DatabaseNotFound { name: String },
    /// No such table in the database.
    TableNotFound { database: String, name: String },
    /// A table/snapshot with this name already exists.
    AlreadyExists { name: String },
    /// No such snapshot in the local store.
    SnapshotNotFound { name: String },
    /// Invalid argument (bad sample rate, zero block size, ...).
    InvalidArgument { message: String },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
}

impl StorageError {
    /// Convenience constructor for [`StorageError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        StorageError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DatabaseNotFound { name } => write!(f, "database not found: {name:?}"),
            StorageError::TableNotFound { database, name } => {
                write!(f, "table not found: {database:?}.{name:?}")
            }
            StorageError::AlreadyExists { name } => write!(f, "already exists: {name:?}"),
            StorageError::SnapshotNotFound { name } => write!(f, "snapshot not found: {name:?}"),
            StorageError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            StorageError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dc_engine::EngineError> for StorageError {
    fn from(e: dc_engine::EngineError) -> Self {
        StorageError::Engine(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StorageError::TableNotFound {
            database: "MainDatabase".into(),
            name: "parties".into(),
        };
        assert!(e.to_string().contains("parties"));
        let e: StorageError = dc_engine::EngineError::column_not_found("x").into();
        assert!(e.to_string().contains("engine error"));
    }
}
