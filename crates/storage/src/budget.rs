//! Per-tenant scan-byte budgets: a token bucket denominated in the same
//! bytes every [`crate::pricing::ScanReceipt`] charges.
//!
//! The serving layer fronts the catalog with one [`ByteBudget`] per
//! tenant. Admission is **reservation-based**: before a job runs, the
//! caller reserves an upper bound on the bytes its scans could charge
//! (e.g. [`crate::block::BlockTable::total_bytes`] per staged load);
//! after the job, [`ByteBudget::settle`] books the bytes the receipts
//! actually charged and refunds the rest. Because every charge passes
//! through a prior reservation and a reservation only succeeds when the
//! bucket holds it, total charged bytes can never exceed total deposits
//! (initial capacity + token-bucket refill) — the budget invariant the
//! serve-layer proptests assert.
//!
//! The bucket refills continuously at `refill_bytes_per_sec`, capped at
//! `capacity_bytes`. A failed reservation reports how long the caller
//! should wait for enough tokens ([`ByteBudget::retry_after`]) so an
//! over-budget request can be answered with a typed rejection instead of
//! a panic or an unbounded stall.

use std::time::{Duration, Instant};

/// Sizing for one tenant's scan-byte token bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetConfig {
    /// Bucket capacity: the largest burst of scan bytes the tenant can
    /// spend at once (also the initial balance).
    pub capacity_bytes: u64,
    /// Continuous refill rate. 0 = a fixed, non-renewing allowance.
    pub refill_bytes_per_sec: u64,
}

impl BudgetConfig {
    /// A fixed allowance that never refills.
    pub fn fixed(capacity_bytes: u64) -> BudgetConfig {
        BudgetConfig {
            capacity_bytes,
            refill_bytes_per_sec: 0,
        }
    }
}

/// One tenant's scan-byte token bucket. Not internally synchronized —
/// callers own the locking (the serve layer keeps one behind each
/// tenant's queue lock).
#[derive(Debug)]
pub struct ByteBudget {
    config: BudgetConfig,
    /// Bytes currently reservable.
    available: u64,
    /// When the continuous refill was last folded into `available`.
    last_refill: Instant,
    /// Total bytes ever deposited (initial capacity + refills).
    deposited: u64,
    /// Total bytes settle() booked as actually charged.
    charged: u64,
}

impl ByteBudget {
    /// A full bucket.
    pub fn new(config: BudgetConfig) -> ByteBudget {
        ByteBudget {
            config,
            available: config.capacity_bytes,
            last_refill: Instant::now(),
            deposited: config.capacity_bytes,
            charged: 0,
        }
    }

    /// The bucket's sizing.
    pub fn config(&self) -> BudgetConfig {
        self.config
    }

    /// Fold elapsed refill into the balance. Advances `last_refill` only
    /// by the time worth of whole bytes credited, so fractional tokens
    /// are never dropped across calls.
    fn refill(&mut self) {
        if self.config.refill_bytes_per_sec == 0 {
            return;
        }
        let elapsed = self.last_refill.elapsed();
        let earned =
            (elapsed.as_nanos() * self.config.refill_bytes_per_sec as u128 / 1_000_000_000) as u64;
        if earned == 0 {
            return;
        }
        let credited = earned.min(self.config.capacity_bytes.saturating_sub(self.available));
        self.available += credited;
        self.deposited += credited;
        // Time corresponding to the earned tokens (credited or not —
        // tokens beyond capacity are forfeited, not banked).
        let consumed_ns = earned as u128 * 1_000_000_000 / self.config.refill_bytes_per_sec as u128;
        self.last_refill += Duration::from_nanos(consumed_ns as u64);
    }

    /// Bytes currently reservable.
    pub fn available(&mut self) -> u64 {
        self.refill();
        self.available
    }

    /// Reserve `bytes` ahead of execution. Returns whether the bucket
    /// held them; a successful reservation debits the balance until
    /// [`ByteBudget::settle`] books the actual charge.
    pub fn try_reserve(&mut self, bytes: u64) -> bool {
        self.refill();
        if self.available >= bytes {
            self.available -= bytes;
            true
        } else {
            false
        }
    }

    /// Book the bytes a reserved job actually charged, refunding the
    /// unused remainder of the reservation. When retries or resumed scans
    /// pushed the actual charge past the reservation (possible only under
    /// fault injection), the excess is debited from whatever balance
    /// remains — the balance floors at zero, so total debits can still
    /// never exceed total deposits.
    pub fn settle(&mut self, reserved: u64, actual: u64) {
        self.charged += actual;
        if actual >= reserved {
            self.available = self.available.saturating_sub(actual - reserved);
        } else {
            self.available = (self.available + (reserved - actual)).min(self.config.capacity_bytes);
        }
    }

    /// How long until `bytes` could be reserved, for typed
    /// budget-exhausted rejections. `None` when the request can never
    /// succeed (larger than capacity with no refill, or no refill at
    /// all while short).
    pub fn retry_after(&mut self, bytes: u64) -> Option<Duration> {
        self.refill();
        if self.available >= bytes {
            return Some(Duration::ZERO);
        }
        if bytes > self.config.capacity_bytes || self.config.refill_bytes_per_sec == 0 {
            return None;
        }
        let missing = bytes - self.available;
        let ns = missing as u128 * 1_000_000_000 / self.config.refill_bytes_per_sec as u128;
        // Round up so a caller sleeping exactly this long finds the
        // tokens there.
        Some(Duration::from_nanos(ns as u64) + Duration::from_nanos(1))
    }

    /// Total bytes ever deposited (initial capacity + refill credits).
    pub fn deposited(&self) -> u64 {
        self.deposited
    }

    /// Total bytes ever booked as charged by [`ByteBudget::settle`].
    pub fn charged(&self) -> u64 {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_budget_reserve_and_settle() {
        let mut b = ByteBudget::new(BudgetConfig::fixed(1000));
        assert_eq!(b.available(), 1000);
        assert!(b.try_reserve(600));
        assert_eq!(b.available(), 400);
        assert!(!b.try_reserve(600));
        // Job actually charged 100 of the 600 reserved: 500 refunds.
        b.settle(600, 100);
        assert_eq!(b.available(), 900);
        assert_eq!(b.charged(), 100);
        assert_eq!(b.deposited(), 1000);
    }

    #[test]
    fn charged_never_exceeds_deposits() {
        let mut b = ByteBudget::new(BudgetConfig::fixed(100));
        let mut charged_total = 0u64;
        for want in [40u64, 40, 40, 40] {
            if b.try_reserve(want) {
                b.settle(want, want);
                charged_total += want;
            }
        }
        assert_eq!(charged_total, 80, "third and fourth reservations bounce");
        assert!(b.charged() <= b.deposited());
    }

    #[test]
    fn overdraft_floors_at_zero() {
        let mut b = ByteBudget::new(BudgetConfig::fixed(100));
        assert!(b.try_reserve(50));
        // A retried scan charged double the reservation.
        b.settle(50, 100);
        assert_eq!(b.available(), 0);
        // The balance floored instead of going negative.
        assert!(!b.try_reserve(1));
    }

    #[test]
    fn retry_after_reflects_refill_rate() {
        let mut b = ByteBudget::new(BudgetConfig {
            capacity_bytes: 1000,
            refill_bytes_per_sec: 1000,
        });
        assert!(b.try_reserve(1000));
        let wait = b.retry_after(500).expect("refill makes it reachable");
        assert!(wait > Duration::from_millis(400), "{wait:?}");
        assert!(wait < Duration::from_millis(700), "{wait:?}");
        // Unreachable asks are typed as such, not as a huge wait.
        assert_eq!(b.retry_after(2000), None);
        let mut fixed = ByteBudget::new(BudgetConfig::fixed(100));
        assert!(fixed.try_reserve(100));
        assert_eq!(fixed.retry_after(10), None);
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = ByteBudget::new(BudgetConfig {
            capacity_bytes: 500,
            // Absurd rate so one test-time instant refills everything.
            refill_bytes_per_sec: u32::MAX as u64,
        });
        assert!(b.try_reserve(500));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.available(), 500, "refill caps at capacity");
        assert!(b.deposited() >= 1000);
    }
}
