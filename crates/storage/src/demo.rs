//! Synthetic demo datasets.
//!
//! The paper demos against proprietary or external data (the SWITRS
//! California car-collision database in Figure 1, a FRED GDP series in
//! Figure 2, a 6-billion-row IoT table in §3). None are shippable, so the
//! generators here emit synthetic equivalents with the same schemas and
//! value domains — the properties the exercised code paths actually
//! depend on. See DESIGN.md §1 for the substitution table.

use dc_engine::column::Column;
use dc_engine::date::days_from_ymd;
use dc_engine::Table;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.random_range(0..options.len())]
}

/// The three tables of the Figure 1 demo: collisions, parties, victims —
/// schema and categorical domains match the screenshot; row counts scale
/// with `n_collisions`.
pub fn california_collisions(n_collisions: usize, seed: u64) -> (Table, Table, Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sobriety = [
        "had not been drinking",
        "had been drinking, under influence",
        "not applicable",
        "impairment unknown",
    ];
    let party_types = [
        "driver",
        "pedestrian",
        "parked vehicle",
        "bicyclist",
        "other",
    ];
    let sexes = ["male", "female"];
    let safety = [
        "air bag not deployed",
        "air bag deployed",
        "lap/shoulder harness used",
        "none in vehicle",
    ];
    let directions = ["north", "south", "east", "west"];
    let roles = ["driver", "passenger", "pedestrian", "bicyclist"];
    let injuries = [
        "no injury",
        "complaint of pain",
        "other visible injury",
        "severe injury",
        "killed",
    ];

    // collisions
    let mut case_id = Vec::with_capacity(n_collisions);
    let mut jurisdiction = Vec::with_capacity(n_collisions);
    let mut officer_id = Vec::with_capacity(n_collisions);
    let mut collision_date = Vec::with_capacity(n_collisions);
    let mut severity = Vec::with_capacity(n_collisions);
    let mut weather = Vec::with_capacity(n_collisions);
    let base_day = days_from_ymd(2015, 1, 1);
    for i in 0..n_collisions {
        case_id.push(5_000_000 + i as i64);
        jurisdiction.push(rng.random_range(1000i64..2000));
        officer_id.push(rng.random_range(10_000i64..99_999));
        collision_date.push(base_day + rng.random_range(0..365 * 6));
        severity.push(pick(&mut rng, &injuries).to_string());
        weather.push(pick(&mut rng, &["clear", "cloudy", "raining", "fog"]).to_string());
    }
    let collisions = Table::new(vec![
        ("case_id", Column::from_ints(case_id.clone())),
        ("jurisdiction", Column::from_ints(jurisdiction)),
        ("officer_id", Column::from_ints(officer_id)),
        ("collision_date", Column::from_dates(collision_date)),
        ("collision_severity", Column::from_strs(severity)),
        ("weather", Column::from_strs(weather)),
    ])
    .expect("collisions schema is valid");

    // parties: ~2 per collision
    let mut p_id = Vec::new();
    let mut p_case = Vec::new();
    let mut p_num = Vec::new();
    let mut p_type = Vec::new();
    let mut p_fault = Vec::new();
    let mut p_sex: Vec<Option<String>> = Vec::new();
    let mut p_age: Vec<Option<i64>> = Vec::new();
    let mut p_sobriety: Vec<Option<String>> = Vec::new();
    let mut p_dir: Vec<Option<String>> = Vec::new();
    let mut p_safety: Vec<Option<String>> = Vec::new();
    let mut p_cell = Vec::new();
    let mut next_party_id = 3_300_000i64;
    for (ci, &case) in case_id.iter().enumerate() {
        let parties = 1 + (rng.random_range(0..100) < 85) as usize; // mostly 2
        let at_fault_slot = rng.random_range(0..parties);
        for pn in 0..parties {
            p_id.push(next_party_id);
            next_party_id += 1;
            p_case.push(case);
            p_num.push(pn as i64 + 1);
            let ptype = if pn == 0 {
                "driver"
            } else {
                pick(&mut rng, &party_types)
            };
            p_type.push(ptype.to_string());
            p_fault.push((pn == at_fault_slot) as i64);
            let known = ptype != "parked vehicle" && rng.random_range(0..100) < 88;
            p_sex.push(known.then(|| pick(&mut rng, &sexes).to_string()));
            p_age.push(known.then(|| {
                // Young drivers over-represented among at-fault parties to
                // give the Figure 1 bubble chart signal.
                if pn == at_fault_slot && rng.random_range(0..100) < 40 {
                    rng.random_range(16i64..30)
                } else {
                    rng.random_range(16i64..90)
                }
            }));
            p_sobriety.push(if ptype == "parked vehicle" {
                Some("not applicable".to_string())
            } else {
                (rng.random_range(0..100) < 92).then(|| pick(&mut rng, &sobriety).to_string())
            });
            p_dir.push(
                (rng.random_range(0..100) < 80).then(|| pick(&mut rng, &directions).to_string()),
            );
            p_safety
                .push((rng.random_range(0..100) < 90).then(|| pick(&mut rng, &safety).to_string()));
            p_cell.push((rng.random_range(0..100) < 7) as i64);
        }
        let _ = ci;
    }
    let parties = Table::new(vec![
        ("id", Column::from_ints(p_id.clone())),
        ("case_id", Column::from_ints(p_case.clone())),
        ("party_number", Column::from_ints(p_num.clone())),
        ("party_type", Column::from_strs(p_type)),
        ("at_fault", Column::from_ints(p_fault)),
        ("party_sex", Column::from_opt_strs(p_sex)),
        ("party_age", Column::from_opt_ints(p_age)),
        ("party_sobriety", Column::from_opt_strs(p_sobriety)),
        ("direction", Column::from_opt_strs(p_dir)),
        ("party_safety_equipment", Column::from_opt_strs(p_safety)),
        ("cellphone_in_use", Column::from_ints(p_cell)),
    ])
    .expect("parties schema is valid");

    // victims: ~1 per collision
    let mut v_id = Vec::new();
    let mut v_case = Vec::new();
    let mut v_pnum = Vec::new();
    let mut v_role = Vec::new();
    let mut v_sex: Vec<Option<String>> = Vec::new();
    let mut v_age: Vec<Option<i64>> = Vec::new();
    let mut v_injury = Vec::new();
    for (vi, &case) in case_id.iter().enumerate() {
        if rng.random_range(0..100) < 70 {
            v_id.push(9_000_000 + vi as i64);
            v_case.push(case);
            v_pnum.push(rng.random_range(1i64..3));
            v_role.push(pick(&mut rng, &roles).to_string());
            v_sex.push((rng.random_range(0..100) < 90).then(|| pick(&mut rng, &sexes).to_string()));
            v_age.push((rng.random_range(0..100) < 90).then(|| rng.random_range(1i64..95)));
            v_injury.push(pick(&mut rng, &injuries).to_string());
        }
    }
    let victims = Table::new(vec![
        ("id", Column::from_ints(v_id)),
        ("case_id", Column::from_ints(v_case)),
        ("party_number", Column::from_ints(v_pnum)),
        ("victim_role", Column::from_strs(v_role)),
        ("victim_sex", Column::from_opt_strs(v_sex)),
        ("victim_age", Column::from_opt_ints(v_age)),
        ("victim_degree_of_injury", Column::from_strs(v_injury)),
    ])
    .expect("victims schema is valid");

    (collisions, parties, victims)
}

/// A synthetic quarterly real-GDP-per-capita-like series (the Figure 2
/// FRED `GDPC1` substitute): exponential trend with mild noise and a
/// sharp 2020 shock followed by partial recovery. Columns: `DATE`
/// (quarter start), `GDPC1`.
pub fn fred_gdp() -> Table {
    let mut dates = Vec::new();
    let mut values = Vec::new();
    let start = days_from_ymd(1990, 1, 1);
    let mut day = start;
    let mut q = 0usize;
    let mut rng = StdRng::seed_from_u64(2020);
    let end = days_from_ymd(2024, 10, 1);
    while day <= end {
        let t = q as f64;
        // ~0.5% quarterly trend growth from a 14,000 base.
        let mut v = 14_000.0 * (1.005f64).powf(t);
        let (y, m, _) = dc_engine::date::ymd_from_days(day);
        // 2020 shock: Q2 2020 drops ~9%, recovering over 6 quarters.
        let shock_q0 = (2020 - 1990) * 4 + 1; // index of 2020 Q2
        let qi = (y - 1990) * 4 + (m as i64 - 1) / 3;
        if qi >= shock_q0 {
            let since = (qi - shock_q0) as f64;
            let recovery = (since / 6.0).min(1.0);
            v *= 1.0 - 0.09 * (1.0 - recovery);
        }
        v += rng.random_range(-40.0..40.0);
        dates.push(day);
        values.push(v);
        day = dc_engine::date::add_months(day, 3);
        q += 1;
    }
    Table::new(vec![
        ("DATE", Column::from_dates(dates)),
        ("GDPC1", Column::from_floats(values)),
    ])
    .expect("gdp schema is valid")
}

/// The §3 IoT table substitute: `device_id`, `ts` (date), `temperature`,
/// `humidity`, `status`, with ~2% missing sensor values.
pub fn iot_readings(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = days_from_ymd(2022, 1, 1);
    let mut device = Vec::with_capacity(n);
    let mut ts = Vec::with_capacity(n);
    let mut temp: Vec<Option<f64>> = Vec::with_capacity(n);
    let mut hum: Vec<Option<f64>> = Vec::with_capacity(n);
    let mut status = Vec::with_capacity(n);
    for _ in 0..n {
        device.push(rng.random_range(1i64..=500));
        ts.push(base + rng.random_range(0..730));
        temp.push((rng.random_range(0..100) >= 2).then(|| rng.random_range(-10.0..45.0)));
        hum.push((rng.random_range(0..100) >= 2).then(|| rng.random_range(5.0..100.0)));
        status.push(pick(&mut rng, &["ok", "ok", "ok", "ok", "degraded", "offline"]).to_string());
    }
    Table::new(vec![
        ("device_id", Column::from_ints(device)),
        ("ts", Column::from_dates(ts)),
        ("temperature", Column::from_opt_floats(temp)),
        ("humidity", Column::from_opt_floats(hum)),
        ("status", Column::from_strs(status)),
    ])
    .expect("iot schema is valid")
}

/// A sales dataset for the NL2Code examples (§4.2's
/// `PurchaseStatus` walkthrough): `order_id`, `order_date`, `region`,
/// `product`, `price`, `discount`, `quantity`, `PurchaseStatus`.
pub fn sales(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = days_from_ymd(2023, 1, 1);
    let regions = ["north", "south", "east", "west"];
    let products = ["widget", "gadget", "doohickey", "gizmo", "sprocket"];
    let mut order_id = Vec::with_capacity(n);
    let mut order_date = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut product = Vec::with_capacity(n);
    let mut price = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut ps = Vec::with_capacity(n);
    for i in 0..n {
        order_id.push(100_000 + i as i64);
        order_date.push(base + rng.random_range(0..365));
        region.push(pick(&mut rng, &regions).to_string());
        product.push(pick(&mut rng, &products).to_string());
        price.push((rng.random_range(500..20_000) as f64) / 100.0);
        discount.push(rng.random_range(0..30) as f64 / 100.0);
        quantity.push(rng.random_range(1i64..20));
        ps.push(
            if rng.random_range(0..100) < 85 {
                "Successful"
            } else {
                "Unsuccessful"
            }
            .to_string(),
        );
    }
    Table::new(vec![
        ("order_id", Column::from_ints(order_id)),
        ("order_date", Column::from_dates(order_date)),
        ("region", Column::from_strs(region)),
        ("product", Column::from_strs(product)),
        ("price", Column::from_floats(price)),
        ("discount", Column::from_floats(discount)),
        ("quantity", Column::from_ints(quantity)),
        ("PurchaseStatus", Column::from_strs(ps)),
    ])
    .expect("sales schema is valid")
}

/// An HR dataset for the §4.1 walkthrough ("Compute the Average Age and
/// Median Salary for each JobLevel").
pub fn employees(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = ["junior", "mid", "senior", "staff", "principal"];
    let mut id = Vec::with_capacity(n);
    let mut age = Vec::with_capacity(n);
    let mut salary = Vec::with_capacity(n);
    let mut level = Vec::with_capacity(n);
    let mut dept = Vec::with_capacity(n);
    for i in 0..n {
        id.push(i as i64 + 1);
        let li = rng.random_range(0..levels.len());
        level.push(levels[li].to_string());
        age.push(rng.random_range(22i64 + 2 * li as i64..60));
        salary.push(50_000.0 + 30_000.0 * li as f64 + rng.random_range(-5_000.0..15_000.0));
        dept.push(pick(&mut rng, &["eng", "sales", "finance", "ops"]).to_string());
    }
    Table::new(vec![
        ("employee_id", Column::from_ints(id)),
        ("Age", Column::from_ints(age)),
        ("Salary", Column::from_floats(salary)),
        ("JobLevel", Column::from_strs(level)),
        ("department", Column::from_strs(dept)),
    ])
    .expect("employees schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::ops::{group_by, AggSpec};

    #[test]
    fn collisions_shape_and_relationships() {
        let (c, p, v) = california_collisions(500, 1);
        assert_eq!(c.num_rows(), 500);
        assert!(p.num_rows() >= 500); // ≥1 party per collision
        assert!(v.num_rows() <= 500);
        // Every party's case_id exists in collisions.
        let joined = dc_engine::ops::join(
            &p,
            &c,
            &["case_id"],
            &["case_id"],
            dc_engine::JoinType::Inner,
        )
        .unwrap();
        assert_eq!(joined.num_rows(), p.num_rows());
    }

    #[test]
    fn collisions_deterministic() {
        let (a, _, _) = california_collisions(100, 7);
        let (b, _, _) = california_collisions(100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn parties_have_nulls_like_the_screenshot() {
        let (_, p, _) = california_collisions(1000, 2);
        assert!(p.column("party_age").unwrap().null_count() > 0);
        assert!(p.column("party_sobriety").unwrap().null_count() > 0);
    }

    #[test]
    fn exactly_one_at_fault_per_case() {
        let (_, p, _) = california_collisions(300, 3);
        let per_case = group_by(
            &p,
            &["case_id"],
            &[AggSpec::new(dc_engine::AggFunc::Sum, "at_fault", "faults")],
        )
        .unwrap();
        for r in 0..per_case.num_rows() {
            assert_eq!(
                per_case.value(r, "faults").unwrap(),
                dc_engine::Value::Int(1)
            );
        }
    }

    #[test]
    fn gdp_series_has_2020_shock() {
        let t = fred_gdp();
        assert!(t.num_rows() > 130); // 1990..2024 quarterly
                                     // Find 2020-04-01 and 2019-10-01 values.
        let mut v2019q4 = None;
        let mut v2020q2 = None;
        for r in 0..t.num_rows() {
            let d = t.value(r, "DATE").unwrap();
            let g = t.value(r, "GDPC1").unwrap().as_f64().unwrap();
            if d == dc_engine::Value::Date(days_from_ymd(2019, 10, 1)) {
                v2019q4 = Some(g);
            }
            if d == dc_engine::Value::Date(days_from_ymd(2020, 4, 1)) {
                v2020q2 = Some(g);
            }
        }
        let drop = 1.0 - v2020q2.unwrap() / v2019q4.unwrap();
        assert!(drop > 0.05, "2020 shock too small: {drop}");
    }

    #[test]
    fn iot_missing_rate_in_expected_range() {
        // §3: "the number of missing values in the sample was within the
        // expected range" — the generator plants ~2% missing.
        let t = iot_readings(20_000, 4);
        let nulls = t.column("temperature").unwrap().null_count();
        let rate = nulls as f64 / t.num_rows() as f64;
        assert!((0.01..0.04).contains(&rate), "rate {rate}");
    }

    #[test]
    fn sales_status_domain() {
        let t = sales(500, 5);
        for r in 0..t.num_rows() {
            let s = t.value(r, "PurchaseStatus").unwrap();
            let s = s.as_str().unwrap().to_string();
            assert!(s == "Successful" || s == "Unsuccessful");
        }
    }

    #[test]
    fn employees_levels_order_salary() {
        let t = employees(2000, 6);
        let by_level = group_by(
            &t,
            &["JobLevel"],
            &[AggSpec::new(dc_engine::AggFunc::Avg, "Salary", "avg")],
        )
        .unwrap();
        let mut junior = 0.0;
        let mut principal = 0.0;
        for r in 0..by_level.num_rows() {
            let lvl = by_level.value(r, "JobLevel").unwrap();
            let avg = by_level.value(r, "avg").unwrap().as_f64().unwrap();
            match lvl.as_str().unwrap() {
                "junior" => junior = avg,
                "principal" => principal = avg,
                _ => {}
            }
        }
        assert!(principal > junior + 50_000.0);
    }
}
