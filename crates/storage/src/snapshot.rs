//! Snapshots: cached copies of cloud tables/queries in a fixed-cost local
//! store (§3).
//!
//! A snapshot is an artifact — it carries the recipe that produced it, so
//! it can be refreshed from the source and shared among collaborators.
//! Iterating against a snapshot costs nothing marginal; re-running the
//! expensive upstream pipeline is only needed on refresh.

use std::collections::BTreeMap;
use std::sync::Arc;

use dc_engine::Table;

use crate::error::{Result, StorageError};
use crate::fault::FaultInjector;
use crate::pricing::{CostMeter, Pricing};

/// A cached local copy of a (possibly sampled, possibly derived) cloud
/// table, plus the provenance needed to refresh it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub name: String,
    pub data: Table,
    /// GEL recipe text that produced this snapshot (one step per line).
    pub recipe: Vec<String>,
    /// Source description, e.g. `MainDatabase.readings`.
    pub source: String,
    /// Sampling fraction applied at creation, if any.
    pub sample_fraction: Option<f64>,
    /// Monotonic refresh counter.
    pub version: u64,
}

/// The local, fixed-cost snapshot store.
#[derive(Debug)]
pub struct SnapshotStore {
    pricing: Pricing,
    snapshots: BTreeMap<String, Snapshot>,
    meter: Arc<CostMeter>,
    /// Soft capacity in bytes (the paper notes snapshots are "often small,
    /// less than 100GB" and live on a fixed-cost instance).
    capacity_bytes: u64,
    injector: Option<Arc<FaultInjector>>,
    /// Monotonic counter driving store-wide snapshot versions: every
    /// committed write (create or refresh) advances it, so a
    /// `(name, store version)` pair identifies one immutable snapshot
    /// state even across delete-and-recreate.
    version_counter: u64,
    /// Current store version of each live snapshot (absent once deleted).
    versions: BTreeMap<String, u64>,
}

impl SnapshotStore {
    /// A store with the default local pricing and a 100 GB soft capacity.
    pub fn new() -> SnapshotStore {
        SnapshotStore::with_capacity(100 * 1024 * 1024 * 1024)
    }

    /// A store with an explicit capacity.
    pub fn with_capacity(capacity_bytes: u64) -> SnapshotStore {
        SnapshotStore {
            pricing: Pricing::default_local(),
            snapshots: BTreeMap::new(),
            meter: Arc::new(CostMeter::new()),
            capacity_bytes,
            injector: None,
            version_counter: 0,
            versions: BTreeMap::new(),
        }
    }

    /// Route snapshot writes through `injector` (chaos testing).
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Remove the fault injector.
    pub fn clear_fault_injector(&mut self) {
        self.injector = None;
    }

    /// The store's meter (marginal dollars are always zero; bytes/queries
    /// still accumulate for observability).
    pub fn meter(&self) -> Arc<CostMeter> {
        Arc::clone(&self.meter)
    }

    /// Fixed monthly cost of the store.
    pub fn monthly_cost(&self) -> f64 {
        match self.pricing {
            Pricing::FixedMonthly { dollars_per_month } => dollars_per_month,
            Pricing::PerTbScanned { .. } => 0.0,
        }
    }

    /// Create a snapshot. Rejects duplicates and capacity overflows.
    pub fn create(
        &mut self,
        name: impl Into<String>,
        data: Table,
        source: impl Into<String>,
        recipe: Vec<String>,
        sample_fraction: Option<f64>,
    ) -> Result<&Snapshot> {
        let name = name.into();
        if self.snapshots.contains_key(&name) {
            return Err(StorageError::AlreadyExists { name });
        }
        let new_bytes = data.byte_size() as u64;
        if self.used_bytes() + new_bytes > self.capacity_bytes {
            return Err(StorageError::invalid(format!(
                "snapshot {name:?} would exceed store capacity"
            )));
        }
        let snap = Snapshot {
            name: name.clone(),
            data,
            recipe,
            source: source.into(),
            sample_fraction,
            version: 1,
        };
        // Crash-consistency: the write can fail right up to the commit
        // point, after which the snapshot becomes visible atomically. A
        // failed write must leave no trace in the store.
        if let Some(inj) = &self.injector {
            inj.on_snapshot_write()?;
        }
        self.snapshots.insert(name.clone(), snap);
        self.version_counter += 1;
        self.versions.insert(name.clone(), self.version_counter);
        Ok(&self.snapshots[&name])
    }

    /// Read a snapshot's data; free at the margin, metered for visibility.
    pub fn read(&self, name: &str) -> Result<&Table> {
        let snap = self
            .snapshots
            .get(name)
            .ok_or_else(|| StorageError::SnapshotNotFound {
                name: name.to_string(),
            })?;
        self.meter.record(
            &self.pricing,
            snap.data.byte_size() as u64,
            snap.data.num_rows() as u64,
            1,
        );
        Ok(&snap.data)
    }

    /// Snapshot metadata without a metered read.
    pub fn get(&self, name: &str) -> Result<&Snapshot> {
        self.snapshots
            .get(name)
            .ok_or_else(|| StorageError::SnapshotNotFound {
                name: name.to_string(),
            })
    }

    /// Replace a snapshot's data with fresh results (a "refresh"),
    /// bumping its version.
    pub fn refresh(&mut self, name: &str, data: Table) -> Result<u64> {
        if !self.snapshots.contains_key(name) {
            return Err(StorageError::SnapshotNotFound {
                name: name.to_string(),
            });
        }
        // As in `create`, a failed write commits nothing: the old data
        // and version stay visible.
        if let Some(inj) = &self.injector {
            inj.on_snapshot_write()?;
        }
        let snap = self.snapshots.get_mut(name).expect("checked above");
        snap.data = data;
        snap.version += 1;
        self.version_counter += 1;
        self.versions.insert(name.to_string(), self.version_counter);
        Ok(snap.version)
    }

    /// Delete a snapshot.
    pub fn delete(&mut self, name: &str) -> Result<()> {
        match self.snapshots.remove(name) {
            Some(_) => {
                self.versions.remove(name);
                Ok(())
            }
            None => Err(StorageError::SnapshotNotFound {
                name: name.to_string(),
            }),
        }
    }

    /// Store-wide version of a live snapshot: advances on every committed
    /// write anywhere in the store, so (unlike [`Snapshot::version`], the
    /// per-snapshot refresh count) it never repeats after a
    /// delete-and-recreate under the same name. Cache keys built from
    /// `(name, store version)` go stale exactly when the data could have
    /// changed.
    pub fn snapshot_version(&self, name: &str) -> Option<u64> {
        self.versions.get(name).copied()
    }

    /// Names of stored snapshots.
    pub fn names(&self) -> Vec<&str> {
        self.snapshots.keys().map(|s| s.as_str()).collect()
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.snapshots
            .values()
            .map(|s| s.data.byte_size() as u64)
            .sum()
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Column;

    fn table(n: usize) -> Table {
        Table::new(vec![("v", Column::from_ints((0..n as i64).collect()))]).unwrap()
    }

    fn store_with_snap() -> SnapshotStore {
        let mut s = SnapshotStore::new();
        s.create(
            "iot_sample",
            table(100),
            "MainDatabase.readings",
            vec![
                "Use the dataset readings".into(),
                "Sample 10% of the rows".into(),
            ],
            Some(0.1),
        )
        .unwrap();
        s
    }

    #[test]
    fn create_and_read() {
        let s = store_with_snap();
        let t = s.read("iot_sample").unwrap();
        assert_eq!(t.num_rows(), 100);
        assert_eq!(s.meter().queries(), 1);
        assert_eq!(s.meter().dollars(), 0.0); // fixed pricing
    }

    #[test]
    fn snapshot_carries_recipe() {
        let s = store_with_snap();
        let snap = s.get("iot_sample").unwrap();
        assert_eq!(snap.recipe.len(), 2);
        assert_eq!(snap.sample_fraction, Some(0.1));
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = store_with_snap();
        assert!(s.create("iot_sample", table(1), "x", vec![], None).is_err());
    }

    #[test]
    fn refresh_bumps_version() {
        let mut s = store_with_snap();
        let v = s.refresh("iot_sample", table(200)).unwrap();
        assert_eq!(v, 2);
        assert_eq!(s.get("iot_sample").unwrap().data.num_rows(), 200);
        assert!(s.refresh("missing", table(1)).is_err());
    }

    #[test]
    fn delete_and_missing() {
        let mut s = store_with_snap();
        s.delete("iot_sample").unwrap();
        assert!(s.read("iot_sample").is_err());
        assert!(s.delete("iot_sample").is_err());
    }

    #[test]
    fn store_versions_monotonic_across_recreation() {
        let mut s = store_with_snap();
        let v1 = s.snapshot_version("iot_sample").unwrap();
        s.refresh("iot_sample", table(50)).unwrap();
        let v2 = s.snapshot_version("iot_sample").unwrap();
        assert!(v2 > v1);
        s.delete("iot_sample").unwrap();
        assert_eq!(s.snapshot_version("iot_sample"), None);
        s.create("iot_sample", table(10), "src", vec![], None)
            .unwrap();
        let v3 = s.snapshot_version("iot_sample").unwrap();
        // Recreation never reuses an earlier version number.
        assert!(v3 > v2);
        // A failed (injected) write does not advance the visible version.
        use crate::fault::{FaultConfig, FaultInjector, FaultOp, InjectedFault};
        s.set_fault_injector(Arc::new(FaultInjector::new(
            FaultConfig::disabled().schedule(FaultOp::SnapshotWrite, 0, InjectedFault::Transient),
        )));
        assert!(s.refresh("iot_sample", table(5)).is_err());
        assert_eq!(s.snapshot_version("iot_sample"), Some(v3));
    }

    #[test]
    fn capacity_enforced() {
        let mut s = SnapshotStore::with_capacity(64);
        assert!(s.create("big", table(1000), "src", vec![], None).is_err());
        assert_eq!(s.names().len(), 0);
    }

    #[test]
    fn monthly_cost_is_fixed() {
        let s = store_with_snap();
        assert_eq!(s.monthly_cost(), 50.0);
    }

    #[test]
    fn failed_create_leaves_no_partial_snapshot() {
        use crate::fault::{FaultConfig, FaultInjector, FaultOp, InjectedFault};
        let mut s = SnapshotStore::new();
        // First write fails, second succeeds.
        s.set_fault_injector(Arc::new(FaultInjector::new(
            FaultConfig::disabled().schedule(FaultOp::SnapshotWrite, 0, InjectedFault::Transient),
        )));
        let err = s
            .create("snap", table(50), "src", vec!["step".into()], None)
            .unwrap_err();
        assert!(err.is_retryable());
        // Nothing is visible: no name, no bytes, no readable data.
        assert!(s.names().is_empty());
        assert_eq!(s.used_bytes(), 0);
        assert!(s.read("snap").is_err());
        // The retry (same name!) succeeds — the failed write reserved
        // nothing, so it does not collide with itself.
        let snap = s
            .create("snap", table(50), "src", vec!["step".into()], None)
            .unwrap();
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn failed_refresh_preserves_old_data_and_version() {
        use crate::fault::{FaultConfig, FaultInjector, FaultOp, InjectedFault};
        let mut s = store_with_snap();
        s.set_fault_injector(Arc::new(FaultInjector::new(
            FaultConfig::disabled().schedule(FaultOp::SnapshotWrite, 0, InjectedFault::Transient),
        )));
        assert!(s.refresh("iot_sample", table(999)).is_err());
        let snap = s.get("iot_sample").unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.data.num_rows(), 100);
        // Retry succeeds and bumps the version exactly once.
        assert_eq!(s.refresh("iot_sample", table(999)).unwrap(), 2);
        assert_eq!(s.get("iot_sample").unwrap().data.num_rows(), 999);
        // A refresh of a missing snapshot still reports not-found, not a
        // fault, even with the injector installed.
        assert!(matches!(
            s.refresh("missing", table(1)),
            Err(StorageError::SnapshotNotFound { .. })
        ));
    }
}
