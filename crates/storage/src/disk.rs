//! On-disk block tables: the out-of-core sibling of [`crate::BlockTable`].
//!
//! A [`DiskBlockTable`] stores its blocks in the engine's columnar block
//! file format ([`dc_engine::blockio`]) and keeps only the footer —
//! schema, shared dictionaries, per-block zone maps and null counts —
//! resident. Scans prune blocks with footer metadata *before* paging any
//! payload in, so a pruned block costs zero logical bytes **and** zero
//! faulted bytes. Receipts therefore split cost into two numbers:
//!
//! * `bytes_scanned` — the logical (in-memory) bytes the scan charged,
//!   identical accounting to the in-RAM [`crate::BlockTable`], so pricing
//!   is backend-independent;
//! * `bytes_read` — the payload bytes actually faulted off storage,
//!   which projection and pruning shrink further (stored payloads are
//!   never larger than their logical footprint, so
//!   `bytes_read <= bytes_scanned` always holds).
//!
//! Reads go through a buffered positional-read path by default; the
//! `mmap` feature maps the file instead (same format, same receipts).

use std::borrow::Cow;
use std::path::{Path, PathBuf};

use dc_engine::blockio::{BlockFile, ZoneBoundsIo};
use dc_engine::expr::prune::{self, ColumnStats, Tri};
use dc_engine::ops::{filter_serial, sample_fraction};
use dc_engine::{Expr, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::block::ScanOptions;
use crate::error::{Result, StorageError};
use crate::fault::FaultInjector;
use crate::pricing::ScanReceipt;

/// A table persisted in the engine's on-disk block format, scanned
/// through the same [`ScanOptions`] interface as the in-RAM block table.
#[derive(Debug)]
pub struct DiskBlockTable {
    file: BlockFile,
    path: PathBuf,
    schema: Schema,
    schema_names: Vec<String>,
    /// Per column: shared-dictionary heap bytes (0 for non-dict columns).
    dict_bytes: Vec<u64>,
    /// Remove the backing file on drop (set by [`DiskBlockTable::create`]).
    owned: bool,
}

impl Drop for DiskBlockTable {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

fn map_engine(e: dc_engine::EngineError) -> StorageError {
    match &e {
        dc_engine::EngineError::Spill { message, retryable } => {
            if *retryable {
                StorageError::Transient {
                    operation: "disk block io".to_string(),
                    message: message.clone(),
                }
            } else {
                StorageError::Unavailable {
                    operation: "disk block io".to_string(),
                    message: message.clone(),
                }
            }
        }
        _ => StorageError::invalid(e.to_string()),
    }
}

impl DiskBlockTable {
    /// Write `table` to `path` in blocks of `block_rows` rows and open it.
    /// String columns are dictionary-encoded first so every block shares
    /// one table-wide sorted dictionary (persisted once in the footer) and
    /// zone maps cover string columns as code ranges. The file is removed
    /// when the returned table is dropped.
    pub fn create(path: impl Into<PathBuf>, table: &Table, block_rows: usize) -> Result<DiskBlockTable> {
        if block_rows == 0 {
            return Err(StorageError::invalid("block_rows must be positive"));
        }
        let path = path.into();
        let encoded = table.encode_strings();
        dc_engine::blockio::write_table(&path, &encoded, block_rows).map_err(map_engine)?;
        let mut t = DiskBlockTable::open(&path)?;
        t.owned = true;
        Ok(t)
    }

    /// Open an existing block file. Only the footer is read; the file is
    /// NOT removed on drop.
    pub fn open(path: impl AsRef<Path>) -> Result<DiskBlockTable> {
        let path = path.as_ref().to_path_buf();
        #[cfg(feature = "mmap")]
        let file = BlockFile::open_mmap(&path).map_err(map_engine)?;
        #[cfg(not(feature = "mmap"))]
        let file = BlockFile::open(&path).map_err(map_engine)?;
        let fields = file
            .meta
            .schema
            .iter()
            .map(|(name, dtype)| dc_engine::Field::new(name.clone(), *dtype))
            .collect();
        let schema = Schema::new(fields).map_err(map_engine)?;
        let schema_names: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
        let dict_bytes = (0..schema_names.len())
            .map(|ci| file.meta.column_dict_bytes(ci))
            .collect();
        Ok(DiskBlockTable {
            file,
            path,
            schema,
            schema_names,
            dict_bytes,
            owned: false,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total rows stored.
    pub fn num_rows(&self) -> usize {
        self.file.num_rows()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.file.num_blocks()
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.schema_names
    }

    /// The stored table's typed schema (resident from the footer).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total *logical* bytes stored: every block's in-memory payload plus
    /// each shared dictionary once — the same accounting the in-RAM block
    /// table uses, so a full scan of either backend charges equal bytes.
    pub fn total_bytes(&self) -> u64 {
        let payload: u64 = self
            .file
            .meta
            .blocks
            .iter()
            .flat_map(|b| b.cols.iter().map(|c| c.data_bytes))
            .sum();
        payload + self.dict_bytes.iter().sum::<u64>()
    }

    /// Zone-map statistics for block `bi`, column `ci`, straight from the
    /// footer — no payload access. Dictionary code bounds translate
    /// through the resident sorted dictionary.
    pub fn column_stats(&self, bi: usize, ci: usize) -> ColumnStats {
        let block = &self.file.meta.blocks[bi];
        let col = &block.cols[ci];
        let (min, max) = match &col.zone.bounds {
            ZoneBoundsIo::None => (None, None),
            ZoneBoundsIo::Values { min, max } => (Some(min.clone()), Some(max.clone())),
            ZoneBoundsIo::DictCodes { min, max } => {
                let dict = col
                    .dict_index()
                    .and_then(|di| self.file.meta.dicts.get(di));
                match dict {
                    Some(d) => (
                        Some(Value::Str(d[*min as usize].clone())),
                        Some(Value::Str(d[*max as usize].clone())),
                    ),
                    None => (None, None),
                }
            }
        };
        ColumnStats {
            dtype: self.schema.fields()[ci].dtype,
            min,
            max,
            null_count: col.zone.null_count,
            row_count: block.rows as u64,
        }
    }

    /// Scan under `opts`, returning the data plus a receipt. Mirrors
    /// [`crate::BlockTable::scan`] semantics exactly (block/row sampling,
    /// predicate pushdown with zone pruning, projection), with
    /// `bytes_read` additionally reporting what was faulted off disk.
    pub fn scan(&self, opts: &ScanOptions) -> Result<(Table, ScanReceipt)> {
        self.scan_with(opts, None)
    }

    /// [`DiskBlockTable::scan`] with an optional fault injector: the
    /// injector sees the scan start plus every block actually paged in
    /// (pruned blocks never reach it).
    pub fn scan_with(
        &self,
        opts: &ScanOptions,
        injector: Option<&FaultInjector>,
    ) -> Result<(Table, ScanReceipt)> {
        let cancel = opts.cancel.as_ref();
        if let Some(inj) = injector {
            inj.on_scan(opts.block_sample.is_some(), cancel)?;
        }
        let nblocks = self.file.num_blocks();
        let chosen: Vec<usize> = match opts.block_sample {
            Some(f) => {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(StorageError::invalid(format!(
                        "block sample fraction must be in (0, 1], got {f}"
                    )));
                }
                let mut rng = StdRng::seed_from_u64(opts.seed);
                let picked: Vec<usize> = (0..nblocks).filter(|_| rng.random::<f64>() < f).collect();
                if picked.is_empty() && nblocks > 0 {
                    vec![opts.seed as usize % nblocks]
                } else {
                    picked
                }
            }
            None => (0..nblocks).collect(),
        };

        let schema = &self.schema;
        let predicate: Option<&Expr> = opts.predicate.as_ref().filter(|p| {
            let mut cols = Vec::new();
            p.referenced_columns(&mut cols);
            cols.iter().all(|c| schema.index_of(c).is_some())
        });

        // Columns the scan pages in: the projection (all when absent)
        // plus every column the pushed predicate consults.
        let mut read_cols: Vec<usize> = match &opts.columns {
            Some(cols) => cols.iter().filter_map(|c| schema.index_of(c)).collect(),
            None => (0..schema.fields().len()).collect(),
        };
        if let Some(p) = predicate {
            let mut pred_cols = Vec::new();
            p.referenced_columns(&mut pred_cols);
            for c in &pred_cols {
                if let Some(i) = schema.index_of(c) {
                    if !read_cols.contains(&i) {
                        read_cols.push(i);
                    }
                }
            }
        }
        let logical_bytes = |bi: usize| -> u64 {
            let cols = &self.file.meta.blocks[bi].cols;
            read_cols.iter().map(|&ci| cols[ci].data_bytes).sum()
        };
        let projected: Option<Vec<&str>> = opts
            .columns
            .as_ref()
            .map(|cols| cols.iter().map(|s| s.as_str()).collect());

        let mut parts: Vec<Cow<'_, Table>> = Vec::with_capacity(chosen.len());
        let mut bytes = 0u64;
        let mut bytes_read = 0u64;
        let mut rows_scanned = 0u64;
        let mut blocks_scanned = 0u64;
        let mut blocks_pruned = 0u64;
        let mut bytes_pruned = 0u64;
        for &bi in &chosen {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(StorageError::Transient {
                        operation: "scan".to_string(),
                        message: "cancelled: node budget exhausted".to_string(),
                    });
                }
            }
            let block_rows = self.file.meta.blocks[bi].rows as usize;
            // Footer-only pruning decision: nothing is paged in yet.
            let verdict = match predicate {
                Some(_) if block_rows == 0 => Tri::AllFalse,
                Some(p) => {
                    let lookup =
                        |name: &str| schema.index_of(name).map(|ci| self.column_stats(bi, ci));
                    prune::prune_predicate(p, &lookup)
                }
                None => Tri::Unknown,
            };
            if predicate.is_some() && verdict == Tri::AllFalse {
                blocks_pruned += 1;
                bytes_pruned += logical_bytes(bi);
                continue;
            }
            if let Some(inj) = injector {
                inj.on_block_read(cancel)?;
            }
            let (table, faulted) = self
                .file
                .read_block_projected(bi, &read_cols)
                .map_err(map_engine)?;
            bytes += logical_bytes(bi);
            bytes_read += faulted;
            rows_scanned += block_rows as u64;
            blocks_scanned += 1;
            let mut part = Cow::Owned(table);
            if let Some(f) = opts.row_sample {
                part = Cow::Owned(
                    sample_fraction(&part, f, opts.seed.wrapping_add(bi as u64))
                        .map_err(map_engine)?,
                );
            }
            if let Some(p) = predicate {
                if verdict != Tri::AllTrue {
                    if let Ok(kept) = filter_serial(&part, p) {
                        part = Cow::Owned(kept);
                    }
                }
            }
            if let Some(cols) = &projected {
                part = Cow::Owned(part.select(cols).map_err(map_engine)?);
            }
            parts.push(part);
        }
        // Shared dictionaries live in the footer, resident since open:
        // they charge logical bytes like the in-RAM backend but fault
        // nothing per scan.
        let read_dict_bytes: u64 = read_cols.iter().map(|&ci| self.dict_bytes[ci]).sum();
        if blocks_scanned > 0 {
            bytes += read_dict_bytes;
        } else if blocks_pruned > 0 {
            bytes_pruned += read_dict_bytes;
        }
        let out = if parts.is_empty() {
            let empty = Table::empty_with_schema(schema);
            match &projected {
                Some(cols) => empty.select(cols).map_err(map_engine)?,
                None => empty,
            }
        } else {
            let refs: Vec<&Table> = parts.iter().map(|p| p.as_ref()).collect();
            dc_engine::ops::concat(&refs, false).map_err(map_engine)?
        };
        debug_assert!(bytes_read <= bytes, "faulted more than charged");
        Ok((
            out,
            ScanReceipt {
                bytes_scanned: bytes,
                bytes_read,
                rows_scanned,
                blocks_scanned,
                total_blocks: nblocks as u64,
                blocks_pruned,
                bytes_pruned,
                cost_dollars: 0.0, // filled in by the database, which knows pricing
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{BinaryOp, Column};

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let p = std::env::temp_dir().join(format!(
                "dc-disk-test-{}-{tag}",
                std::process::id()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fixture(n: usize) -> Table {
        Table::new(vec![
            ("x", Column::from_ints((0..n as i64).collect())),
            (
                "cat",
                Column::from_strs((0..n).map(|i| format!("c{}", i % 7)).collect()),
            ),
            (
                "y",
                Column::from_opt_floats(
                    (0..n)
                        .map(|i| (i % 13 != 5).then_some(i as f64 * 0.5))
                        .collect(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn full_scan_roundtrips_and_reads_at_most_scanned() {
        let dir = TempDir::new("full");
        let t = fixture(1000);
        let dt = DiskBlockTable::create(dir.file("t.dcb"), &t, 128).unwrap();
        assert_eq!(dt.num_rows(), 1000);
        assert_eq!(dt.num_blocks(), 8);
        let (out, r) = dt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out.num_rows(), 1000);
        assert_eq!(out.column("x").unwrap(), t.column("x").unwrap());
        // Str column round-trips dict-encoded; equality is logical.
        assert_eq!(out.column("cat").unwrap(), t.column("cat").unwrap());
        assert!(r.bytes_read > 0);
        assert!(r.bytes_read <= r.bytes_scanned);
        assert_eq!(r.blocks_scanned, 8);
    }

    #[test]
    fn projection_faults_fewer_bytes() {
        let dir = TempDir::new("proj");
        let dt = DiskBlockTable::create(dir.file("t.dcb"), &fixture(1000), 128).unwrap();
        let (_, full) = dt.scan(&ScanOptions::full()).unwrap();
        let opts = ScanOptions {
            columns: Some(vec!["x".into()]),
            ..ScanOptions::default()
        };
        let (out, r) = dt.scan(&opts).unwrap();
        assert_eq!(out.num_columns(), 1);
        assert!(r.bytes_read < full.bytes_read);
        assert!(r.bytes_scanned < full.bytes_scanned);
        assert!(r.bytes_read <= r.bytes_scanned);
    }

    #[test]
    fn zone_pruning_skips_blocks_before_reading() {
        let dir = TempDir::new("prune");
        let dt = DiskBlockTable::create(dir.file("t.dcb"), &fixture(1000), 100).unwrap();
        // x is monotonically increasing: x >= 900 prunes 9 of 10 blocks.
        let opts = ScanOptions {
            predicate: Some(Expr::binary(
                Expr::col("x"),
                BinaryOp::Ge,
                Expr::lit(900i64),
            )),
            ..ScanOptions::default()
        };
        let (out, r) = dt.scan(&opts).unwrap();
        assert_eq!(out.num_rows(), 100);
        assert_eq!(r.blocks_pruned, 9);
        assert_eq!(r.blocks_scanned, 1);
        assert!(r.bytes_pruned > 0);
        assert!(r.bytes_read <= r.bytes_scanned);
    }

    #[test]
    fn string_predicate_prunes_via_dict_zones() {
        let dir = TempDir::new("dict");
        // Sorted cat values: blocks of 100 rows each hold one value run.
        let t = Table::new(vec![(
            "cat",
            Column::from_strs(
                (0..1000)
                    .map(|i| format!("v{:02}", i / 100))
                    .collect(),
            ),
        )])
        .unwrap();
        let dt = DiskBlockTable::create(dir.file("t.dcb"), &t, 100).unwrap();
        let opts = ScanOptions {
            predicate: Some(Expr::binary(
                Expr::col("cat"),
                BinaryOp::Eq,
                Expr::lit("v03"),
            )),
            ..ScanOptions::default()
        };
        let (out, r) = dt.scan(&opts).unwrap();
        assert_eq!(out.num_rows(), 100);
        assert_eq!(r.blocks_pruned, 9);
    }

    #[test]
    fn block_sample_reads_fraction() {
        let dir = TempDir::new("sample");
        let dt = DiskBlockTable::create(dir.file("t.dcb"), &fixture(2000), 100).unwrap();
        let (out, r) = dt.scan(&ScanOptions::block_sampled(0.2, 7)).unwrap();
        assert!(r.blocks_scanned < 20);
        assert!(out.num_rows() < 2000);
        assert!(r.bytes_read <= r.bytes_scanned);
    }

    #[test]
    fn logical_bytes_match_in_ram_backend() {
        let t = fixture(1000);
        let dir = TempDir::new("parity");
        let dt = DiskBlockTable::create(dir.file("t.dcb"), &t, 128).unwrap();
        let bt = crate::BlockTable::new(&t, 128).unwrap();
        let (_, rd) = dt.scan(&ScanOptions::full()).unwrap();
        let (_, rm) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(rd.bytes_scanned, rm.bytes_scanned);
        assert_eq!(dt.total_bytes(), bt.total_bytes());
    }

    #[test]
    fn create_removes_file_on_drop() {
        let dir = TempDir::new("drop");
        let path = dir.file("t.dcb");
        {
            let _dt = DiskBlockTable::create(&path, &fixture(10), 4).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
