//! Database catalog: named databases holding block tables, each with a
//! pricing model and a cost meter.

use std::collections::BTreeMap;
use std::sync::Arc;

use dc_engine::Table;

use crate::block::{BlockTable, ScanOptions};
use crate::disk::DiskBlockTable;
use crate::error::{Result, StorageError};
use crate::fault::FaultInjector;
use crate::pricing::{CostMeter, Pricing, ScanReceipt};

/// Default rows per storage block (small enough that modest demo tables
/// still split into many blocks).
pub const DEFAULT_BLOCK_ROWS: usize = 4096;

/// A simulated database instance: tables, pricing, and a meter.
#[derive(Debug)]
pub struct CloudDatabase {
    name: String,
    pricing: Pricing,
    tables: BTreeMap<String, BlockTable>,
    /// Tables persisted in the on-disk block format (footer resident,
    /// payload paged in per scan). Disjoint from `tables` by name.
    disk_tables: BTreeMap<String, DiskBlockTable>,
    meter: Arc<CostMeter>,
    injector: Option<Arc<FaultInjector>>,
    /// Monotonic counter driving per-table versions. Never reused, so a
    /// dropped-and-recreated table gets a strictly newer version than any
    /// earlier incarnation.
    version_counter: u64,
    /// Current version of each live table (absent once dropped).
    versions: BTreeMap<String, u64>,
}

impl CloudDatabase {
    /// Create an empty database with the given pricing.
    pub fn new(name: impl Into<String>, pricing: Pricing) -> CloudDatabase {
        CloudDatabase {
            name: name.into(),
            pricing,
            tables: BTreeMap::new(),
            disk_tables: BTreeMap::new(),
            meter: Arc::new(CostMeter::new()),
            injector: None,
            version_counter: 0,
            versions: BTreeMap::new(),
        }
    }

    /// Route every scan through `injector` (chaos testing). Pass the same
    /// handle to several databases/stores to share one fault schedule.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Remove the fault injector, restoring fault-free scans.
    pub fn clear_fault_injector(&mut self) {
        self.injector = None;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pricing model.
    pub fn pricing(&self) -> Pricing {
        self.pricing
    }

    /// Shared handle to the cost meter.
    pub fn meter(&self) -> Arc<CostMeter> {
        Arc::clone(&self.meter)
    }

    /// Register a table, splitting it into default-size blocks.
    pub fn create_table(&mut self, name: impl Into<String>, table: &Table) -> Result<()> {
        self.create_table_with_blocks(name, table, DEFAULT_BLOCK_ROWS)
    }

    /// Register a table with an explicit block size.
    pub fn create_table_with_blocks(
        &mut self,
        name: impl Into<String>,
        table: &Table,
        block_rows: usize,
    ) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) || self.disk_tables.contains_key(&name) {
            return Err(StorageError::AlreadyExists { name });
        }
        self.tables
            .insert(name.clone(), BlockTable::new(table, block_rows)?);
        self.version_counter += 1;
        self.versions.insert(name, self.version_counter);
        Ok(())
    }

    /// Register a table backed by the on-disk block format: its payload
    /// lives in a block file under `dir` and is paged in per scan, with
    /// only the footer (schema, dictionaries, zone maps) resident. Scans
    /// dispatch transparently by name, so callers cannot tell the
    /// backends apart except through `bytes_read` on the receipt.
    pub fn create_table_on_disk(
        &mut self,
        name: impl Into<String>,
        table: &Table,
        block_rows: usize,
        dir: &std::path::Path,
    ) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) || self.disk_tables.contains_key(&name) {
            return Err(StorageError::AlreadyExists { name });
        }
        std::fs::create_dir_all(dir).map_err(|e| {
            StorageError::invalid(format!("cannot create disk-table dir {dir:?}: {e}"))
        })?;
        let path = dir.join(format!("{}.{}.dcb", self.name, name));
        let dt = DiskBlockTable::create(path, table, block_rows)?;
        self.disk_tables.insert(name.clone(), dt);
        self.version_counter += 1;
        self.versions.insert(name, self.version_counter);
        Ok(())
    }

    /// Drop a table (either backend; disk-backed files are removed).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let dropped =
            self.tables.remove(name).is_some() || self.disk_tables.remove(name).is_some();
        if dropped {
            // Bump the counter so any future recreation under the same
            // name is distinguishable from the dropped incarnation.
            self.version_counter += 1;
            self.versions.remove(name);
            Ok(())
        } else {
            Err(StorageError::TableNotFound {
                database: self.name.clone(),
                name: name.to_string(),
            })
        }
    }

    /// Current version of a live table, if it exists. Versions are
    /// monotonic across the whole database: every `create_table` /
    /// `drop_table` advances an internal counter, so a version uniquely
    /// identifies one incarnation of a table's contents. Cache keys built
    /// from `(name, version)` therefore go stale exactly when the data
    /// could have changed.
    pub fn table_version(&self, name: &str) -> Option<u64> {
        self.versions.get(name).copied()
    }

    /// Table names in sorted order (both backends).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .tables
            .keys()
            .chain(self.disk_tables.keys())
            .map(|s| s.as_str())
            .collect();
        names.sort_unstable();
        names
    }

    /// Access a stored in-memory table's block structure.
    pub fn table(&self, name: &str) -> Result<&BlockTable> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::TableNotFound {
                database: self.name.clone(),
                name: name.to_string(),
            })
    }

    /// Access a disk-backed table's structure, if `name` is disk-backed.
    pub fn disk_table(&self, name: &str) -> Result<&DiskBlockTable> {
        self.disk_tables
            .get(name)
            .ok_or_else(|| StorageError::TableNotFound {
                database: self.name.clone(),
                name: name.to_string(),
            })
    }

    /// Scan a table (either backend), recording the cost on the database
    /// meter and pricing the receipt.
    pub fn scan(&self, table: &str, opts: &ScanOptions) -> Result<(Table, ScanReceipt)> {
        let (data, mut receipt) = if let Some(bt) = self.tables.get(table) {
            bt.scan_with(opts, self.injector.as_deref())?
        } else if let Some(dt) = self.disk_tables.get(table) {
            dt.scan_with(opts, self.injector.as_deref())?
        } else {
            return Err(StorageError::TableNotFound {
                database: self.name.clone(),
                name: table.to_string(),
            });
        };
        receipt.cost_dollars = self.pricing.scan_cost(receipt.bytes_scanned);
        self.meter.record(
            &self.pricing,
            receipt.bytes_scanned,
            receipt.rows_scanned,
            receipt.blocks_scanned,
        );
        Ok((data, receipt))
    }

    /// Dataset listing matching the Figure 1 UI panel: name, rows,
    /// columns, column names.
    pub fn dataset_listing(&self) -> Vec<DatasetInfo> {
        let mut out: Vec<DatasetInfo> = self
            .tables
            .iter()
            .map(|(name, bt)| DatasetInfo {
                database: self.name.clone(),
                dataset_name: name.clone(),
                num_rows: bt.num_rows(),
                num_columns: bt.column_names().len(),
                columns: bt.column_names().to_vec(),
            })
            .chain(self.disk_tables.iter().map(|(name, dt)| DatasetInfo {
                database: self.name.clone(),
                dataset_name: name.clone(),
                num_rows: dt.num_rows(),
                num_columns: dt.column_names().len(),
                columns: dt.column_names().to_vec(),
            }))
            .collect();
        out.sort_by(|a, b| a.dataset_name.cmp(&b.dataset_name));
        out
    }
}

/// One row of the dataset listing panel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    pub database: String,
    pub dataset_name: String,
    pub num_rows: usize,
    pub num_columns: usize,
    pub columns: Vec<String>,
}

/// A catalog of databases (the multi-source connectivity of §1: users can
/// connect to databases, CSV files, or a combination).
#[derive(Debug, Default)]
pub struct Catalog {
    databases: BTreeMap<String, CloudDatabase>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Add a database, replacing nothing.
    pub fn add_database(&mut self, db: CloudDatabase) -> Result<()> {
        if self.databases.contains_key(db.name()) {
            return Err(StorageError::AlreadyExists {
                name: db.name().to_string(),
            });
        }
        self.databases.insert(db.name().to_string(), db);
        Ok(())
    }

    /// Look up a database.
    pub fn database(&self, name: &str) -> Result<&CloudDatabase> {
        self.databases
            .get(name)
            .ok_or_else(|| StorageError::DatabaseNotFound {
                name: name.to_string(),
            })
    }

    /// Mutable lookup.
    pub fn database_mut(&mut self, name: &str) -> Result<&mut CloudDatabase> {
        self.databases
            .get_mut(name)
            .ok_or_else(|| StorageError::DatabaseNotFound {
                name: name.to_string(),
            })
    }

    /// Database names in sorted order.
    pub fn database_names(&self) -> Vec<&str> {
        self.databases.keys().map(|s| s.as_str()).collect()
    }

    /// Install one shared fault injector on every database in the
    /// catalog (newly added databases are NOT retroactively covered).
    pub fn set_fault_injector(&mut self, injector: &Arc<FaultInjector>) {
        for db in self.databases.values_mut() {
            db.set_fault_injector(Arc::clone(injector));
        }
    }

    /// Remove fault injectors from every database.
    pub fn clear_fault_injector(&mut self) {
        for db in self.databases.values_mut() {
            db.clear_fault_injector();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Column;

    fn table(n: usize) -> Table {
        Table::new(vec![("v", Column::from_ints((0..n as i64).collect()))]).unwrap()
    }

    fn db() -> CloudDatabase {
        let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
        db.create_table_with_blocks("readings", &table(10_000), 512)
            .unwrap();
        db
    }

    #[test]
    fn create_and_list() {
        let db = db();
        assert_eq!(db.table_names(), vec!["readings"]);
        let listing = db.dataset_listing();
        assert_eq!(listing[0].num_rows, 10_000);
        assert_eq!(listing[0].columns, vec!["v"]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        assert!(matches!(
            db.create_table("readings", &table(1)),
            Err(StorageError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn scan_meters_cost() {
        let db = db();
        let (out, receipt) = db.scan("readings", &ScanOptions::full()).unwrap();
        assert_eq!(out.num_rows(), 10_000);
        assert!(receipt.cost_dollars > 0.0);
        assert_eq!(db.meter().queries(), 1);
        assert_eq!(db.meter().bytes(), receipt.bytes_scanned);
    }

    #[test]
    fn block_sample_costs_less_on_meter() {
        let db = db();
        db.scan("readings", &ScanOptions::full()).unwrap();
        let full_cost = db.meter().dollars();
        db.meter().reset();
        db.scan("readings", &ScanOptions::block_sampled(0.1, 5))
            .unwrap();
        let sample_cost = db.meter().dollars();
        assert!(sample_cost < full_cost / 4.0);
    }

    #[test]
    fn missing_table_errors() {
        let db = db();
        assert!(matches!(
            db.scan("nope", &ScanOptions::full()),
            Err(StorageError::TableNotFound { .. })
        ));
    }

    #[test]
    fn drop_table_works() {
        let mut db = db();
        db.drop_table("readings").unwrap();
        assert!(db.table("readings").is_err());
        assert!(db.drop_table("readings").is_err());
    }

    #[test]
    fn table_versions_are_monotonic_across_recreation() {
        let mut db = db();
        let v1 = db.table_version("readings").unwrap();
        assert_eq!(db.table_version("nope"), None);
        db.create_table("other", &table(10)).unwrap();
        let v_other = db.table_version("other").unwrap();
        assert!(v_other > v1);
        db.drop_table("readings").unwrap();
        assert_eq!(db.table_version("readings"), None);
        db.create_table("readings", &table(5)).unwrap();
        let v2 = db.table_version("readings").unwrap();
        // Recreated table is a new incarnation, never a version reuse.
        assert!(v2 > v_other);
        assert!(v2 > v1);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut cat = Catalog::new();
        cat.add_database(db()).unwrap();
        assert!(cat.database("MainDatabase").is_ok());
        assert!(cat.database("Other").is_err());
        assert!(cat.add_database(db()).is_err());
        assert_eq!(cat.database_names(), vec!["MainDatabase"]);
    }

    #[test]
    fn fixed_pricing_meters_zero_dollars() {
        let mut db = CloudDatabase::new("local", Pricing::default_local());
        db.create_table("t", &table(1000)).unwrap();
        db.scan("t", &ScanOptions::full()).unwrap();
        assert_eq!(db.meter().dollars(), 0.0);
        assert!(db.meter().bytes() > 0);
    }
}
