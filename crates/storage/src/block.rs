//! Block-structured table storage.
//!
//! Cloud warehouses store tables in immutable blocks (micro-partitions);
//! scans charge for every block touched. Splitting stored tables into
//! fixed-size row blocks here gives the paper's block-level sampling (§3)
//! a real mechanism: sampling 10% of *blocks* scans ~10% of the bytes,
//! whereas row-level Bernoulli sampling still scans everything.

use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::Arc;

use dc_engine::ops::sample_fraction;
use dc_engine::Table;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::error::{Result, StorageError};
use crate::fault::{CancelToken, FaultInjector};
use crate::pricing::ScanReceipt;

/// A stored table split into fixed-size row blocks.
///
/// Blocks are immutable and held behind [`Arc`], so cloning a
/// `BlockTable` (snapshots, catalog copies) shares the block data instead
/// of duplicating it.
#[derive(Debug, Clone)]
pub struct BlockTable {
    blocks: Vec<Arc<Table>>,
    block_bytes: Vec<u64>,
    rows: usize,
    schema_names: Vec<String>,
}

/// How to scan a [`BlockTable`].
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Project to these columns at the storage layer (columnar engines
    /// charge only for columns read).
    pub columns: Option<Vec<String>>,
    /// Block-level sampling: read only ~this fraction of blocks.
    pub block_sample: Option<f64>,
    /// Row-level Bernoulli sampling applied to every scanned block. This
    /// does NOT reduce scan cost — the contrast with `block_sample` is the
    /// point of the §3 experiment.
    pub row_sample: Option<f64>,
    /// Seed for the sampling choices.
    pub seed: u64,
    /// Cooperative-cancellation handle: the scan checks it at block
    /// boundaries (and inside injected stalls) and aborts with a
    /// retryable [`StorageError::Transient`] once it fires.
    pub cancel: Option<CancelToken>,
}

impl ScanOptions {
    /// A full-table scan.
    pub fn full() -> ScanOptions {
        ScanOptions::default()
    }

    /// Block-level sample at `fraction`.
    pub fn block_sampled(fraction: f64, seed: u64) -> ScanOptions {
        ScanOptions {
            block_sample: Some(fraction),
            seed,
            ..ScanOptions::default()
        }
    }

    /// Row-level Bernoulli sample at `fraction`.
    pub fn row_sampled(fraction: f64, seed: u64) -> ScanOptions {
        ScanOptions {
            row_sample: Some(fraction),
            seed,
            ..ScanOptions::default()
        }
    }
}

/// Bytes charged for one table part, counting each string dictionary
/// once across parts. Blocks sliced from one stored table share their
/// dictionaries behind [`Arc`], so a scan that touches many blocks reads
/// each dictionary's payload from storage a single time; only the first
/// part holding a given dictionary pays for it.
fn charged_bytes(part: &Table, seen_dicts: &mut HashSet<usize>) -> u64 {
    let mut bytes = part.byte_size() as u64;
    for col in part.columns() {
        if let Some((_, dict, _)) = col.as_dict() {
            if !seen_dicts.insert(Arc::as_ptr(dict) as usize) {
                bytes -= col.dict_heap_bytes() as u64;
            }
        }
    }
    bytes
}

impl BlockTable {
    /// Split `table` into blocks of `block_rows` rows. String columns are
    /// dictionary-encoded first, so every block carries `u32` codes and
    /// shares one table-wide dictionary allocation.
    pub fn new(table: &Table, block_rows: usize) -> Result<BlockTable> {
        if block_rows == 0 {
            return Err(StorageError::invalid("block_rows must be positive"));
        }
        let table = table.encode_strings();
        let rows = table.num_rows();
        let mut blocks = Vec::with_capacity(rows.div_ceil(block_rows).max(1));
        if rows == 0 {
            blocks.push(Arc::new(table.clone()));
        } else {
            let mut start = 0;
            while start < rows {
                blocks.push(Arc::new(table.slice(start, block_rows)));
                start += block_rows;
            }
        }
        let mut seen_dicts = HashSet::new();
        let block_bytes = blocks
            .iter()
            .map(|b| charged_bytes(b, &mut seen_dicts))
            .collect();
        Ok(BlockTable {
            block_bytes,
            rows,
            schema_names: table
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            blocks,
        })
    }

    /// Total rows stored.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.block_bytes.iter().sum()
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.schema_names
    }

    /// The stored table's typed schema. Constructors always push at
    /// least one block (an empty table is stored as one empty block), so
    /// the first block's schema is the table's schema.
    pub fn schema(&self) -> &dc_engine::Schema {
        self.blocks[0].schema()
    }

    /// Shared handle to block `i`'s data — a pointer copy, not a clone.
    pub fn block(&self, i: usize) -> Option<Arc<Table>> {
        self.blocks.get(i).map(Arc::clone)
    }

    /// Name and dictionary cardinality of each dictionary-encoded column.
    /// Blocks share one table-wide dictionary per string column, so the
    /// first block's dictionaries describe the whole table.
    pub fn dict_sizes(&self) -> Vec<(String, usize)> {
        self.schema_names
            .iter()
            .zip(self.blocks[0].columns())
            .filter_map(|(name, col)| col.as_dict().map(|(_, dict, _)| (name.clone(), dict.len())))
            .collect()
    }

    /// Scan under `opts`, returning the data plus a receipt of what was
    /// actually read.
    pub fn scan(&self, opts: &ScanOptions) -> Result<(Table, ScanReceipt)> {
        self.scan_with(opts, None)
    }

    /// [`BlockTable::scan`] with an optional fault injector in the path:
    /// the injector sees the scan start plus every block read, which is
    /// where transient failures and slow blocks strike.
    pub fn scan_with(
        &self,
        opts: &ScanOptions,
        injector: Option<&FaultInjector>,
    ) -> Result<(Table, ScanReceipt)> {
        let cancel = opts.cancel.as_ref();
        if let Some(inj) = injector {
            inj.on_scan(opts.block_sample.is_some(), cancel)?;
        }
        // Choose blocks.
        let chosen: Vec<usize> = match opts.block_sample {
            Some(f) => {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(StorageError::invalid(format!(
                        "block sample fraction must be in (0, 1], got {f}"
                    )));
                }
                let mut rng = StdRng::seed_from_u64(opts.seed);
                let picked: Vec<usize> = (0..self.blocks.len())
                    .filter(|_| rng.random::<f64>() < f)
                    .collect();
                if picked.is_empty() && !self.blocks.is_empty() {
                    // Always read at least one block so samples are never
                    // empty on tiny tables.
                    vec![opts.seed as usize % self.blocks.len()]
                } else {
                    picked
                }
            }
            None => (0..self.blocks.len()).collect(),
        };

        // Column projection factor for cost accounting.
        let projected: Option<Vec<&str>> = opts
            .columns
            .as_ref()
            .map(|cols| cols.iter().map(|s| s.as_str()).collect());

        // Unprojected, unsampled blocks are borrowed as-is — a full scan
        // never deep-clones block data, it only concatenates borrowed
        // parts into the output table.
        let mut parts: Vec<Cow<'_, Table>> = Vec::with_capacity(chosen.len());
        let mut bytes = 0u64;
        let mut rows_scanned = 0u64;
        let mut seen_dicts = HashSet::new();
        for &bi in &chosen {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(StorageError::Transient {
                        operation: "scan".to_string(),
                        message: "cancelled: node budget exhausted".to_string(),
                    });
                }
            }
            if let Some(inj) = injector {
                inj.on_block_read(cancel)?;
            }
            let block = &self.blocks[bi];
            let part = match &projected {
                Some(cols) => Cow::Owned(block.select(cols)?),
                None => Cow::Borrowed(block.as_ref()),
            };
            bytes += charged_bytes(&part, &mut seen_dicts);
            rows_scanned += block.num_rows() as u64;
            let part = match opts.row_sample {
                Some(f) => Cow::Owned(sample_fraction(
                    &part,
                    f,
                    opts.seed.wrapping_add(bi as u64),
                )?),
                None => part,
            };
            parts.push(part);
        }
        let refs: Vec<&Table> = parts.iter().map(|p| p.as_ref()).collect();
        let out = dc_engine::ops::concat(&refs, false)?;
        Ok((
            out,
            ScanReceipt {
                bytes_scanned: bytes,
                rows_scanned,
                blocks_scanned: chosen.len() as u64,
                total_blocks: self.blocks.len() as u64,
                cost_dollars: 0.0, // filled in by the database, which knows pricing
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Column;

    fn t(n: usize) -> Table {
        Table::new(vec![
            ("x", Column::from_ints((0..n as i64).collect())),
            (
                "y",
                Column::from_ints((0..n as i64).map(|v| v * 2).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn blocking_shape() {
        let bt = BlockTable::new(&t(1050), 100).unwrap();
        assert_eq!(bt.num_blocks(), 11);
        assert_eq!(bt.num_rows(), 1050);
        assert!(bt.total_bytes() > 0);
    }

    #[test]
    fn zero_block_rows_rejected() {
        assert!(BlockTable::new(&t(10), 0).is_err());
    }

    #[test]
    fn full_scan_returns_everything() {
        let bt = BlockTable::new(&t(250), 64).unwrap();
        let (out, receipt) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out.num_rows(), 250);
        assert_eq!(receipt.blocks_scanned, receipt.total_blocks);
        assert_eq!(receipt.rows_scanned, 250);
    }

    #[test]
    fn block_sample_scans_fraction_of_bytes() {
        let bt = BlockTable::new(&t(100_000), 1000).unwrap();
        let (_, full) = bt.scan(&ScanOptions::full()).unwrap();
        let (out, sampled) = bt.scan(&ScanOptions::block_sampled(0.1, 7)).unwrap();
        // ~10% of the blocks, hence ~10% of the bytes.
        let ratio = sampled.bytes_scanned as f64 / full.bytes_scanned as f64;
        assert!((0.05..0.2).contains(&ratio), "ratio {ratio}");
        assert!(out.num_rows() > 0);
        assert!(sampled.blocks_scanned < full.blocks_scanned / 5);
    }

    #[test]
    fn row_sample_scans_everything() {
        let bt = BlockTable::new(&t(10_000), 500).unwrap();
        let (out, receipt) = bt.scan(&ScanOptions::row_sampled(0.1, 3)).unwrap();
        // Cost unchanged: every block read.
        assert_eq!(receipt.blocks_scanned, receipt.total_blocks);
        // But output is ~10% of rows.
        assert!((500..2000).contains(&out.num_rows()), "{}", out.num_rows());
    }

    #[test]
    fn projection_reduces_bytes() {
        let bt = BlockTable::new(&t(10_000), 500).unwrap();
        let (_, full) = bt.scan(&ScanOptions::full()).unwrap();
        let opts = ScanOptions {
            columns: Some(vec!["x".into()]),
            ..ScanOptions::default()
        };
        let (out, projected) = bt.scan(&opts).unwrap();
        assert_eq!(out.num_columns(), 1);
        assert!(projected.bytes_scanned < full.bytes_scanned);
    }

    #[test]
    fn block_sample_never_empty() {
        let bt = BlockTable::new(&t(100), 100).unwrap(); // one block
        let (out, receipt) = bt.scan(&ScanOptions::block_sampled(0.01, 9)).unwrap();
        assert_eq!(receipt.blocks_scanned, 1);
        assert_eq!(out.num_rows(), 100);
    }

    #[test]
    fn block_sample_deterministic() {
        let bt = BlockTable::new(&t(50_000), 1000).unwrap();
        let a = bt.scan(&ScanOptions::block_sampled(0.2, 11)).unwrap().0;
        let b = bt.scan(&ScanOptions::block_sampled(0.2, 11)).unwrap().0;
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_fraction_rejected() {
        let bt = BlockTable::new(&t(100), 10).unwrap();
        assert!(bt.scan(&ScanOptions::block_sampled(0.0, 1)).is_err());
        assert!(bt.scan(&ScanOptions::block_sampled(1.5, 1)).is_err());
    }

    #[test]
    fn clone_shares_block_allocations() {
        let bt = BlockTable::new(&t(1000), 100).unwrap();
        let copy = bt.clone();
        for i in 0..bt.num_blocks() {
            assert!(Arc::ptr_eq(&bt.block(i).unwrap(), &copy.block(i).unwrap()));
        }
        assert!(bt.block(bt.num_blocks()).is_none());
    }

    fn str_table(n: usize) -> Table {
        Table::new(vec![
            ("id", Column::from_ints((0..n as i64).collect())),
            (
                "region",
                Column::from_strs(
                    (0..n)
                        .map(|i| format!("region_{:02}", i % 8))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn string_blocks_are_dictionary_encoded_and_cheaper() {
        let t = str_table(10_000);
        let bt = BlockTable::new(&t, 500).unwrap();
        // Every block's string column is encoded and shares block 0's dict.
        let first = bt.block(0).unwrap();
        let (_, first_dict, _) = first.column("region").unwrap().as_dict().unwrap();
        for i in 0..bt.num_blocks() {
            let block = bt.block(i).unwrap();
            let (_, dict, _) = block.column("region").unwrap().as_dict().unwrap();
            assert!(Arc::ptr_eq(first_dict, dict), "block {i} has its own dict");
        }
        assert_eq!(bt.dict_sizes(), vec![("region".to_string(), 8)]);
        // Charging the shared dictionary once makes the stored footprint
        // smaller than the plain-string encoding of the same data.
        let plain_bytes = t.materialize_strings().byte_size() as u64;
        assert!(
            bt.total_bytes() < plain_bytes,
            "dict {} vs plain {plain_bytes}",
            bt.total_bytes()
        );
        // And a full scan returns the same logical rows.
        let (out, receipt) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out, t.encode_strings());
        assert_eq!(receipt.bytes_scanned, bt.total_bytes());
    }

    #[test]
    fn dict_sizes_empty_without_string_columns() {
        let bt = BlockTable::new(&t(100), 10).unwrap();
        assert!(bt.dict_sizes().is_empty());
    }

    #[test]
    fn empty_table_scans_empty() {
        let bt = BlockTable::new(&t(0), 10).unwrap();
        let (out, receipt) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(receipt.rows_scanned, 0);
    }
}
