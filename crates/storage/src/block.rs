//! Block-structured table storage.
//!
//! Cloud warehouses store tables in immutable blocks (micro-partitions);
//! scans charge for every block touched. Splitting stored tables into
//! fixed-size row blocks here gives the paper's block-level sampling (§3)
//! a real mechanism: sampling 10% of *blocks* scans ~10% of the bytes,
//! whereas row-level Bernoulli sampling still scans everything.

use std::borrow::Cow;
use std::sync::Arc;

use dc_engine::expr::prune::{self, ColumnStats, Tri};
use dc_engine::ops::{filter_serial, sample_fraction};
use dc_engine::{Column, DataType, Expr, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::error::{Result, StorageError};
use crate::fault::{CancelToken, FaultInjector};
use crate::pricing::ScanReceipt;

/// Zone-map bounds for one block of one column, computed once at
/// construction. Bounds cover *valid* (non-null) slots only.
#[derive(Debug, Clone, PartialEq)]
enum ZoneBounds {
    /// No usable bounds: all-null block, a float block containing NaN,
    /// or a dtype zone maps do not summarize (Bool, plain Str).
    None,
    /// Value bounds for numeric / date columns.
    Values { min: Value, max: Value },
    /// Bounds as codes into the column's shared *sorted* dictionary, so
    /// code order is string order and translation is two array reads.
    DictCodes { min: u32, max: u32 },
}

/// Zone map for one block of one column.
#[derive(Debug, Clone, PartialEq)]
struct ColumnZone {
    bounds: ZoneBounds,
    null_count: u64,
}

fn compute_zone(col: &Column) -> ColumnZone {
    let null_count = col.null_count() as u64;
    let n = col.len();
    if null_count as usize >= n {
        return ColumnZone {
            bounds: ZoneBounds::None,
            null_count,
        };
    }
    let bounds = if let Some((codes, _, validity)) = col.as_dict() {
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for (i, &c) in codes.iter().enumerate() {
            if validity.get(i) {
                lo = lo.min(c);
                hi = hi.max(c);
            }
        }
        ZoneBounds::DictCodes { min: lo, max: hi }
    } else {
        match col.dtype() {
            DataType::Int | DataType::Float | DataType::Date => {
                let mut min: Option<Value> = None;
                let mut max: Option<Value> = None;
                let mut usable = true;
                for i in 0..n {
                    let v = col.get(i);
                    if v.is_null() {
                        continue;
                    }
                    if matches!(&v, Value::Float(f) if f.is_nan()) {
                        // NaN breaks interval reasoning; publish nothing.
                        usable = false;
                        break;
                    }
                    let lower = match &min {
                        None => true,
                        Some(m) => v.partial_cmp_sql(m) == Some(std::cmp::Ordering::Less),
                    };
                    if lower {
                        min = Some(v.clone());
                    }
                    let higher = match &max {
                        None => true,
                        Some(m) => v.partial_cmp_sql(m) == Some(std::cmp::Ordering::Greater),
                    };
                    if higher {
                        max = Some(v);
                    }
                }
                match (usable, min, max) {
                    (true, Some(min), Some(max)) => ZoneBounds::Values { min, max },
                    _ => ZoneBounds::None,
                }
            }
            _ => ZoneBounds::None,
        }
    };
    ColumnZone { bounds, null_count }
}

/// A stored table split into fixed-size row blocks.
///
/// Blocks are immutable and held behind [`Arc`], so cloning a
/// `BlockTable` (snapshots, catalog copies) shares the block data instead
/// of duplicating it.
#[derive(Debug, Clone)]
pub struct BlockTable {
    blocks: Vec<Arc<Table>>,
    /// Per block, per column: payload bytes excluding dictionary heap
    /// (codes + validity for dict columns). Dictionaries are accounted
    /// separately in `dict_bytes` because blocks share them.
    data_bytes: Vec<Vec<u64>>,
    /// Per column: heap bytes of its shared dictionary (0 for non-dict
    /// columns), charged at most once per scan that reads the column.
    dict_bytes: Vec<u64>,
    /// Per block, per column: zone maps for predicate pruning.
    zones: Vec<Vec<ColumnZone>>,
    rows: usize,
    schema_names: Vec<String>,
}

/// How to scan a [`BlockTable`].
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Project to these columns at the storage layer (columnar engines
    /// charge only for columns read).
    pub columns: Option<Vec<String>>,
    /// Block-level sampling: read only ~this fraction of blocks.
    pub block_sample: Option<f64>,
    /// Row-level Bernoulli sampling applied to every scanned block. This
    /// does NOT reduce scan cost — the contrast with `block_sample` is the
    /// point of the §3 experiment.
    pub row_sample: Option<f64>,
    /// Filter predicate pushed into the scan. Blocks whose zone maps
    /// prove no row can match are skipped and charged zero bytes; blocks
    /// proven all-matching skip row-level filtering; the rest are read
    /// and filtered. The output equals scanning without the predicate
    /// and filtering afterwards, with two caveats: a predicate naming a
    /// column absent from the table is ignored (no pruning, no
    /// filtering), and a block where row-level evaluation errors is
    /// passed through unfiltered — so the caller's own filter, not the
    /// scan, surfaces predicate errors.
    pub predicate: Option<Expr>,
    /// Seed for the sampling choices.
    pub seed: u64,
    /// Cooperative-cancellation handle: the scan checks it at block
    /// boundaries (and inside injected stalls) and aborts with a
    /// retryable [`StorageError::Transient`] once it fires.
    pub cancel: Option<CancelToken>,
}

impl ScanOptions {
    /// A full-table scan.
    pub fn full() -> ScanOptions {
        ScanOptions::default()
    }

    /// Block-level sample at `fraction`.
    pub fn block_sampled(fraction: f64, seed: u64) -> ScanOptions {
        ScanOptions {
            block_sample: Some(fraction),
            seed,
            ..ScanOptions::default()
        }
    }

    /// Row-level Bernoulli sample at `fraction`.
    pub fn row_sampled(fraction: f64, seed: u64) -> ScanOptions {
        ScanOptions {
            row_sample: Some(fraction),
            seed,
            ..ScanOptions::default()
        }
    }
}

impl BlockTable {
    /// Split `table` into blocks of `block_rows` rows. String columns are
    /// dictionary-encoded first, so every block carries `u32` codes and
    /// shares one table-wide dictionary allocation. Zone maps (per-block
    /// min/max, null counts) are computed here, once, so scans can prune
    /// blocks with metadata alone.
    pub fn new(table: &Table, block_rows: usize) -> Result<BlockTable> {
        if block_rows == 0 {
            return Err(StorageError::invalid("block_rows must be positive"));
        }
        let table = table.encode_strings();
        let rows = table.num_rows();
        let mut blocks = Vec::with_capacity(rows.div_ceil(block_rows).max(1));
        if rows == 0 {
            blocks.push(Arc::new(table.clone()));
        } else {
            let mut start = 0;
            while start < rows {
                blocks.push(Arc::new(table.slice(start, block_rows)));
                start += block_rows;
            }
        }
        let data_bytes = blocks
            .iter()
            .map(|b| {
                b.columns()
                    .iter()
                    .map(|c| (c.byte_size() - c.dict_heap_bytes()) as u64)
                    .collect()
            })
            .collect();
        // All blocks share one dictionary per string column, so block 0
        // describes the whole table's dictionary footprint.
        let dict_bytes = blocks[0]
            .columns()
            .iter()
            .map(|c| c.dict_heap_bytes() as u64)
            .collect();
        let zones = blocks
            .iter()
            .map(|b| b.columns().iter().map(compute_zone).collect())
            .collect();
        Ok(BlockTable {
            data_bytes,
            dict_bytes,
            zones,
            rows,
            schema_names: table
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            blocks,
        })
    }

    /// Total rows stored.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total stored bytes: every block's payload plus each shared
    /// dictionary once.
    pub fn total_bytes(&self) -> u64 {
        self.data_bytes.iter().flatten().sum::<u64>() + self.dict_bytes.iter().sum::<u64>()
    }

    /// Zone-map statistics for block `bi`, column `ci`, in the form the
    /// tri-state evaluator consumes. Dictionary code bounds translate to
    /// their strings here (the dictionary is sorted, so the code range
    /// *is* the string range). Public so the static estimator can price a
    /// scan with exactly the statistics the scan itself prunes by.
    pub fn column_stats(&self, bi: usize, ci: usize) -> ColumnStats {
        let zone = &self.zones[bi][ci];
        let block = &self.blocks[bi];
        let col = &block.columns()[ci];
        let (min, max) = match &zone.bounds {
            ZoneBounds::None => (None, None),
            ZoneBounds::Values { min, max } => (Some(min.clone()), Some(max.clone())),
            ZoneBounds::DictCodes { min, max } => {
                let (_, dict, _) = col.as_dict().expect("DictCodes zone on non-dict column");
                (
                    Some(Value::Str(dict[*min as usize].clone())),
                    Some(Value::Str(dict[*max as usize].clone())),
                )
            }
        };
        ColumnStats {
            dtype: block.schema().fields()[ci].dtype,
            min,
            max,
            null_count: zone.null_count,
            row_count: block.num_rows() as u64,
        }
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.schema_names
    }

    /// Rows stored in block `bi`.
    pub fn block_rows(&self, bi: usize) -> usize {
        self.blocks[bi].num_rows()
    }

    /// Per-column payload bytes of block `bi` (dictionaries excluded —
    /// they are shared table-wide and reported by [`dict_byte_sizes`]).
    ///
    /// [`dict_byte_sizes`]: BlockTable::dict_byte_sizes
    pub fn block_data_bytes(&self, bi: usize) -> &[u64] {
        &self.data_bytes[bi]
    }

    /// Per-column shared-dictionary bytes (zero for non-dict columns),
    /// charged once per scan that touches any block.
    pub fn dict_byte_sizes(&self) -> &[u64] {
        &self.dict_bytes
    }

    /// The stored table's typed schema. Constructors always push at
    /// least one block (an empty table is stored as one empty block), so
    /// the first block's schema is the table's schema.
    pub fn schema(&self) -> &dc_engine::Schema {
        self.blocks[0].schema()
    }

    /// Shared handle to block `i`'s data — a pointer copy, not a clone.
    pub fn block(&self, i: usize) -> Option<Arc<Table>> {
        self.blocks.get(i).map(Arc::clone)
    }

    /// Name and dictionary cardinality of each dictionary-encoded column.
    /// Blocks share one table-wide dictionary per string column, so the
    /// first block's dictionaries describe the whole table.
    pub fn dict_sizes(&self) -> Vec<(String, usize)> {
        self.schema_names
            .iter()
            .zip(self.blocks[0].columns())
            .filter_map(|(name, col)| col.as_dict().map(|(_, dict, _)| (name.clone(), dict.len())))
            .collect()
    }

    /// Scan under `opts`, returning the data plus a receipt of what was
    /// actually read.
    pub fn scan(&self, opts: &ScanOptions) -> Result<(Table, ScanReceipt)> {
        self.scan_with(opts, None)
    }

    /// [`BlockTable::scan`] with an optional fault injector in the path:
    /// the injector sees the scan start plus every block read, which is
    /// where transient failures and slow blocks strike.
    pub fn scan_with(
        &self,
        opts: &ScanOptions,
        injector: Option<&FaultInjector>,
    ) -> Result<(Table, ScanReceipt)> {
        let cancel = opts.cancel.as_ref();
        if let Some(inj) = injector {
            inj.on_scan(opts.block_sample.is_some(), cancel)?;
        }
        // Choose blocks.
        let chosen: Vec<usize> = match opts.block_sample {
            Some(f) => {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(StorageError::invalid(format!(
                        "block sample fraction must be in (0, 1], got {f}"
                    )));
                }
                let mut rng = StdRng::seed_from_u64(opts.seed);
                let picked: Vec<usize> = (0..self.blocks.len())
                    .filter(|_| rng.random::<f64>() < f)
                    .collect();
                if picked.is_empty() && !self.blocks.is_empty() {
                    // Always read at least one block so samples are never
                    // empty on tiny tables.
                    vec![opts.seed as usize % self.blocks.len()]
                } else {
                    picked
                }
            }
            None => (0..self.blocks.len()).collect(),
        };

        // Column projection factor for cost accounting.
        let projected: Option<Vec<&str>> = opts
            .columns
            .as_ref()
            .map(|cols| cols.iter().map(|s| s.as_str()).collect());

        let schema = self.schema();
        // A predicate naming a column the table does not have would error
        // differently here than in the caller's own filter; ignore it and
        // let the caller surface the problem.
        let predicate: Option<&Expr> = opts.predicate.as_ref().filter(|p| {
            let mut cols = Vec::new();
            p.referenced_columns(&mut cols);
            cols.iter().all(|c| schema.index_of(c).is_some())
        });

        // Columns the scan must read: the projection (all columns when
        // absent) plus every column the pushed predicate consults.
        let mut read_cols: Vec<usize> = match &opts.columns {
            Some(cols) => cols.iter().filter_map(|c| schema.index_of(c)).collect(),
            None => (0..schema.fields().len()).collect(),
        };
        if let Some(p) = predicate {
            let mut pred_cols = Vec::new();
            p.referenced_columns(&mut pred_cols);
            for c in &pred_cols {
                if let Some(i) = schema.index_of(c) {
                    if !read_cols.contains(&i) {
                        read_cols.push(i);
                    }
                }
            }
        }
        let read_data_bytes =
            |bi: usize| -> u64 { read_cols.iter().map(|&ci| self.data_bytes[bi][ci]).sum() };

        // Unprojected, unsampled blocks are borrowed as-is — a full scan
        // never deep-clones block data, it only concatenates borrowed
        // parts into the output table.
        let mut parts: Vec<Cow<'_, Table>> = Vec::with_capacity(chosen.len());
        let mut bytes = 0u64;
        let mut rows_scanned = 0u64;
        let mut blocks_scanned = 0u64;
        let mut blocks_pruned = 0u64;
        let mut bytes_pruned = 0u64;
        for &bi in &chosen {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(StorageError::Transient {
                        operation: "scan".to_string(),
                        message: "cancelled: node budget exhausted".to_string(),
                    });
                }
            }
            let block = &self.blocks[bi];
            // Zone-map check: a metadata-only decision made before the
            // block is read, so pruned blocks cost nothing and never see
            // injected block-read faults.
            let verdict = match predicate {
                Some(_) if block.num_rows() == 0 => Tri::AllFalse,
                Some(p) => {
                    let lookup =
                        |name: &str| schema.index_of(name).map(|ci| self.column_stats(bi, ci));
                    prune::prune_predicate(p, &lookup)
                }
                None => Tri::Unknown,
            };
            if predicate.is_some() && verdict == Tri::AllFalse {
                blocks_pruned += 1;
                bytes_pruned += read_data_bytes(bi);
                continue;
            }
            if let Some(inj) = injector {
                inj.on_block_read(cancel)?;
            }
            bytes += read_data_bytes(bi);
            rows_scanned += block.num_rows() as u64;
            blocks_scanned += 1;
            let mut part = Cow::Borrowed(block.as_ref());
            if let Some(f) = opts.row_sample {
                part = Cow::Owned(sample_fraction(
                    &part,
                    f,
                    opts.seed.wrapping_add(bi as u64),
                )?);
            }
            if let Some(p) = predicate {
                if verdict != Tri::AllTrue {
                    // Row-level evaluation errors (e.g. cross-type
                    // comparisons) must surface from the caller's own
                    // filter for correct attribution; pass the block
                    // through unfiltered in that case.
                    if let Ok(kept) = filter_serial(&part, p) {
                        part = Cow::Owned(kept);
                    }
                }
            }
            if let Some(cols) = &projected {
                part = Cow::Owned(part.select(cols)?);
            }
            parts.push(part);
        }
        // Each shared dictionary is read once per scan that touches any
        // block of its column; a fully pruned column never loads it.
        let read_dict_bytes: u64 = read_cols.iter().map(|&ci| self.dict_bytes[ci]).sum();
        if blocks_scanned > 0 {
            bytes += read_dict_bytes;
        } else if blocks_pruned > 0 {
            bytes_pruned += read_dict_bytes;
        }
        let out = if parts.is_empty() {
            let mut empty = self.blocks[0].slice(0, 0);
            if let Some(cols) = &projected {
                empty = empty.select(cols)?;
            }
            empty
        } else {
            let refs: Vec<&Table> = parts.iter().map(|p| p.as_ref()).collect();
            dc_engine::ops::concat(&refs, false)?
        };
        Ok((
            out,
            ScanReceipt {
                bytes_scanned: bytes,
                // In-memory blocks: every logical byte scanned is resident.
                bytes_read: bytes,
                rows_scanned,
                blocks_scanned,
                total_blocks: self.blocks.len() as u64,
                blocks_pruned,
                bytes_pruned,
                cost_dollars: 0.0, // filled in by the database, which knows pricing
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Column;

    fn t(n: usize) -> Table {
        Table::new(vec![
            ("x", Column::from_ints((0..n as i64).collect())),
            (
                "y",
                Column::from_ints((0..n as i64).map(|v| v * 2).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn blocking_shape() {
        let bt = BlockTable::new(&t(1050), 100).unwrap();
        assert_eq!(bt.num_blocks(), 11);
        assert_eq!(bt.num_rows(), 1050);
        assert!(bt.total_bytes() > 0);
    }

    #[test]
    fn zero_block_rows_rejected() {
        assert!(BlockTable::new(&t(10), 0).is_err());
    }

    #[test]
    fn full_scan_returns_everything() {
        let bt = BlockTable::new(&t(250), 64).unwrap();
        let (out, receipt) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out.num_rows(), 250);
        assert_eq!(receipt.blocks_scanned, receipt.total_blocks);
        assert_eq!(receipt.rows_scanned, 250);
    }

    #[test]
    fn block_sample_scans_fraction_of_bytes() {
        let bt = BlockTable::new(&t(100_000), 1000).unwrap();
        let (_, full) = bt.scan(&ScanOptions::full()).unwrap();
        let (out, sampled) = bt.scan(&ScanOptions::block_sampled(0.1, 7)).unwrap();
        // ~10% of the blocks, hence ~10% of the bytes.
        let ratio = sampled.bytes_scanned as f64 / full.bytes_scanned as f64;
        assert!((0.05..0.2).contains(&ratio), "ratio {ratio}");
        assert!(out.num_rows() > 0);
        assert!(sampled.blocks_scanned < full.blocks_scanned / 5);
    }

    #[test]
    fn row_sample_scans_everything() {
        let bt = BlockTable::new(&t(10_000), 500).unwrap();
        let (out, receipt) = bt.scan(&ScanOptions::row_sampled(0.1, 3)).unwrap();
        // Cost unchanged: every block read.
        assert_eq!(receipt.blocks_scanned, receipt.total_blocks);
        // But output is ~10% of rows.
        assert!((500..2000).contains(&out.num_rows()), "{}", out.num_rows());
    }

    #[test]
    fn projection_reduces_bytes() {
        let bt = BlockTable::new(&t(10_000), 500).unwrap();
        let (_, full) = bt.scan(&ScanOptions::full()).unwrap();
        let opts = ScanOptions {
            columns: Some(vec!["x".into()]),
            ..ScanOptions::default()
        };
        let (out, projected) = bt.scan(&opts).unwrap();
        assert_eq!(out.num_columns(), 1);
        assert!(projected.bytes_scanned < full.bytes_scanned);
    }

    #[test]
    fn block_sample_never_empty() {
        let bt = BlockTable::new(&t(100), 100).unwrap(); // one block
        let (out, receipt) = bt.scan(&ScanOptions::block_sampled(0.01, 9)).unwrap();
        assert_eq!(receipt.blocks_scanned, 1);
        assert_eq!(out.num_rows(), 100);
    }

    #[test]
    fn block_sample_deterministic() {
        let bt = BlockTable::new(&t(50_000), 1000).unwrap();
        let a = bt.scan(&ScanOptions::block_sampled(0.2, 11)).unwrap().0;
        let b = bt.scan(&ScanOptions::block_sampled(0.2, 11)).unwrap().0;
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_fraction_rejected() {
        let bt = BlockTable::new(&t(100), 10).unwrap();
        assert!(bt.scan(&ScanOptions::block_sampled(0.0, 1)).is_err());
        assert!(bt.scan(&ScanOptions::block_sampled(1.5, 1)).is_err());
    }

    #[test]
    fn clone_shares_block_allocations() {
        let bt = BlockTable::new(&t(1000), 100).unwrap();
        let copy = bt.clone();
        for i in 0..bt.num_blocks() {
            assert!(Arc::ptr_eq(&bt.block(i).unwrap(), &copy.block(i).unwrap()));
        }
        assert!(bt.block(bt.num_blocks()).is_none());
    }

    fn str_table(n: usize) -> Table {
        Table::new(vec![
            ("id", Column::from_ints((0..n as i64).collect())),
            (
                "region",
                Column::from_strs(
                    (0..n)
                        .map(|i| format!("region_{:02}", i % 8))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn string_blocks_are_dictionary_encoded_and_cheaper() {
        let t = str_table(10_000);
        let bt = BlockTable::new(&t, 500).unwrap();
        // Every block's string column is encoded and shares block 0's dict.
        let first = bt.block(0).unwrap();
        let (_, first_dict, _) = first.column("region").unwrap().as_dict().unwrap();
        for i in 0..bt.num_blocks() {
            let block = bt.block(i).unwrap();
            let (_, dict, _) = block.column("region").unwrap().as_dict().unwrap();
            assert!(Arc::ptr_eq(first_dict, dict), "block {i} has its own dict");
        }
        assert_eq!(bt.dict_sizes(), vec![("region".to_string(), 8)]);
        // Charging the shared dictionary once makes the stored footprint
        // smaller than the plain-string encoding of the same data.
        let plain_bytes = t.materialize_strings().byte_size() as u64;
        assert!(
            bt.total_bytes() < plain_bytes,
            "dict {} vs plain {plain_bytes}",
            bt.total_bytes()
        );
        // And a full scan returns the same logical rows.
        let (out, receipt) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out, t.encode_strings());
        assert_eq!(receipt.bytes_scanned, bt.total_bytes());
    }

    fn with_predicate(p: Expr) -> ScanOptions {
        ScanOptions {
            predicate: Some(p),
            ..ScanOptions::default()
        }
    }

    #[test]
    fn selective_predicate_prunes_blocks_and_charges_zero_for_them() {
        // x is sorted, so zone maps are tight: x BETWEEN 500 AND 509
        // lives entirely in one 100-row block.
        let bt = BlockTable::new(&t(1000), 100).unwrap();
        let pred = Expr::col("x").between(Expr::lit(500), Expr::lit(509));
        let (out, receipt) = bt.scan(&with_predicate(pred.clone())).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert_eq!(receipt.blocks_scanned, 1);
        assert_eq!(receipt.blocks_pruned, 9);
        assert_eq!(receipt.rows_scanned, 100);
        // Pruned + scanned accounts for exactly the unpruned cost.
        let (_, full) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(
            receipt.bytes_scanned + receipt.bytes_pruned,
            full.bytes_scanned
        );
        assert!(receipt.bytes_scanned < full.bytes_scanned / 5);
        assert!(receipt.bytes_read <= receipt.bytes_scanned);
        // Same rows as filtering after a full, unpruned scan.
        let (all, _) = bt.scan(&ScanOptions::full()).unwrap();
        let expect = filter_serial(&all, &pred).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn all_blocks_pruned_yields_empty_table_and_zero_bytes() {
        let bt = BlockTable::new(&t(1000), 100).unwrap();
        let (out, receipt) = bt
            .scan(&with_predicate(Expr::col("x").gt(Expr::lit(10_000))))
            .unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), 2);
        assert_eq!(receipt.blocks_scanned, 0);
        assert_eq!(receipt.blocks_pruned, receipt.total_blocks);
        assert_eq!(receipt.bytes_scanned, 0);
        assert_eq!(receipt.bytes_read, 0);
        assert_eq!(receipt.bytes_pruned, bt.total_bytes());
    }

    #[test]
    fn dict_predicate_prunes_via_code_ranges() {
        // Clustered keys: each 100-row block covers one key, so an
        // equality predicate prunes every other block via dictionary
        // code ranges without touching block data.
        let t = Table::new(vec![(
            "k",
            Column::from_strs(
                (0..1000)
                    .map(|i| format!("key_{:02}", i / 100))
                    .collect::<Vec<_>>(),
            ),
        )])
        .unwrap();
        let bt = BlockTable::new(&t, 100).unwrap();
        let pred = Expr::col("k").eq(Expr::lit(Value::Str("key_03".into())));
        let (out, receipt) = bt.scan(&with_predicate(pred.clone())).unwrap();
        assert_eq!(out.num_rows(), 100);
        assert_eq!(receipt.blocks_pruned, 9);
        let (all, full) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out, filter_serial(&all, &pred).unwrap());
        assert!(receipt.bytes_scanned < full.bytes_scanned);
    }

    #[test]
    fn predicate_on_unknown_column_is_ignored() {
        let bt = BlockTable::new(&t(500), 100).unwrap();
        let (out, receipt) = bt
            .scan(&with_predicate(Expr::col("bogus").gt(Expr::lit(3))))
            .unwrap();
        assert_eq!(out.num_rows(), 500);
        assert_eq!(receipt.blocks_pruned, 0);
        assert_eq!(receipt.bytes_scanned, bt.total_bytes());
    }

    #[test]
    fn erroring_predicate_passes_blocks_through_unfiltered() {
        // Str column vs Int literal errors in the engine; the scan must
        // neither prune nor filter, leaving the error to the caller.
        let bt = BlockTable::new(&str_table(300), 100).unwrap();
        let pred = Expr::col("region").gt(Expr::lit(5));
        let (out, receipt) = bt.scan(&with_predicate(pred)).unwrap();
        assert_eq!(out.num_rows(), 300);
        assert_eq!(receipt.blocks_pruned, 0);
    }

    #[test]
    fn null_blocks_prune_conservatively() {
        // Rows 0..200 have values, 200..300 are all null: x > 1000 can
        // prune everything (null rows never match), IS NULL keeps only
        // the null block.
        let vals: Vec<Option<i64>> = (0..300)
            .map(|i| if i < 200 { Some(i) } else { None })
            .collect();
        let t = Table::new(vec![("x", Column::from_opt_ints(vals))]).unwrap();
        let bt = BlockTable::new(&t, 100).unwrap();
        let (out, receipt) = bt
            .scan(&with_predicate(Expr::col("x").gt(Expr::lit(1000))))
            .unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(receipt.blocks_pruned, 3);
        let (out, receipt) = bt.scan(&with_predicate(Expr::col("x").is_null())).unwrap();
        assert_eq!(out.num_rows(), 100);
        assert_eq!(receipt.blocks_pruned, 2);
    }

    #[test]
    fn predicate_composes_with_row_sampling() {
        // Sampling happens before the pushed filter, so the result is
        // identical to sampling without a predicate and filtering after.
        let bt = BlockTable::new(&t(10_000), 500).unwrap();
        let pred = Expr::col("x").lt(Expr::lit(1000));
        let mut opts = ScanOptions::row_sampled(0.2, 3);
        opts.predicate = Some(pred.clone());
        let (out, receipt) = bt.scan(&opts).unwrap();
        let (all, _) = bt.scan(&ScanOptions::row_sampled(0.2, 3)).unwrap();
        assert_eq!(out, filter_serial(&all, &pred).unwrap());
        assert!(receipt.blocks_pruned > 0);
    }

    #[test]
    fn dictionaries_charged_only_for_columns_actually_read() {
        let t = str_table(10_000);
        let bt = BlockTable::new(&t, 500).unwrap();
        let dict_heap = bt
            .block(0)
            .unwrap()
            .column("region")
            .unwrap()
            .dict_heap_bytes() as u64;
        assert!(dict_heap > 0);
        // Projecting the int column away from the dict column must not
        // charge the dictionary.
        let opts = ScanOptions {
            columns: Some(vec!["id".into()]),
            ..ScanOptions::default()
        };
        let (_, ints_only) = bt.scan(&opts).unwrap();
        let opts = ScanOptions {
            columns: Some(vec!["region".into()]),
            ..ScanOptions::default()
        };
        let (_, strs_only) = bt.scan(&opts).unwrap();
        let (_, full) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(
            ints_only.bytes_scanned + strs_only.bytes_scanned,
            full.bytes_scanned
        );
        // The dictionary is part of the string column's charge only.
        assert!(strs_only.bytes_scanned > dict_heap);
        assert_eq!(
            full.bytes_scanned - ints_only.bytes_scanned,
            strs_only.bytes_scanned
        );
        // A predicate over the dict column forces its read (and its
        // dictionary charge) even when the projection excludes it.
        let opts = ScanOptions {
            columns: Some(vec!["id".into()]),
            predicate: Some(Expr::col("region").eq(Expr::lit(Value::Str("region_03".into())))),
            ..ScanOptions::default()
        };
        let (out, with_pred) = bt.scan(&opts).unwrap();
        assert_eq!(out.num_columns(), 1);
        assert_eq!(with_pred.bytes_scanned, full.bytes_scanned);
        assert_eq!(out.num_rows(), 10_000 / 8);
    }

    #[test]
    fn dict_sizes_empty_without_string_columns() {
        let bt = BlockTable::new(&t(100), 10).unwrap();
        assert!(bt.dict_sizes().is_empty());
    }

    #[test]
    fn empty_table_scans_empty() {
        let bt = BlockTable::new(&t(0), 10).unwrap();
        let (out, receipt) = bt.scan(&ScanOptions::full()).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(receipt.rows_scanned, 0);
    }
}
