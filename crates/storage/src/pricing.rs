//! Consumption-based and fixed pricing models with a scan-cost meter.
//!
//! §3 of the paper: "query costs are generally proportional to the size of
//! the dataset being scanned" under prevalent consumption-based pricing.
//! The meter makes that cost observable so the sampling and snapshot
//! experiments can report dollar figures instead of hand-waving.

use std::sync::atomic::{AtomicU64, Ordering};

/// How a storage backend charges for scans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pricing {
    /// Cloud-warehouse style: dollars per terabyte scanned.
    PerTbScanned { dollars_per_tb: f64 },
    /// Local-instance style: a fixed monthly fee; marginal scan cost zero.
    FixedMonthly { dollars_per_month: f64 },
}

impl Pricing {
    /// The common on-demand cloud rate ($5/TB, BigQuery-class).
    pub fn default_cloud() -> Pricing {
        Pricing::PerTbScanned {
            dollars_per_tb: 5.0,
        }
    }

    /// A small fixed-cost local instance.
    pub fn default_local() -> Pricing {
        Pricing::FixedMonthly {
            dollars_per_month: 50.0,
        }
    }

    /// Marginal dollar cost of scanning `bytes`.
    pub fn scan_cost(&self, bytes: u64) -> f64 {
        match self {
            Pricing::PerTbScanned { dollars_per_tb } => bytes as f64 / 1e12 * dollars_per_tb,
            Pricing::FixedMonthly { .. } => 0.0,
        }
    }
}

/// Thread-safe accumulator of scan activity for one backend.
///
/// Nano-dollars are accumulated as integers so concurrent updates stay
/// exact even for tiny scans; [`CostMeter::dollars`] converts on read.
#[derive(Debug, Default)]
pub struct CostMeter {
    bytes_scanned: AtomicU64,
    rows_scanned: AtomicU64,
    blocks_scanned: AtomicU64,
    queries: AtomicU64,
    nano_dollars: AtomicU64,
}

impl CostMeter {
    /// A fresh meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Record one scan.
    pub fn record(&self, pricing: &Pricing, bytes: u64, rows: u64, blocks: u64) {
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        self.blocks_scanned.fetch_add(blocks, Ordering::Relaxed);
        self.queries.fetch_add(1, Ordering::Relaxed);
        let nanos = (pricing.scan_cost(bytes) * 1e9).round() as u64;
        self.nano_dollars.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total bytes scanned so far.
    pub fn bytes(&self) -> u64 {
        self.bytes_scanned.load(Ordering::Relaxed)
    }

    /// Total rows scanned so far.
    pub fn rows(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Total blocks scanned so far.
    pub fn blocks(&self) -> u64 {
        self.blocks_scanned.load(Ordering::Relaxed)
    }

    /// Number of scans recorded.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Accumulated marginal cost in dollars.
    pub fn dollars(&self) -> f64 {
        self.nano_dollars.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Reset all counters (between benchmark phases).
    pub fn reset(&self) {
        self.bytes_scanned.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.blocks_scanned.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
        self.nano_dollars.store(0, Ordering::Relaxed);
    }
}

/// Receipt describing one scan: what was read and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReceipt {
    pub bytes_scanned: u64,
    /// Bytes actually faulted in from storage. For in-memory block tables
    /// this equals `bytes_scanned`; for on-disk block tables it counts only
    /// the column payloads paged in (projection and zone pruning shrink it),
    /// so `bytes_read <= bytes_scanned` always holds.
    pub bytes_read: u64,
    pub rows_scanned: u64,
    pub blocks_scanned: u64,
    pub total_blocks: u64,
    /// Blocks the zone maps proved could not contain a matching row.
    /// They are skipped outright and charge zero bytes.
    pub blocks_pruned: u64,
    /// Bytes the same scan would have charged without pruning, minus
    /// what it actually charged (includes dictionary payloads when every
    /// block of a dictionary column was pruned).
    pub bytes_pruned: u64,
    pub cost_dollars: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tb_cost_proportional() {
        let p = Pricing::PerTbScanned {
            dollars_per_tb: 5.0,
        };
        assert_eq!(p.scan_cost(1_000_000_000_000), 5.0);
        assert_eq!(p.scan_cost(100_000_000_000), 0.5);
        // 10x fewer bytes, 10x lower cost — the §3 claim in miniature.
        assert!((p.scan_cost(1 << 30) / p.scan_cost((1 << 30) / 10) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_monthly_marginal_zero() {
        let p = Pricing::default_local();
        assert_eq!(p.scan_cost(u64::MAX), 0.0);
    }

    #[test]
    fn meter_accumulates() {
        let m = CostMeter::new();
        let p = Pricing::PerTbScanned {
            dollars_per_tb: 5.0,
        };
        m.record(&p, 2_000_000_000, 1000, 4);
        m.record(&p, 2_000_000_000, 1000, 4);
        assert_eq!(m.bytes(), 4_000_000_000);
        assert_eq!(m.rows(), 2000);
        assert_eq!(m.blocks(), 8);
        assert_eq!(m.queries(), 2);
        assert!((m.dollars() - 0.02).abs() < 1e-6);
        m.reset();
        assert_eq!(m.queries(), 0);
        assert_eq!(m.dollars(), 0.0);
    }
}
