//! # dc-storage — simulated cloud database & snapshot store
//!
//! Reproduces the storage-facing machinery of §3 of the paper:
//!
//! * [`block::BlockTable`] — tables stored in fixed-size row blocks, with
//!   scans that report exactly what they read
//! * [`pricing`] — consumption-based vs fixed pricing, and a thread-safe
//!   [`pricing::CostMeter`] so every experiment can report dollars
//! * [`catalog`] — named databases and a multi-source catalog
//! * [`snapshot`] — the fixed-cost local snapshot store, with recipes and
//!   refresh
//! * [`demo`] — synthetic stand-ins for the paper's datasets (California
//!   collisions, FRED GDP, IoT readings, sales, HR)
//! * [`fault`] — seeded deterministic fault injection (transient scan
//!   failures, slow blocks, snapshot-write failures) plus cooperative
//!   cancellation, feeding the resilient executor in `dc-skills`
//! * [`budget`] — per-tenant scan-byte token buckets, denominated in
//!   receipt bytes, that the serving layer meters admission against
//!
//! The central reproduction target: block-level sampling reads a fraction
//! of blocks and therefore costs proportionally less, while row-level
//! sampling reads everything; snapshots move iteration off the metered
//! cloud path entirely.

pub mod block;
pub mod budget;
pub mod catalog;
pub mod demo;
pub mod disk;
pub mod error;
pub mod fault;
pub mod pricing;
pub mod snapshot;
pub mod spill;

pub use block::{BlockTable, ScanOptions};
pub use budget::{BudgetConfig, ByteBudget};
pub use catalog::{Catalog, CloudDatabase, DatasetInfo, DEFAULT_BLOCK_ROWS};
pub use disk::DiskBlockTable;
pub use error::{Result, StorageError};
pub use spill::InjectedSpillHooks;
pub use fault::{
    CancelToken, FaultConfig, FaultInjector, FaultOp, FaultStats, InjectedFault, ScheduledFault,
};
pub use pricing::{CostMeter, Pricing, ScanReceipt};
pub use snapshot::{Snapshot, SnapshotStore};
