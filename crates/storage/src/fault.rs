//! Deterministic fault injection for the storage layer.
//!
//! Consumption-priced warehouses fail in boring, recoverable ways:
//! transient scan errors, slow blocks, flaky snapshot writes. The
//! [`FaultInjector`] reproduces those failures *deterministically* — a
//! seed plus an explicit schedule fully determine which operation faults
//! — so resilience tests and the `chaos_dag` driver are replayable.
//!
//! Injection points:
//!
//! * [`FaultInjector::on_scan`] — start of a [`crate::BlockTable`] scan
//! * [`FaultInjector::on_block_read`] — each block touched by a scan
//!   (slow blocks sleep cooperatively against a [`CancelToken`])
//! * [`FaultInjector::on_snapshot_write`] — before a snapshot create or
//!   refresh commits (a failed write must never be partially visible)
//!
//! An injector is opt-in: databases and snapshot stores carry
//! `Option<Arc<FaultInjector>>`, and the `None` path adds no work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::error::{Result, StorageError};

/// Which storage operation an injected fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A table scan (the whole operation).
    Scan,
    /// One block read within a scan.
    BlockRead,
    /// A snapshot create/refresh write.
    SnapshotWrite,
    /// An out-of-core spill partition/run write.
    SpillWrite,
    /// An out-of-core spill partition/run read-back.
    SpillRead,
}

/// Number of distinct [`FaultOp`] kinds (size of per-kind counters).
const FAULT_OPS: usize = 5;

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Scan => 0,
            FaultOp::BlockRead => 1,
            FaultOp::SnapshotWrite => 2,
            FaultOp::SpillWrite => 3,
            FaultOp::SpillRead => 4,
        }
    }

    /// Human-readable operation name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Scan => "scan",
            FaultOp::BlockRead => "block read",
            FaultOp::SnapshotWrite => "snapshot write",
            FaultOp::SpillWrite => "spill write",
            FaultOp::SpillRead => "spill read",
        }
    }
}

/// What an injected fault does to the operation it hits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// Fail with [`StorageError::Transient`] (retryable).
    Transient,
    /// Fail with [`StorageError::Unavailable`] (not retryable).
    Unavailable,
    /// Stall the operation for this many milliseconds before letting it
    /// proceed (interruptible via the scan's [`CancelToken`]).
    SlowMs(u64),
}

/// One entry of a deterministic fault schedule: the `occurrence`-th
/// operation of kind `op` (0-based, counted per kind across the
/// injector's lifetime) suffers `fault`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    pub op: FaultOp,
    pub occurrence: u64,
    pub fault: InjectedFault,
}

/// Injector configuration: per-operation probabilities plus an explicit
/// schedule. Scheduled faults take precedence over probability draws.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the probability draws.
    pub seed: u64,
    /// Probability that a scan fails with a transient error.
    pub scan_transient_p: f64,
    /// Probability that a block read stalls for `slow_block_ms`.
    pub slow_block_p: f64,
    /// Stall duration for slow blocks.
    pub slow_block_ms: u64,
    /// Probability that a snapshot write fails with a transient error.
    pub snapshot_write_p: f64,
    /// Probability that a spill write fails with a transient error (the
    /// spill path retries into a fresh spill directory).
    pub spill_write_p: f64,
    /// Probability that a spill read-back stalls for `slow_block_ms`.
    pub slow_spill_read_p: f64,
    /// When set, block-sampled scans are never injected: only full scans
    /// are flaky. This models long scans being the ones that hit
    /// transients, and is what makes the degraded-mode fallback (retry a
    /// failing full scan as a cheaper block sample) observable.
    pub spare_sampled_scans: bool,
    /// Deterministic schedule, consulted before any probability draw.
    pub schedule: Vec<ScheduledFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            scan_transient_p: 0.0,
            slow_block_p: 0.0,
            slow_block_ms: 0,
            snapshot_write_p: 0.0,
            spill_write_p: 0.0,
            slow_spill_read_p: 0.0,
            spare_sampled_scans: false,
            schedule: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A config that never injects anything.
    pub fn disabled() -> FaultConfig {
        FaultConfig::default()
    }

    /// Schedule `fault` on the `occurrence`-th operation of kind `op`.
    pub fn schedule(mut self, op: FaultOp, occurrence: u64, fault: InjectedFault) -> FaultConfig {
        self.schedule.push(ScheduledFault {
            op,
            occurrence,
            fault,
        });
        self
    }
}

/// Counters of what the injector actually did, for exec reports and the
/// chaos driver's summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations observed, per kind (scan, block read, snapshot write,
    /// spill write, spill read).
    pub ops_seen: [u64; FAULT_OPS],
    /// Transient failures injected.
    pub transient_injected: u64,
    /// Unavailable failures injected.
    pub unavailable_injected: u64,
    /// Slow stalls injected.
    pub slow_injected: u64,
}

impl FaultStats {
    /// Total faults of any kind injected.
    pub fn total_injected(&self) -> u64 {
        self.transient_injected + self.unavailable_injected + self.slow_injected
    }
}

#[derive(Debug)]
struct InjectorState {
    rng: StdRng,
    counts: [u64; FAULT_OPS],
    stats: FaultStats,
}

/// A seeded, thread-safe fault injector shared by databases and snapshot
/// stores (`Arc<FaultInjector>`). All decisions are deterministic given
/// the config; the only wall-clock effect is `SlowMs` stalls.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Build an injector from `config`.
    pub fn new(config: FaultConfig) -> FaultInjector {
        let rng = StdRng::seed_from_u64(config.seed);
        FaultInjector {
            config,
            state: Mutex::new(InjectorState {
                rng,
                counts: [0; FAULT_OPS],
                stats: FaultStats::default(),
            }),
        }
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().expect("injector lock").stats
    }

    /// Decide the fate of the next operation of kind `op`. Bumps the
    /// per-kind counter even when the operation is spared, so schedules
    /// line up with operation order regardless of sampling.
    fn decide(&self, op: FaultOp, sampled_scan: bool) -> Option<InjectedFault> {
        let mut state = self.state.lock().expect("injector lock");
        let idx = state.counts[op.index()];
        state.counts[op.index()] += 1;
        state.stats.ops_seen[op.index()] += 1;

        let spared = sampled_scan && self.config.spare_sampled_scans && op == FaultOp::Scan;

        let scheduled = self
            .config
            .schedule
            .iter()
            .find(|s| s.op == op && s.occurrence == idx)
            .map(|s| s.fault);
        let (p, prob_fault) = match op {
            FaultOp::Scan => (self.config.scan_transient_p, InjectedFault::Transient),
            FaultOp::BlockRead => (
                self.config.slow_block_p,
                InjectedFault::SlowMs(self.config.slow_block_ms),
            ),
            FaultOp::SnapshotWrite => (self.config.snapshot_write_p, InjectedFault::Transient),
            FaultOp::SpillWrite => (self.config.spill_write_p, InjectedFault::Transient),
            FaultOp::SpillRead => (
                self.config.slow_spill_read_p,
                InjectedFault::SlowMs(self.config.slow_block_ms),
            ),
        };
        // Always draw so spared scans keep the RNG stream aligned with an
        // unsampled replay of the same config.
        let hit = p > 0.0 && state.rng.random::<f64>() < p;
        let fault = if spared {
            None
        } else {
            scheduled.or(hit.then_some(prob_fault))
        };
        if let Some(f) = fault {
            match f {
                InjectedFault::Transient => state.stats.transient_injected += 1,
                InjectedFault::Unavailable => state.stats.unavailable_injected += 1,
                InjectedFault::SlowMs(_) => state.stats.slow_injected += 1,
            }
        }
        fault
    }

    fn apply(
        &self,
        op: FaultOp,
        fault: Option<InjectedFault>,
        cancel: Option<&CancelToken>,
    ) -> Result<()> {
        match fault {
            None => Ok(()),
            Some(InjectedFault::Transient) => Err(StorageError::Transient {
                operation: op.name().to_string(),
                message: "injected transient fault".to_string(),
            }),
            Some(InjectedFault::Unavailable) => Err(StorageError::Unavailable {
                operation: op.name().to_string(),
                message: "injected outage".to_string(),
            }),
            Some(InjectedFault::SlowMs(ms)) => {
                interruptible_sleep(Duration::from_millis(ms), cancel)
            }
        }
    }

    /// Injection point at the start of a scan. `sampled_scan` is true for
    /// block-sampled scans (the degraded path).
    pub fn on_scan(&self, sampled_scan: bool, cancel: Option<&CancelToken>) -> Result<()> {
        let fault = self.decide(FaultOp::Scan, sampled_scan);
        self.apply(FaultOp::Scan, fault, cancel)
    }

    /// Injection point per block read within a scan.
    pub fn on_block_read(&self, cancel: Option<&CancelToken>) -> Result<()> {
        let fault = self.decide(FaultOp::BlockRead, false);
        self.apply(FaultOp::BlockRead, fault, cancel)
    }

    /// Injection point before a snapshot write commits.
    pub fn on_snapshot_write(&self) -> Result<()> {
        let fault = self.decide(FaultOp::SnapshotWrite, false);
        self.apply(FaultOp::SnapshotWrite, fault, None)
    }

    /// Injection point before each spill partition/run write.
    pub fn on_spill_write(&self) -> Result<()> {
        let fault = self.decide(FaultOp::SpillWrite, false);
        self.apply(FaultOp::SpillWrite, fault, None)
    }

    /// Injection point before each spill partition/run read-back. Slow
    /// spill reads stall cooperatively like slow blocks.
    pub fn on_spill_read(&self, cancel: Option<&CancelToken>) -> Result<()> {
        let fault = self.decide(FaultOp::SpillRead, false);
        self.apply(FaultOp::SpillRead, fault, cancel)
    }
}

/// Sleep in small slices, bailing out with a retryable cancellation error
/// as soon as `cancel` fires. This is what makes slow blocks cooperative:
/// a scan stuck in an injected stall notices its node budget expiring
/// instead of holding its worker for the full stall.
fn interruptible_sleep(total: Duration, cancel: Option<&CancelToken>) -> Result<()> {
    const SLICE: Duration = Duration::from_millis(2);
    let deadline = Instant::now() + total;
    loop {
        if let Some(token) = cancel {
            if token.is_cancelled() {
                return Err(StorageError::Transient {
                    operation: "block read".to_string(),
                    message: "cancelled: node budget exhausted".to_string(),
                });
            }
        }
        let now = Instant::now();
        if now >= deadline {
            return Ok(());
        }
        std::thread::sleep(SLICE.min(deadline - now));
    }
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

/// A cloneable cooperative-cancellation handle.
///
/// The executor arms a deadline before each node attempt; storage
/// operations carry the token (via `ScanOptions::cancel`) and check it at
/// block boundaries and inside injected stalls. Cancellation surfaces as
/// a retryable [`StorageError::Transient`], so a timed-out attempt folds
/// into the normal retry path.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, unarmed token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Cancel explicitly.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Arm a wall-clock deadline `budget` from now (clears any previous
    /// explicit cancellation).
    pub fn arm(&self, budget: Duration) {
        self.inner.cancelled.store(false, Ordering::SeqCst);
        *self.inner.deadline.lock().expect("cancel lock") = Some(Instant::now() + budget);
    }

    /// Clear both the deadline and any explicit cancellation.
    pub fn disarm(&self) {
        self.inner.cancelled.store(false, Ordering::SeqCst);
        *self.inner.deadline.lock().expect("cancel lock") = None;
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        match *self.inner.deadline.lock().expect("cancel lock") {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_injects_nothing() {
        let inj = FaultInjector::new(FaultConfig::disabled());
        for _ in 0..100 {
            inj.on_scan(false, None).unwrap();
            inj.on_block_read(None).unwrap();
            inj.on_snapshot_write().unwrap();
            inj.on_spill_write().unwrap();
            inj.on_spill_read(None).unwrap();
        }
        assert_eq!(inj.stats().total_injected(), 0);
        assert_eq!(inj.stats().ops_seen, [100, 100, 100, 100, 100]);
    }

    #[test]
    fn spill_faults_fire_on_spill_ops_only() {
        let cfg = FaultConfig {
            spill_write_p: 1.0,
            ..FaultConfig::disabled()
        };
        let inj = FaultInjector::new(cfg);
        assert!(inj.on_scan(false, None).is_ok());
        assert!(inj.on_spill_read(None).is_ok());
        let e = inj.on_spill_write().unwrap_err();
        assert!(e.is_retryable());
        assert_eq!(inj.stats().transient_injected, 1);
    }

    #[test]
    fn slow_spill_read_stalls_and_cancels() {
        let cfg =
            FaultConfig::disabled().schedule(FaultOp::SpillRead, 0, InjectedFault::SlowMs(200));
        let inj = FaultInjector::new(cfg);
        let token = CancelToken::new();
        token.arm(Duration::from_millis(20));
        let start = Instant::now();
        let e = inj.on_spill_read(Some(&token)).unwrap_err();
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "not cancelled"
        );
        assert!(e.is_retryable());
        assert_eq!(inj.stats().slow_injected, 1);
    }

    #[test]
    fn schedule_fires_at_exact_occurrence() {
        let cfg = FaultConfig::disabled()
            .schedule(FaultOp::Scan, 2, InjectedFault::Transient)
            .schedule(FaultOp::Scan, 3, InjectedFault::Unavailable);
        let inj = FaultInjector::new(cfg);
        assert!(inj.on_scan(false, None).is_ok());
        assert!(inj.on_scan(false, None).is_ok());
        let e = inj.on_scan(false, None).unwrap_err();
        assert!(matches!(e, StorageError::Transient { .. }));
        assert!(e.is_retryable());
        let e = inj.on_scan(false, None).unwrap_err();
        assert!(matches!(e, StorageError::Unavailable { .. }));
        assert!(!e.is_retryable());
        assert!(inj.on_scan(false, None).is_ok());
        assert_eq!(inj.stats().transient_injected, 1);
        assert_eq!(inj.stats().unavailable_injected, 1);
    }

    #[test]
    fn probability_draws_are_deterministic() {
        let cfg = FaultConfig {
            seed: 9,
            scan_transient_p: 0.5,
            ..FaultConfig::disabled()
        };
        let run = || {
            let inj = FaultInjector::new(cfg.clone());
            (0..64)
                .map(|_| inj.on_scan(false, None).is_err())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn sampled_scans_spared_when_configured() {
        let cfg = FaultConfig {
            scan_transient_p: 1.0,
            spare_sampled_scans: true,
            ..FaultConfig::disabled()
        };
        let inj = FaultInjector::new(cfg);
        assert!(inj.on_scan(false, None).is_err());
        assert!(inj.on_scan(true, None).is_ok());
        assert!(inj.on_scan(false, None).is_err());
    }

    #[test]
    fn slow_block_stalls_and_cancels() {
        let cfg =
            FaultConfig::disabled().schedule(FaultOp::BlockRead, 0, InjectedFault::SlowMs(200));
        let inj = FaultInjector::new(cfg);
        let token = CancelToken::new();
        token.arm(Duration::from_millis(20));
        let start = Instant::now();
        let e = inj.on_block_read(Some(&token)).unwrap_err();
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "not cancelled"
        );
        assert!(e.is_retryable());
        assert_eq!(inj.stats().slow_injected, 1);
    }

    #[test]
    fn cancel_token_semantics() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.disarm();
        assert!(!t.is_cancelled());
        t.arm(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.arm(Duration::from_millis(0));
        assert!(t.is_cancelled());
    }
}
