//! Bridges the storage layer's fault injector into the engine's
//! out-of-core spill paths.
//!
//! The engine's [`dc_engine::SpillHooks`] trait is consulted before every
//! spill-file write and read-back. [`InjectedSpillHooks`] adapts a shared
//! [`FaultInjector`] to that trait, so chaos tests drive transient
//! spill-write failures and slow spill reads from the same seeded
//! schedule as scan faults. Retryable storage faults map to
//! [`std::io::ErrorKind::Interrupted`], which the engine surfaces as a
//! retryable [`dc_engine::EngineError::Spill`] — the resilient executor
//! then retries the node like any other transient failure.

use std::io;
use std::sync::Arc;

use crate::error::StorageError;
use crate::fault::FaultInjector;

/// [`dc_engine::SpillHooks`] implementation backed by a [`FaultInjector`].
#[derive(Debug, Clone)]
pub struct InjectedSpillHooks {
    injector: Arc<FaultInjector>,
}

impl InjectedSpillHooks {
    /// Route the engine's spill I/O through `injector`.
    pub fn new(injector: Arc<FaultInjector>) -> InjectedSpillHooks {
        InjectedSpillHooks { injector }
    }
}

fn to_io(e: StorageError) -> io::Error {
    let kind = if e.is_retryable() {
        io::ErrorKind::Interrupted
    } else {
        io::ErrorKind::Other
    };
    io::Error::new(kind, e.to_string())
}

impl dc_engine::SpillHooks for InjectedSpillHooks {
    fn before_spill_write(&self) -> io::Result<()> {
        self.injector.on_spill_write().map_err(to_io)
    }

    fn before_spill_read(&self) -> io::Result<()> {
        self.injector.on_spill_read(None).map_err(to_io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultOp, InjectedFault};
    use dc_engine::SpillHooks;

    #[test]
    fn transient_spill_write_maps_to_interrupted() {
        let inj = Arc::new(FaultInjector::new(
            FaultConfig::disabled().schedule(FaultOp::SpillWrite, 0, InjectedFault::Transient),
        ));
        let hooks = InjectedSpillHooks::new(Arc::clone(&inj));
        let err = hooks.before_spill_write().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(hooks.before_spill_write().is_ok());
        assert_eq!(inj.stats().transient_injected, 1);
    }

    #[test]
    fn unavailable_spill_read_maps_to_other() {
        let inj = Arc::new(FaultInjector::new(
            FaultConfig::disabled().schedule(FaultOp::SpillRead, 0, InjectedFault::Unavailable),
        ));
        let hooks = InjectedSpillHooks::new(inj);
        let err = hooks.before_spill_read().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
    }

    #[test]
    fn engine_spill_error_retryability_follows_io_kind() {
        let inj = Arc::new(FaultInjector::new(
            FaultConfig::disabled().schedule(FaultOp::SpillWrite, 0, InjectedFault::Transient),
        ));
        let hooks = InjectedSpillHooks::new(inj);
        let io_err = hooks.before_spill_write().unwrap_err();
        let engine_err = dc_engine::governor::spill_error("partition write", io_err);
        assert!(
            matches!(engine_err, dc_engine::EngineError::Spill { retryable: true, .. }),
            "transient injected fault must stay retryable through the engine"
        );
    }
}
