//! # dc-bench — benchmark harness
//!
//! Regenerates every table and figure of the paper. Each `src/bin/*`
//! binary prints one table/figure; `benches/` holds the Criterion timing
//! benches for the performance claims (§2.2 nested-vs-flat, DAG caching,
//! §3 sampling). See DESIGN.md's experiment index for the full mapping.
