//! Developer probe for nested-vs-flat equivalence investigations.
use dc_engine::{AggFunc, AggSpec, Column, Table};
use dc_sql::{execute, generate_sql, ExecStats, QueryStep};
use std::collections::HashMap;
fn main() {
    let mut provider: HashMap<String, Table> = HashMap::new();
    provider.insert(
        "base_table".into(),
        Table::new(vec![
            ("a", Column::from_ints(vec![1, 2, 3])),
            ("b", Column::from_ints(vec![10, 20, 30])),
            ("g", Column::from_strs(vec!["x", "y", "x"])),
        ])
        .unwrap(),
    );
    let steps = vec![
        QueryStep::Scan {
            table: "base_table".into(),
        },
        QueryStep::SelectColumns {
            columns: vec!["a".into(), "g".into()],
        },
        QueryStep::SelectColumns {
            columns: vec!["a".into(), "b".into(), "g".into()],
        },
        QueryStep::Compute {
            keys: vec!["g".into()],
            aggs: vec![AggSpec::new(AggFunc::Count, "a", "n")],
        },
    ];
    for flatten in [false, true] {
        let q = generate_sql(&steps, flatten).unwrap();
        let mut s = ExecStats::default();
        match execute(&q, &provider, &mut s) {
            Ok(t) => println!(
                "flatten={flatten}: OK {} rows | {}",
                t.num_rows(),
                q.to_sql()
            ),
            Err(e) => println!("flatten={flatten}: ERR {e} | {}", q.to_sql()),
        }
    }
}
