//! Developer tool: show generated vs gold programs per zone (oracle model).
use dc_nl::metrics::Zone;
use dc_nl::{Nl2Code, PromptComposer, SimulatedLlm};
use dc_spider::{execution_accuracy, spider_example_library, t_custom, t_spider};

fn main() {
    let oracle = |lib| Nl2Code {
        semantics: dc_spider::domains::pool_semantics(&dc_spider::spider_domains()),
        library: lib,
        composer: PromptComposer::default(),
        model: Box::new(SimulatedLlm::oracle()),
    };
    let sys = oracle(spider_example_library(1));
    for zone in Zone::all() {
        println!("=== {} ===", zone.label());
        for s in t_spider(42).iter().filter(|s| s.zone == zone).take(3) {
            let r = sys.generate(&s.question, &s.schema);
            match r {
                Ok(r) => {
                    let ok = execution_accuracy(s, &r.python, 80);
                    println!(
                        "Q: {}\n  gold: {}\n  gen : {}\n  EA={ok}",
                        s.question, s.gold_program, r.python
                    );
                }
                Err(e) => println!("Q: {}\n  gold: {}\n  ERR : {e}", s.question, s.gold_program),
            }
        }
    }
    println!("=== custom (low,low) ===");
    let csys = Nl2Code {
        semantics: dc_spider::domains::pool_semantics(&dc_spider::custom_domains()),
        library: dc_nl::ExampleLibrary::builtin(),
        composer: PromptComposer::default(),
        model: Box::new(SimulatedLlm::oracle()),
    };
    for s in t_custom(42)
        .iter()
        .filter(|s| s.zone == Zone::LowLow)
        .take(3)
    {
        match csys.generate(&s.question, &s.schema) {
            Ok(r) => {
                let ok = execution_accuracy(s, &r.python, 80);
                println!(
                    "Q: {}\n  gold: {}\n  gen : {}\n  EA={ok}",
                    s.question, s.gold_program, r.python
                );
            }
            Err(e) => println!("Q: {}\n  gold: {}\n  ERR : {e}", s.question, s.gold_program),
        }
    }
}
