//! Multi-tenant serving under a noisy neighbor, emitted as
//! machine-readable JSON (`BENCH_serve.json`).
//!
//! The workload models a platform hosting one shared warehouse for many
//! chat tenants. A fleet of *interactive* tenants runs short
//! filter+aggregate questions closed-loop; one *noisy* tenant loops
//! million-row join pipelines. Three phases:
//!
//! * **baseline** — the interactive fleet alone. p50/p99 here is the
//!   no-neighbor reference.
//! * **contended** — the same fleet plus the noisy tenant. The serving
//!   layer's admission control, weighted round-robin, and time-sliced
//!   preemption are what keep the interactive p99 within the paper-style
//!   "no starvation" bar: **p99(contended) ≤ 3 × p99(baseline)**.
//! * **overload** — queue depths and scan budgets shrunk so admission
//!   control actually sheds: every over-capacity / over-budget
//!   submission must be answered with a typed rejection, and every
//!   admitted job must still be answered exactly once.
//!
//! `--smoke` shrinks the tables and fleet and gates only the
//! correctness/accounting invariants (latency needs a quiet machine).
//! `--chaos --seed N` additionally injects seeded transient scan faults
//! and slow blocks into the shared catalog, proving the invariants hold
//! while the resilient executor absorbs storage failures mid-slice.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dc_collab::EnvHandle;
use dc_engine::{AggFunc, AggSpec, Column, Expr, JoinType, Table};
use dc_serve::{
    Request, ReservationMode, ServeConfig, ServeError, ServiceStats, SessionService, TenantConfig,
};
use dc_skills::{Env, SkillCall};
use dc_storage::{BudgetConfig, CloudDatabase, FaultConfig, FaultInjector, Pricing};

/// Workload sizing, switched by `--smoke`.
#[derive(Clone, Copy)]
struct Scale {
    event_rows: usize,
    ticket_rows: usize,
    interactive_tenants: usize,
    /// Closed-loop iterations per interactive tenant, per phase.
    iterations: usize,
}

const FULL: Scale = Scale {
    event_rows: 1_000_000,
    ticket_rows: 30_000,
    interactive_tenants: 31,
    iterations: 6,
};

const SMOKE: Scale = Scale {
    event_rows: 40_000,
    ticket_rows: 2_000,
    interactive_tenants: 7,
    iterations: 3,
};

const DIM_ROWS: usize = 1_000;

fn events_table(n: usize) -> Table {
    Table::new(vec![
        ("x", Column::from_ints((0..n as i64).collect())),
        (
            "gid",
            Column::from_ints((0..n).map(|i| (i % DIM_ROWS) as i64).collect::<Vec<_>>()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("events table")
}

fn dims_table() -> Table {
    Table::new(vec![
        ("gid", Column::from_ints((0..DIM_ROWS as i64).collect())),
        (
            "label",
            Column::from_strs(
                (0..DIM_ROWS)
                    .map(|i| format!("seg{}", i % 20))
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
    .expect("dims table")
}

fn tickets_table(n: usize) -> Table {
    Table::new(vec![
        (
            "priority",
            Column::from_ints((0..n).map(|i| (i % 100) as i64).collect::<Vec<_>>()),
        ),
        (
            "status",
            Column::from_strs((0..n).map(|i| format!("s{}", i % 6)).collect::<Vec<_>>()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 31) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("tickets table")
}

/// Day-clustered log: `day` rises monotonically, so a blocked layout
/// gives zone maps that genuinely prune day-range filters (unlike
/// `tickets.priority`, which cycles inside every block). This is the
/// table the estimator-based admission phase scans.
fn history_table(n: usize) -> Table {
    Table::new(vec![
        (
            "day",
            Column::from_ints((0..n).map(|i| (i * 100 / n) as i64).collect::<Vec<_>>()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 53) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("history table")
}

/// One shared world per phase: a consumption-priced warehouse with the
/// big events table, the small join dimension, and the interactive
/// tickets table. `chaos_seed` arms seeded fault injection.
fn build_world(scale: Scale, chaos_seed: Option<u64>) -> EnvHandle {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("warehouse", Pricing::default_cloud());
    db.create_table("events", &events_table(scale.event_rows))
        .expect("create events");
    db.create_table("dims", &dims_table()).expect("create dims");
    db.create_table("tickets", &tickets_table(scale.ticket_rows))
        .expect("create tickets");
    let history_rows = (scale.event_rows / 10).max(100);
    db.create_table_with_blocks(
        "history",
        &history_table(history_rows),
        (history_rows / 50).max(1),
    )
    .expect("create history");
    env.catalog.add_database(db).expect("add db");
    if let Some(seed) = chaos_seed {
        let injector = Arc::new(FaultInjector::new(FaultConfig {
            seed,
            scan_transient_p: 0.20,
            slow_block_p: 0.05,
            slow_block_ms: 1,
            ..FaultConfig::disabled()
        }));
        env.catalog.set_fault_injector(&injector);
    }
    EnvHandle::new(env)
}

/// Interactive question: short filter + grouped count over tickets.
fn interactive_request() -> Request {
    Request::new(vec![
        SkillCall::LoadTable {
            database: "warehouse".into(),
            table: "tickets".into(),
        },
        SkillCall::KeepRows {
            predicate: Expr::col("priority").gt(Expr::lit(50i64)),
        },
        SkillCall::Compute {
            aggs: vec![AggSpec::count_records("n")],
            for_each: vec!["status".into()],
        },
    ])
}

/// Budget-fleet question: a selective day-range slice of the clustered
/// history log. Submit-time pushdown fuses the filter into the load, so
/// the estimator's reservation is the ~10% of blocks that survive
/// pruning, while full-byte reservations still price the whole table.
fn budget_fleet_request() -> Request {
    Request::new(vec![
        SkillCall::LoadTable {
            database: "warehouse".into(),
            table: "history".into(),
        },
        SkillCall::KeepRows {
            predicate: Expr::col("day").ge(Expr::lit(90i64)),
        },
        SkillCall::Compute {
            aggs: vec![AggSpec::count_records("n")],
            for_each: vec![],
        },
    ])
}

/// Noisy pipeline: load the whole events table, join it against the
/// dimension (bound once per session under the name `dims`), aggregate.
fn noisy_join_request() -> Request {
    Request::new(vec![
        SkillCall::LoadTable {
            database: "warehouse".into(),
            table: "events".into(),
        },
        SkillCall::Join {
            other: "dims".into(),
            left_on: vec!["gid".into()],
            right_on: vec!["gid".into()],
            how: JoinType::Inner,
        },
        SkillCall::Compute {
            aggs: vec![AggSpec::new(AggFunc::Sum, "v", "total")],
            for_each: vec!["label".into()],
        },
    ])
}

fn noisy_prelude_request() -> Request {
    Request::new(vec![SkillCall::LoadTable {
        database: "warehouse".into(),
        table: "dims".into(),
    }])
    .named("dims")
}

struct PhaseOut {
    /// Interactive request wall latencies, milliseconds.
    lat_ms: Vec<f64>,
    p50_ms: f64,
    p99_ms: f64,
    /// Interactive completions per second of phase wall time.
    jobs_per_sec: f64,
    noisy_iterations: u64,
    noisy_failures: u64,
    stats: ServiceStats,
    violations: Vec<String>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Run one phase: `scale.interactive_tenants` closed-loop clients, plus
/// (optionally) one noisy tenant looping heavy joins until the clients
/// finish. Returns latency stats and invariant violations.
fn run_phase(scale: Scale, with_noisy: bool, chaos_seed: Option<u64>) -> PhaseOut {
    let env = build_world(scale, chaos_seed);
    let service = SessionService::start(
        env,
        ServeConfig {
            workers: 4,
            // Generous in the measured phases: admission never sheds, so
            // latency reflects scheduling, not rejection-and-retry.
            global_queue_limit: 4096,
            ..ServeConfig::default()
        },
    );
    let tenants: Vec<String> = (0..scale.interactive_tenants)
        .map(|t| format!("analyst-{t}"))
        .collect();
    for name in &tenants {
        service
            .register_tenant(name, TenantConfig::new().queue_limit(64))
            .unwrap();
    }
    if with_noisy {
        service
            .register_tenant("noisy", TenantConfig::new().queue_limit(8))
            .unwrap();
        let prelude = service.run("noisy", noisy_prelude_request());
        assert!(prelude.outcome.is_ok(), "{:?}", prelude.outcome);
    }

    let stop = AtomicBool::new(false);
    let noisy_iterations = AtomicU64::new(0);
    let noisy_failures = AtomicU64::new(0);
    let mut violations: Vec<String> = Vec::new();
    let started = Instant::now();
    let mut lat_ms: Vec<f64> = Vec::new();
    let mut interactive_wall = 0.0f64;

    let service_ref = &service;
    let stop_ref = &stop;
    std::thread::scope(|scope| {
        let noisy_iterations = &noisy_iterations;
        let noisy_failures = &noisy_failures;
        let noisy_thread = with_noisy.then(|| {
            scope.spawn(move || {
                while !stop_ref.load(Ordering::Relaxed) {
                    let result = service_ref.run("noisy", noisy_join_request());
                    match result.outcome {
                        Ok(_) => {
                            noisy_iterations.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::ShuttingDown) => break,
                        // Under chaos the join can exhaust its retries or
                        // preemption allowance — typed, not lost.
                        Err(_) => {
                            noisy_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        });
        let clients: Vec<_> = tenants
            .iter()
            .map(|name| {
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(scale.iterations);
                    let mut bad = Vec::new();
                    for i in 0..scale.iterations {
                        let result = service_ref.run(name, interactive_request());
                        match result.outcome {
                            Ok(_) => lats.push(result.wall.as_secs_f64() * 1e3),
                            Err(err) => bad.push(format!(
                                "{name} iteration {i}: interactive job failed: {err}"
                            )),
                        }
                    }
                    (lats, bad)
                })
            })
            .collect();
        for client in clients {
            let (lats, bad) = client.join().expect("client thread");
            lat_ms.extend(lats);
            violations.extend(bad);
        }
        interactive_wall = started.elapsed().as_secs_f64();
        // With the fleet gone the noisy tenant owns the pool
        // (work-conserving fair share): let it bank at least one full
        // pipeline so "fair" provably doesn't mean "starved".
        if with_noisy {
            let drain_deadline = Instant::now() + std::time::Duration::from_secs(60);
            while noisy_iterations.load(Ordering::Relaxed) == 0
                && noisy_failures.load(Ordering::Relaxed) < 5
                && Instant::now() < drain_deadline
            {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
        stop.store(true, Ordering::Relaxed);
        if let Some(noisy) = noisy_thread {
            noisy.join().expect("noisy thread");
        }
    });

    let wall = interactive_wall;
    let stats = service.stats();
    // Exactly-once accounting: every admitted job got an answer (the
    // closed loops waited on each one), none rejected in measured phases.
    if stats.admitted != stats.answered() {
        violations.push(format!(
            "lost jobs: admitted {} != answered {}",
            stats.admitted,
            stats.answered()
        ));
    }
    if stats.rejected_queue + stats.rejected_budget != 0 {
        violations.push(format!(
            "unexpected rejections in measured phase: {stats:?}"
        ));
    }
    let expected = (scale.interactive_tenants * scale.iterations) as u64;
    let completed_interactive = lat_ms.len() as u64;
    if chaos_seed.is_none() && completed_interactive != expected {
        violations.push(format!(
            "interactive completions {completed_interactive} != submitted {expected}"
        ));
    }
    service.shutdown();

    let mut sorted = lat_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PhaseOut {
        p50_ms: percentile(&sorted, 0.50),
        p99_ms: percentile(&sorted, 0.99),
        jobs_per_sec: completed_interactive as f64 / wall,
        noisy_iterations: noisy_iterations.load(Ordering::Relaxed),
        noisy_failures: noisy_failures.load(Ordering::Relaxed),
        stats,
        violations,
        lat_ms,
    }
}

struct OverloadOut {
    rejected_budget: u64,
    rejected_queue: u64,
    shed_at_shutdown: u64,
    stats: ServiceStats,
    violations: Vec<String>,
}

/// Overload + budget phase: a tiny-budget tenant and a burst tenant with
/// a shallow queue, submitted open-loop. Every rejection must be typed;
/// every admitted job must still be answered.
fn run_overload(scale: Scale, chaos_seed: Option<u64>) -> OverloadOut {
    let env = build_world(scale, chaos_seed);
    let events_bytes = env.with(|env| {
        env.catalog
            .database("warehouse")
            .unwrap()
            .table("events")
            .unwrap()
            .total_bytes()
    });
    let service = SessionService::start(
        env,
        ServeConfig {
            workers: 2,
            global_queue_limit: 16,
            ..ServeConfig::default()
        },
    );
    // Budget covers roughly three event scans, no refill: the fourth
    // submission must bounce with a typed budget rejection.
    service
        .register_tenant(
            "metered",
            TenantConfig::new()
                .queue_limit(16)
                .budget(BudgetConfig::fixed(events_bytes * 3 + events_bytes / 2)),
        )
        .unwrap();
    service
        .register_tenant("burst", TenantConfig::new().queue_limit(4))
        .unwrap();

    let mut violations = Vec::new();
    let mut rejected_budget = 0u64;
    let mut rejected_queue = 0u64;
    let mut handles = Vec::new();

    // Open-loop: 8 metered scans (budget admits ~3 before settlement
    // refunds trickle back) and 40 burst questions against depth-4/16
    // queues drained by 2 workers.
    for i in 0..8 {
        match service.submit(
            "metered",
            Request::new(vec![SkillCall::LoadTable {
                database: "warehouse".into(),
                table: "events".into(),
            }]),
        ) {
            Ok(h) => handles.push(h),
            Err(ServeError::Rejected { reason, .. }) => {
                rejected_budget += 1;
                if reason != dc_serve::RejectReason::BudgetExhausted {
                    violations.push(format!("metered submit {i}: wrong reason {reason:?}"));
                }
            }
            Err(other) => violations.push(format!("metered submit {i}: untyped: {other}")),
        }
    }
    for i in 0..40 {
        match service.submit("burst", interactive_request()) {
            Ok(h) => handles.push(h),
            Err(ServeError::Rejected { retry_after, .. }) => {
                rejected_queue += 1;
                if retry_after.is_none() {
                    violations.push(format!("burst submit {i}: queue rejection without hint"));
                }
            }
            Err(other) => violations.push(format!("burst submit {i}: untyped: {other}")),
        }
    }

    // Every admitted handle resolves with some typed answer.
    for handle in handles {
        let result = handle.wait();
        if let Err(err) = &result.outcome {
            match err {
                ServeError::Rejected { .. }
                | ServeError::Failed { .. }
                | ServeError::Evicted { .. }
                | ServeError::ShuttingDown => {}
                other => violations.push(format!("admitted job answered oddly: {other}")),
            }
        }
    }
    let stats = service.stats();
    if stats.admitted != stats.answered() {
        violations.push(format!(
            "overload lost jobs: admitted {} != answered {}",
            stats.admitted,
            stats.answered()
        ));
    }
    if rejected_budget == 0 {
        violations.push("no budget rejection observed (budget too large?)".into());
    }
    if rejected_queue == 0 {
        violations.push("no queue rejection observed (queues too deep?)".into());
    }
    if let Some((_avail, deposited, charged)) = service.budget_state("metered") {
        if charged > deposited {
            violations.push(format!(
                "budget overcharge: charged {charged} > deposited {deposited}"
            ));
        }
    }
    let shed = stats.shed_at_shutdown;
    service.shutdown();
    OverloadOut {
        rejected_budget,
        rejected_queue,
        shed_at_shutdown: shed,
        stats,
        violations,
    }
}

struct BudgetFleetOut {
    admitted: u64,
    rejected_budget: u64,
    violations: Vec<String>,
}

/// Budget-constrained interactive fleet: one tenant whose fixed deposit
/// is *smaller than a single full history scan*, submitting selective
/// day-range questions open-loop. Under [`ReservationMode::FullBytes`]
/// every submission is dead on arrival; under the default
/// [`ReservationMode::Estimated`] the analyzer's pruned-scan bound fits
/// several jobs into the same deposit. The strict `Estimated > FullBytes`
/// admission comparison in `main` is the PR's acceptance gate.
fn run_budget_fleet(
    scale: Scale,
    mode: ReservationMode,
    chaos_seed: Option<u64>,
) -> BudgetFleetOut {
    let env = build_world(scale, chaos_seed);
    let history_bytes = env.with(|env| {
        env.catalog
            .database("warehouse")
            .unwrap()
            .table("history")
            .unwrap()
            .total_bytes()
    });
    let service = SessionService::start(
        env,
        ServeConfig {
            workers: 2,
            global_queue_limit: 64,
            reservation: mode,
            ..ServeConfig::default()
        },
    );
    service
        .register_tenant(
            "capped",
            TenantConfig::new()
                .queue_limit(32)
                .budget(BudgetConfig::fixed(history_bytes * 6 / 10)),
        )
        .unwrap();

    let mut violations = Vec::new();
    let mut rejected_budget = 0u64;
    let mut handles = Vec::new();
    for i in 0..10 {
        match service.submit("capped", budget_fleet_request()) {
            Ok(h) => handles.push(h),
            Err(ServeError::Rejected { reason, .. }) => {
                if reason == dc_serve::RejectReason::BudgetExhausted {
                    rejected_budget += 1;
                } else {
                    violations.push(format!("capped submit {i}: wrong reason {reason:?}"));
                }
            }
            Err(other) => violations.push(format!("capped submit {i}: untyped: {other}")),
        }
    }
    let admitted = handles.len() as u64;
    // Exactly-once: every admitted job resolves with a typed answer.
    for handle in handles {
        let result = handle.wait();
        if let Err(err) = &result.outcome {
            match err {
                ServeError::Failed { .. }
                | ServeError::Evicted { .. }
                | ServeError::ShuttingDown => {}
                other => violations.push(format!("budget-fleet job answered oddly: {other}")),
            }
        }
    }
    let stats = service.stats();
    if stats.admitted != stats.answered() {
        violations.push(format!(
            "budget fleet lost jobs: admitted {} != answered {}",
            stats.admitted,
            stats.answered()
        ));
    }
    if let Some((_avail, deposited, charged)) = service.budget_state("capped") {
        if charged > deposited {
            violations.push(format!(
                "budget fleet overcharge: charged {charged} > deposited {deposited}"
            ));
        }
    }
    service.shutdown();
    BudgetFleetOut {
        admitted,
        rejected_budget,
        violations,
    }
}

fn phase_json(name: &str, p: &PhaseOut) -> String {
    format!(
        "  {{\"phase\": \"{}\", \"interactive_jobs\": {}, \"p50_ms\": {:.3}, \
         \"p99_ms\": {:.3}, \"jobs_per_sec\": {:.1}, \"noisy_iterations\": {}, \
         \"noisy_failures\": {}, \"preemptions\": {}, \"admitted\": {}, \"answered\": {}}}",
        name,
        p.lat_ms.len(),
        p.p50_ms,
        p.p99_ms,
        p.jobs_per_sec,
        p.noisy_iterations,
        p.noisy_failures,
        p.stats.preemptions,
        p.stats.admitted,
        p.stats.answered(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let chaos = args.iter().any(|a| a == "--chaos");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(7);
    let chaos_seed = chaos.then_some(seed);
    let scale = if smoke { SMOKE } else { FULL };

    let started = Instant::now();
    let baseline = run_phase(scale, false, chaos_seed);
    let contended = run_phase(scale, true, chaos_seed);
    let overload = run_overload(scale, chaos_seed);
    let fleet_full = run_budget_fleet(scale, ReservationMode::FullBytes, chaos_seed);
    let fleet_est = run_budget_fleet(scale, ReservationMode::Estimated, chaos_seed);

    let mut violations = Vec::new();
    violations.extend(baseline.violations.iter().cloned());
    violations.extend(contended.violations.iter().cloned());
    violations.extend(overload.violations.iter().cloned());
    violations.extend(fleet_full.violations.iter().cloned());
    violations.extend(fleet_est.violations.iter().cloned());
    if fleet_est.admitted <= fleet_full.admitted {
        violations.push(format!(
            "estimator-based reservations admitted {} jobs vs {} under full-byte \
             reservations (must be strictly more)",
            fleet_est.admitted, fleet_full.admitted
        ));
    }

    let ratio = if baseline.p99_ms > 0.0 {
        contended.p99_ms / baseline.p99_ms
    } else {
        f64::INFINITY
    };
    println!(
        "baseline : p50 {:>8.2} ms  p99 {:>8.2} ms  {:>7.1} jobs/s",
        baseline.p50_ms, baseline.p99_ms, baseline.jobs_per_sec
    );
    println!(
        "contended: p50 {:>8.2} ms  p99 {:>8.2} ms  {:>7.1} jobs/s  ({} noisy joins, {} preemptions)",
        contended.p50_ms,
        contended.p99_ms,
        contended.jobs_per_sec,
        contended.noisy_iterations,
        contended.stats.preemptions,
    );
    println!("noisy-neighbor p99 ratio: {ratio:.2}x (bar: 3x)");
    println!(
        "overload : {} budget rejections, {} queue rejections, {} shed at shutdown, {} admitted all answered",
        overload.rejected_budget,
        overload.rejected_queue,
        overload.shed_at_shutdown,
        overload.stats.admitted,
    );
    println!(
        "budget fleet: estimated reservations admitted {}/10 (rejected {}), \
         full-byte admitted {}/10 (rejected {})",
        fleet_est.admitted,
        fleet_est.rejected_budget,
        fleet_full.admitted,
        fleet_full.rejected_budget,
    );

    if !smoke {
        let json = format!(
            "{{\n\"scale\": {{\"event_rows\": {}, \"ticket_rows\": {}, \
             \"interactive_tenants\": {}, \"iterations\": {}}},\n\
             \"chaos_seed\": {},\n\"phases\": [\n{},\n{}\n],\n\
             \"noisy_p99_ratio\": {:.3},\n\
             \"overload\": {{\"rejected_budget\": {}, \"rejected_queue\": {}, \
             \"shed_at_shutdown\": {}, \"admitted\": {}, \"answered\": {}}},\n\
             \"budget_fleet\": {{\"estimated_admitted\": {}, \"estimated_rejected\": {}, \
             \"full_bytes_admitted\": {}, \"full_bytes_rejected\": {}}},\n\
             \"total_wall_s\": {:.2}\n}}\n",
            scale.event_rows,
            scale.ticket_rows,
            scale.interactive_tenants,
            scale.iterations,
            chaos_seed.map_or("null".to_string(), |s| s.to_string()),
            phase_json("baseline", &baseline),
            phase_json("contended", &contended),
            ratio,
            overload.rejected_budget,
            overload.rejected_queue,
            overload.shed_at_shutdown,
            overload.stats.admitted,
            overload.stats.answered(),
            fleet_est.admitted,
            fleet_est.rejected_budget,
            fleet_full.admitted,
            fleet_full.rejected_budget,
            started.elapsed().as_secs_f64(),
        );
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }

    if !violations.is_empty() {
        eprintln!("serve bench FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }

    // The latency fairness bar only binds in the full timed run on a
    // quiet machine; smoke/chaos runs gate the correctness invariants
    // above (exactly-once answers, typed rejections, budget accounting).
    if !smoke && !chaos {
        assert!(
            ratio <= 3.0,
            "interactive p99 under a noisy neighbor is {ratio:.2}x baseline (bar: 3x)"
        );
        assert!(
            contended.noisy_iterations >= 1,
            "the noisy tenant must actually make progress"
        );
    }
    println!("serve bench ok");
}
