//! Regenerates **Table 2**: mean execution accuracy (EA) on T_spider and
//! T_custom, grouped by misalignment (M) and degree of composition (C).
//!
//! Paper values for reference:
//!
//! | (M, C)       | T_spider | T_custom |
//! |--------------|----------|----------|
//! | (low, low)   | 0.84     | 0.65     |
//! | (low, high)  | 0.76     | 0.59     |
//! | (high, low)  | 0.80     | 0.73     |
//! | (high, high) | 0.68     | 0.25     |
//! | Mean         | 0.77     | 0.57     |
//!
//! Absolute agreement is not expected (the generator is a simulated LLM —
//! see DESIGN.md); the *shape* is the reproduction target: accuracy falls
//! with both M and C, complexity hurts more than misalignment, T_custom
//! trails T_spider everywhere and collapses at (high, high).

use dc_nl::metrics::Zone;
use dc_spider::{custom_system, evaluate, spider_system, t_custom, t_spider, ZoneAccuracy};

const ROWS: usize = 80;
const PAPER_SPIDER: [(Zone, f64); 4] = [
    (Zone::LowLow, 0.84),
    (Zone::LowHigh, 0.76),
    (Zone::HighLow, 0.80),
    (Zone::HighHigh, 0.68),
];
const PAPER_CUSTOM: [(Zone, f64); 4] = [
    (Zone::LowLow, 0.65),
    (Zone::LowHigh, 0.59),
    (Zone::HighLow, 0.73),
    (Zone::HighHigh, 0.25),
];

fn mean(rows: &[ZoneAccuracy]) -> f64 {
    let total: usize = rows.iter().map(|r| r.samples).sum();
    let ok: f64 = rows.iter().map(|r| r.mean_ea * r.samples as f64).sum();
    if total == 0 {
        0.0
    } else {
        ok / total as f64
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    println!("Table 2: mean execution accuracy (EA) by (M, C) zone");
    println!("seed = {seed}, table rows = {ROWS}\n");

    let spider_samples = t_spider(seed);
    let spider = evaluate(&spider_samples, &spider_system(seed), ROWS);
    let custom_samples = t_custom(seed);
    let custom = evaluate(&custom_samples, &custom_system(seed), ROWS);

    println!(
        "{:<14} {:>8} {:>9} {:>9}   {:>8} {:>9} {:>9}",
        "(M, C)", "n_spdr", "EA_spdr", "paper", "n_cust", "EA_cust", "paper"
    );
    for zone in Zone::all() {
        let s = spider.iter().find(|r| r.zone == zone).expect("zone");
        let c = custom.iter().find(|r| r.zone == zone).expect("zone");
        let ps = PAPER_SPIDER
            .iter()
            .find(|(z, _)| *z == zone)
            .expect("zone")
            .1;
        let pc = PAPER_CUSTOM
            .iter()
            .find(|(z, _)| *z == zone)
            .expect("zone")
            .1;
        println!(
            "{:<14} {:>8} {:>9.2} {:>9.2}   {:>8} {:>9.2} {:>9.2}",
            zone.label(),
            s.samples,
            s.mean_ea,
            ps,
            c.samples,
            c.mean_ea,
            pc
        );
    }
    println!(
        "{:<14} {:>8} {:>9.2} {:>9.2}   {:>8} {:>9.2} {:>9.2}",
        "Mean",
        spider_samples.len(),
        mean(&spider),
        0.77,
        custom_samples.len(),
        mean(&custom),
        0.57
    );

    // Shape checks the paper's prose makes explicitly.
    let ea = |rows: &[ZoneAccuracy], z: Zone| {
        rows.iter()
            .find(|r| r.zone == z)
            .map(|r| r.mean_ea)
            .unwrap_or(0.0)
    };
    println!("\nshape checks:");
    println!(
        "  (high,high) worst on both sets: {}",
        ea(&spider, Zone::HighHigh) <= ea(&spider, Zone::LowLow)
            && ea(&custom, Zone::HighHigh) <= ea(&custom, Zone::LowLow)
    );
    println!(
        "  complexity hurts more than misalignment (spider): {}",
        ea(&spider, Zone::LowHigh) <= ea(&spider, Zone::HighLow)
    );
    println!(
        "  T_custom <= T_spider overall: {}",
        mean(&custom) <= mean(&spider)
    );
}
