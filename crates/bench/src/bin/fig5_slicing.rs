//! Regenerates **Figure 5**: "a complex exploratory recipe on the left
//! can be sliced down to a simple linear one automatically." Builds
//! randomized exploratory sessions (dead branches, peeks, mergeable
//! steps) and reports how much slicing shrinks the recipe saved with the
//! final artifact.

use dc_engine::{Expr, Value};
use dc_skills::{slice, SkillCall, SkillDag};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Build one exploratory session of roughly `steps` skill calls: a main
/// analysis chain interleaved with peeks, dead-end branches, and repeated
/// narrowing steps — the Figure 5 left-hand tangle.
fn exploratory_session(steps: usize, rng: &mut StdRng) -> (SkillDag, usize) {
    let mut dag = SkillDag::new();
    let mut current = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "events".into(),
            },
            vec![],
        )
        .expect("load");
    for i in 0..steps {
        match rng.random_range(0..10u32) {
            // Exploration peeks (pass-through).
            0 | 1 => {
                current = dag
                    .add(SkillCall::ShowHead { n: 5 }, vec![current])
                    .expect("peek");
            }
            2 => {
                current = dag
                    .add(SkillCall::DescribeDataset, vec![current])
                    .expect("describe");
            }
            // Dead-end branch: tried something, went back.
            3 | 4 => {
                let dead = dag
                    .add(
                        SkillCall::Sort {
                            keys: vec![(format!("col{}", rng.random_range(0..5)), false)],
                        },
                        vec![current],
                    )
                    .expect("dead sort");
                let _ = dag
                    .add(SkillCall::Limit { n: 10 }, vec![dead])
                    .expect("dead limit");
                // current unchanged: the user backtracked.
            }
            // Narrowing filters (merge-able when adjacent).
            5 | 6 => {
                current = dag
                    .add(
                        SkillCall::KeepRows {
                            predicate: Expr::col(format!("col{}", rng.random_range(0..5)))
                                .gt(Expr::lit(rng.random_range(0i64..100))),
                        },
                        vec![current],
                    )
                    .expect("filter");
            }
            // Repeated limits.
            7 => {
                current = dag
                    .add(
                        SkillCall::Limit {
                            n: rng.random_range(10..1000),
                        },
                        vec![current],
                    )
                    .expect("limit");
            }
            // Column fiddling.
            8 => {
                current = dag
                    .add(
                        SkillCall::CreateConstantColumn {
                            name: format!("note{i}"),
                            value: Value::Str("wip".into()),
                        },
                        vec![current],
                    )
                    .expect("column");
            }
            _ => {
                current = dag
                    .add(
                        SkillCall::Sort {
                            keys: vec![("col0".to_string(), true)],
                        },
                        vec![current],
                    )
                    .expect("sort");
            }
        }
    }
    (dag, current)
}

fn main() {
    println!("Figure 5: slicing exploratory recipes down to linear ones\n");
    println!(
        "{:>8} {:>10} {:>6} {:>12} {:>8} {:>8} {:>10}",
        "session", "original", "dead", "passthrough", "merged", "final", "reduction"
    );
    let mut rng = StdRng::seed_from_u64(7);
    let mut total_orig = 0usize;
    let mut total_final = 0usize;
    for session in 1..=10 {
        let steps = 10 + session * 3;
        let (dag, target) = exploratory_session(steps, &mut rng);
        let (_sliced, stats) = slice(&dag, target).expect("slice succeeds");
        total_orig += stats.original_nodes;
        total_final += stats.final_nodes;
        println!(
            "{:>8} {:>10} {:>6} {:>12} {:>8} {:>8} {:>9.0}%",
            session,
            stats.original_nodes,
            stats.dead_removed,
            stats.passthrough_removed,
            stats.merged,
            stats.final_nodes,
            100.0 * (1.0 - stats.final_nodes as f64 / stats.original_nodes as f64)
        );
    }
    println!(
        "\noverall: {total_orig} exploratory steps -> {total_final} recipe steps ({:.0}% smaller)",
        100.0 * (1.0 - total_final as f64 / total_orig as f64)
    );
    assert!(
        total_final * 2 < total_orig,
        "slicing should at least halve exploratory recipes"
    );
    println!("claim check: complex exploratory DAGs slice to simple linear recipes: OK");
}
