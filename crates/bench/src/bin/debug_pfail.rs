//! Developer tool: mean failure probability per zone (for calibration).
use dc_nl::metrics::Zone;
use dc_nl::{Nl2Code, PromptComposer, SimulatedLlm};
use dc_spider::domains::pool_semantics;
use dc_spider::{spider_example_library, t_custom, t_spider};

fn main() {
    let model = SimulatedLlm::new(42);
    let sets: Vec<(&str, Vec<dc_spider::Sample>, Nl2Code)> = vec![
        (
            "spider",
            t_spider(42),
            Nl2Code {
                semantics: pool_semantics(&dc_spider::spider_domains()),
                library: spider_example_library(42),
                composer: PromptComposer::default(),
                model: Box::new(SimulatedLlm::oracle()),
            },
        ),
        (
            "custom",
            t_custom(42),
            Nl2Code {
                semantics: pool_semantics(&dc_spider::custom_domains()),
                library: dc_nl::ExampleLibrary::builtin(),
                composer: PromptComposer::default(),
                model: Box::new(SimulatedLlm::oracle()),
            },
        ),
    ];
    for (name, samples, sys) in sets {
        println!("{name}:");
        for zone in Zone::all() {
            let mut n = 0;
            let mut p_sum = 0.0;
            for s in samples.iter().filter(|s| s.zone == zone) {
                let prompt =
                    sys.composer
                        .compose(&s.question, &s.schema, &sys.semantics, &sys.library);
                let code = sys.model.complete(&prompt);
                p_sum += model.failure_probability(&prompt, &code);
                n += 1;
            }
            println!(
                "  {} n={} mean_p_fail={:.3}",
                zone.label(),
                n,
                p_sum / n as f64
            );
        }
    }
}
