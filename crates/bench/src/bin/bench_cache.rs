//! Cross-session materialized-cache speedup on an overlapping
//! many-session workload, emitted as machine-readable JSON
//! (`BENCH_cache.json`).
//!
//! The workload models the platform's collaborative steady state: many
//! sessions, each with its own executor (cold per-run cache), all asking
//! overlapping questions of the same warehouse table. `cold` runs the
//! whole fleet without a shared cache, so every session re-scans and
//! recomputes; `warm` hands every session one `MaterializedCache`, so
//! the first session materializes each sub-DAG and the rest hit it
//! zero-copy at zero charged scan bytes.
//!
//! `--smoke` skips timing and gates correctness: warm hits must return
//! byte-identical rows to the cold computation while charging 0
//! additional scan bytes against the catalog meter.

use std::sync::Arc;
use std::time::Instant;

use dc_engine::{AggFunc, AggSpec, Column, Expr, Table};
use dc_skills::{Env, Executor, MaterializedCache, SkillCall, SkillDag, SkillOutput};
use dc_storage::{CloudDatabase, Pricing};

const ROWS: usize = 1_000_000;
const SESSIONS: usize = 32;

fn warehouse_table(n: usize) -> Table {
    Table::new(vec![
        ("x", Column::from_ints((0..n as i64).collect())),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 50)).collect::<Vec<_>>()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("table builds")
}

fn build_env(rows: usize, shared: Option<&Arc<MaterializedCache>>) -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("warehouse", Pricing::default_cloud());
    db.create_table_with_blocks("events", &warehouse_table(rows), 8192)
        .expect("create events");
    env.catalog.add_database(db).expect("add db");
    env.shared_cache = shared.map(Arc::clone);
    env
}

fn load(dag: &mut SkillDag) -> usize {
    dag.add(
        SkillCall::LoadTable {
            database: "warehouse".into(),
            table: "events".into(),
        },
        vec![],
    )
    .expect("load node")
}

fn compute(dag: &mut SkillDag, input: usize, aggs: Vec<AggSpec>) -> usize {
    dag.add(
        SkillCall::Compute {
            aggs,
            for_each: vec!["k".into()],
        },
        vec![input],
    )
    .expect("compute node")
}

/// The overlapping question set every session asks. Each pipeline ends
/// in a grouped aggregate, so outputs are small while the intermediate
/// scans and filters carry the cost.
fn pipelines(rows: usize) -> Vec<(&'static str, SkillDag, usize)> {
    let mut out = Vec::new();

    let mut dag = SkillDag::new();
    let l = load(&mut dag);
    let c = compute(
        &mut dag,
        l,
        vec![
            AggSpec::new(AggFunc::Sum, "v", "total"),
            AggSpec::count_records("n"),
        ],
    );
    out.push(("agg_by_key", dag, c));

    let mut dag = SkillDag::new();
    let l = load(&mut dag);
    let f = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").ge(Expr::lit((rows / 4) as i64)),
            },
            vec![l],
        )
        .expect("filter node");
    let c = compute(&mut dag, f, vec![AggSpec::new(AggFunc::Sum, "v", "total")]);
    out.push(("tail_sum", dag, c));

    let mut dag = SkillDag::new();
    let l = load(&mut dag);
    let f = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").lt(Expr::lit((rows / 2) as i64)),
            },
            vec![l],
        )
        .expect("filter node");
    let c = compute(&mut dag, f, vec![AggSpec::new(AggFunc::Avg, "v", "mean")]);
    out.push(("head_avg", dag, c));

    let mut dag = SkillDag::new();
    let l = load(&mut dag);
    let f = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("v").gt(Expr::lit(500.0)),
            },
            vec![l],
        )
        .expect("filter node");
    let c = compute(&mut dag, f, vec![AggSpec::count_records("n")]);
    out.push(("hot_rows", dag, c));

    out
}

struct FleetRun {
    /// Wall-clock nanoseconds per session, in session order.
    session_ns: Vec<u128>,
    /// Every session's outputs, in (session, pipeline) order.
    outputs: Vec<SkillOutput>,
    /// Catalog meter bytes after each session.
    meter_bytes: Vec<u64>,
    /// Sum of executor shared-tier hits across the fleet.
    shared_hits: u64,
    /// Sum of scan bytes the caches saved across the fleet.
    bytes_saved: u64,
}

/// Run `sessions` fresh executors over the question set against one
/// environment. `shared` switches the cross-session tier on.
fn run_fleet(rows: usize, sessions: usize, shared: Option<&Arc<MaterializedCache>>) -> FleetRun {
    let mut env = build_env(rows, shared);
    let work = pipelines(rows);
    // One untimed session against a cache-less view of the environment:
    // faults in the block pages and grows the allocator arenas, so the
    // timed fleet measures steady-state compute in both modes instead of
    // first-touch costs that have nothing to do with caching.
    let detached = env.shared_cache.take();
    {
        // Scoped so the prewarm executor's result cache frees before
        // timing starts — otherwise session 1 first-touches a second
        // working set on top of the prewarm one.
        let mut prewarm = Executor::new();
        for (_, dag, target) in &work {
            prewarm.run(dag, *target, &mut env).expect("prewarm runs");
        }
    }
    env.shared_cache = detached;
    let meter_base = env
        .catalog
        .database("warehouse")
        .expect("db")
        .meter()
        .bytes();
    let mut run = FleetRun {
        session_ns: Vec::new(),
        outputs: Vec::new(),
        meter_bytes: Vec::new(),
        shared_hits: 0,
        bytes_saved: 0,
    };
    for _ in 0..sessions {
        let mut ex = Executor::new();
        let start = Instant::now();
        for (_, dag, target) in &work {
            run.outputs
                .push(ex.run(dag, *target, &mut env).expect("pipeline runs"));
        }
        run.session_ns.push(start.elapsed().as_nanos());
        run.meter_bytes.push(
            env.catalog
                .database("warehouse")
                .expect("db")
                .meter()
                .bytes()
                - meter_base,
        );
        run.shared_hits += ex.stats.shared_hits;
        run.bytes_saved += ex.stats.bytes_saved;
    }
    run
}

/// Correctness gate shared by `--smoke` and the timed run: byte-identical
/// outputs everywhere, and zero charged scan bytes for every warm
/// session after the first.
fn divergences(cold: &FleetRun, warm: &FleetRun, sessions: usize) -> Vec<String> {
    let mut bad = Vec::new();
    let per_session = cold.outputs.len() / sessions;
    for (i, (c, w)) in cold.outputs.iter().zip(&warm.outputs).enumerate() {
        if c != w {
            bad.push(format!(
                "session {} pipeline {}: warm output diverges from cold",
                i / per_session,
                i % per_session
            ));
        }
    }
    for s in 1..sessions {
        let delta = warm.meter_bytes[s] - warm.meter_bytes[s - 1];
        if delta != 0 {
            bad.push(format!(
                "warm session {s} charged {delta} scan bytes; hits must charge 0"
            ));
        }
    }
    if warm.shared_hits == 0 {
        bad.push("warm fleet recorded no shared-cache hits".into());
    }
    bad
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        let sessions = 4;
        let cold = run_fleet(20_000, sessions, None);
        let shared = Arc::new(MaterializedCache::new(MaterializedCache::DEFAULT_CAPACITY));
        let warm = run_fleet(20_000, sessions, Some(&shared));
        let bad = divergences(&cold, &warm, sessions);
        if !bad.is_empty() {
            eprintln!("smoke FAILED: {bad:?}");
            std::process::exit(1);
        }
        println!(
            "smoke ok: {} warm hits returned byte-identical rows at 0 charged scan bytes",
            warm.shared_hits
        );
        return;
    }

    let cold = run_fleet(ROWS, SESSIONS, None);
    let shared = Arc::new(MaterializedCache::new(1 << 30));
    let warm = run_fleet(ROWS, SESSIONS, Some(&shared));
    let bad = divergences(&cold, &warm, SESSIONS);
    assert!(bad.is_empty(), "warm/cold divergence: {bad:?}");

    let cold_total: u128 = cold.session_ns.iter().sum();
    let warm_total: u128 = warm.session_ns.iter().sum();
    let speedup = cold_total as f64 / warm_total as f64;
    for (mode, fleet, total) in [("cold", &cold, cold_total), ("warm", &warm, warm_total)] {
        println!(
            "{mode:<5} {:>10.2} ms aggregate ({} sessions x {} pipelines, {} shared hits, {} bytes saved)",
            total as f64 / 1e6,
            SESSIONS,
            fleet.outputs.len() / SESSIONS,
            fleet.shared_hits,
            fleet.bytes_saved,
        );
    }
    println!("aggregate warm-vs-cold speedup: {speedup:.2}x");
    let stats = shared.stats();

    // Hand-rolled JSON: the workspace deliberately carries no serde.
    let record = |mode: &str, fleet: &FleetRun, total: u128| {
        format!(
            "  {{\"mode\": \"{}\", \"sessions\": {}, \"pipelines\": {}, \"rows\": {}, \
             \"aggregate_ns\": {}, \"first_session_ns\": {}, \"bytes_scanned\": {}, \
             \"shared_hits\": {}, \"bytes_saved\": {}, \"session_ns\": [{}]}}",
            mode,
            SESSIONS,
            fleet.outputs.len() / SESSIONS,
            ROWS,
            total,
            fleet.session_ns[0],
            fleet.meter_bytes.last().unwrap(),
            fleet.shared_hits,
            fleet.bytes_saved,
            fleet
                .session_ns
                .iter()
                .map(|ns| ns.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )
    };
    let json = format!(
        "{{\n\"fleets\": [\n{},\n{}\n],\n\"speedup\": {:.2},\n\"cache\": {{\"entries\": {}, \
         \"resident_bytes\": {}, \"hits\": {}, \"insertions\": {}, \"evictions\": {}}}\n}}\n",
        record("cold", &cold, cold_total),
        record("warm", &warm, warm_total),
        speedup,
        stats.entries,
        stats.resident_bytes,
        stats.hits,
        stats.insertions,
        stats.evictions,
    );
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("wrote BENCH_cache.json");

    assert!(
        speedup > 10.0,
        "aggregate warm speedup {speedup:.2}x is below the 10x bar"
    );
}
