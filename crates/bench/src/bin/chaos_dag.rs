//! Chaos driver: randomized fault schedules over generated skill DAGs,
//! asserting the resilient executor's recovery invariants.
//!
//! Three experiments per generated DAG:
//!
//! 1. **recovery** — with ≤30% transient scan faults plus slow blocks,
//!    every DAG completes with zero user-visible failures and its result
//!    table is identical to the fault-free run;
//! 2. **outage + resume** — a forced non-retryable fault fails only its
//!    dependent subgraph, and `resume()` re-executes exactly the failed
//!    frontier (everything else is served from the checkpoint cache);
//! 3. **panic isolation** — a panicking skill yields a node-level error
//!    while its wave siblings complete.
//!
//! Usage: `chaos_dag [--seed N] [--dags N]`. Exits non-zero if any
//! invariant is violated, so CI can run it under fixed seeds.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dc_engine::{Column, Expr, JoinType, Table};
use dc_skills::resilient::{ExecPolicy, NodeOutcome, RetryPolicy};
use dc_skills::{Env, Executor, SkillCall, SkillDag, SkillError};
use dc_storage::{CloudDatabase, FaultConfig, FaultInjector, FaultOp, InjectedFault, Pricing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLES: [&str; 3] = ["a", "b", "c"];
const BOMB_LIMIT: usize = 987_654;

fn base_table(n: usize, offset: i64) -> Table {
    Table::new(vec![
        (
            "x",
            Column::from_ints((offset..offset + n as i64).collect()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 97) as f64 / 9.0).collect()),
        ),
    ])
    .expect("table")
}

fn fresh_env() -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("db", Pricing::default_cloud());
    for (i, name) in TABLES.iter().enumerate() {
        db.create_table_with_blocks(*name, &base_table(2_000, i as i64 * 500), 128)
            .expect("create table");
    }
    env.catalog.add_database(db).expect("add db");
    env
}

/// Project a node down to the join key, so using it as a join's right
/// side never collides with left columns (right key columns are dropped
/// by the engine's join).
fn keyed(dag: &mut SkillDag, input: usize) -> usize {
    dag.add(
        SkillCall::KeepColumns {
            columns: vec!["x".into()],
        },
        vec![input],
    )
    .expect("add projection")
}

/// Generate a random connected DAG: a few loads, a random middle of pure
/// transforms (filters, limits, sorts, distincts, joins), and a final
/// join/sort so the target depends on most of the graph.
fn gen_dag(rng: &mut StdRng) -> (SkillDag, usize) {
    let mut dag = SkillDag::new();
    let mut nodes: Vec<usize> = Vec::new();
    let n_loads = rng.random_range(1..=2usize);
    for i in 0..n_loads {
        let t = TABLES[(i + rng.random_range(0..TABLES.len())) % TABLES.len()];
        nodes.push(
            dag.add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: t.into(),
                },
                vec![],
            )
            .expect("add load"),
        );
    }
    let n_mid = rng.random_range(3..=8usize);
    for _ in 0..n_mid {
        let input = nodes[rng.random_range(0..nodes.len())];
        let node = match rng.random_range(0..5u32) {
            0 => dag.add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").ge(Expr::lit(rng.random_range(0..800i64))),
                },
                vec![input],
            ),
            1 => dag.add(
                SkillCall::Limit {
                    n: rng.random_range(100..1500usize),
                },
                vec![input],
            ),
            2 => dag.add(
                SkillCall::Sort {
                    keys: vec![("x".into(), rng.random_range(0..2u32) == 0)],
                },
                vec![input],
            ),
            3 => dag.add(SkillCall::Distinct { columns: vec![] }, vec![input]),
            _ => {
                let other = nodes[rng.random_range(0..nodes.len())];
                let keyed = keyed(&mut dag, other);
                dag.add(
                    SkillCall::Join {
                        other: "x".into(),
                        left_on: vec!["x".into()],
                        right_on: vec!["x".into()],
                        how: JoinType::Inner,
                    },
                    vec![input, keyed],
                )
            }
        }
        .expect("add node");
        nodes.push(node);
    }
    // Tie two random nodes together so the target spans the graph.
    let a = nodes[rng.random_range(0..nodes.len())];
    let b = nodes[rng.random_range(0..nodes.len())];
    let keyed_b = keyed(&mut dag, b);
    let j = dag
        .add(
            SkillCall::Join {
                other: "x".into(),
                left_on: vec!["x".into()],
                right_on: vec!["x".into()],
                how: JoinType::Inner,
            },
            vec![a, keyed_b],
        )
        .expect("add join");
    let target = dag
        .add(
            SkillCall::Sort {
                keys: vec![("x".into(), true)],
            },
            vec![j],
        )
        .expect("add sort");
    (dag, target)
}

fn fast_retry(seed: u64) -> ExecPolicy {
    ExecPolicy {
        retry: RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            jitter_seed: seed,
        },
        ..ExecPolicy::default()
    }
}

/// Experiment 1: randomized retryable faults are fully absorbed.
fn check_recovery(
    dag: &SkillDag,
    target: usize,
    expected: &Table,
    seed: u64,
    violations: &mut Vec<String>,
) -> (u64, u64) {
    let mut env = fresh_env();
    let inj = Arc::new(FaultInjector::new(FaultConfig {
        seed,
        scan_transient_p: 0.30,
        slow_block_p: 0.05,
        slow_block_ms: 1,
        ..FaultConfig::disabled()
    }));
    env.catalog.set_fault_injector(&inj);
    let mut ex = Executor::new();
    let report = match ex.run_resilient(dag, target, &mut env, &fast_retry(seed)) {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("recovery: structural error: {e}"));
            return (0, 0);
        }
    };
    match &report.output {
        None => violations.push(format!(
            "recovery: user-visible failure under retryable-only faults: {:?}",
            report.first_error()
        )),
        Some(out) => {
            if out.as_table() != Some(expected) {
                violations.push("recovery: result differs from fault-free run".into());
            }
        }
    }
    for node in &report.nodes {
        if node.faults_absorbed != node.attempts.saturating_sub(1) {
            violations.push(format!(
                "recovery: node {} attempts/absorbed mismatch ({}/{})",
                node.node, node.attempts, node.faults_absorbed
            ));
        }
    }
    (report.faults_absorbed(), inj.stats().total_injected())
}

/// Experiment 2: a forced outage poisons only its dependent subgraph and
/// `resume()` re-runs exactly the failed frontier.
fn check_outage_resume(
    dag: &SkillDag,
    target: usize,
    expected: &Table,
    seed: u64,
    violations: &mut Vec<String>,
) {
    let mut env = fresh_env();
    let inj = Arc::new(FaultInjector::new(FaultConfig::disabled().schedule(
        FaultOp::Scan,
        0,
        InjectedFault::Unavailable,
    )));
    env.catalog.set_fault_injector(&inj);
    let mut ex = Executor::new();
    let report = match ex.run_resilient(dag, target, &mut env, &fast_retry(seed)) {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("outage: structural error: {e}"));
            return;
        }
    };
    if report.succeeded() {
        violations.push("outage: forced Unavailable did not surface".into());
        return;
    }
    let failed = report.failed_nodes();
    if failed.len() != 1 {
        violations.push(format!("outage: expected 1 failed node, got {failed:?}"));
    }
    // Every skipped node must be blocked (transitively) on the failure,
    // and everything else must have completed.
    let skipped = report.skipped_nodes();
    for node in &report.nodes {
        match &node.outcome {
            NodeOutcome::Skipped { blocked_on } => {
                if !failed.contains(blocked_on) && !skipped.contains(blocked_on) {
                    violations.push(format!(
                        "outage: node {} skipped on healthy node {}",
                        node.node, blocked_on
                    ));
                }
            }
            NodeOutcome::Failed(_) | NodeOutcome::Ok | NodeOutcome::CacheHit => {}
        }
    }
    let resumed = match ex.resume(dag, target, &mut env, &fast_retry(seed)) {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("resume: structural error: {e}"));
            return;
        }
    };
    // Resume must re-execute exactly the failed frontier: every node that
    // runs now was failed/skipped before, and every node that completed
    // before is served from the checkpoint cache (structural duplicates
    // of a re-run node are legitimately skipped-then-aliased, so they
    // count as part of the frontier too).
    for node in &resumed.nodes {
        match &node.outcome {
            NodeOutcome::Ok => {
                if !failed.contains(&node.node) && !skipped.contains(&node.node) {
                    violations.push(format!(
                        "resume: node {} re-ran but was not in the failed frontier",
                        node.node
                    ));
                }
            }
            NodeOutcome::CacheHit => {
                if failed.contains(&node.node) {
                    violations.push(format!(
                        "resume: failed node {} served from cache without re-running",
                        node.node
                    ));
                }
            }
            NodeOutcome::Failed(e) => {
                violations.push(format!("resume: node {} failed again: {e}", node.node))
            }
            NodeOutcome::Skipped { .. } => {
                violations.push(format!("resume: node {} still skipped", node.node))
            }
        }
    }
    match resumed.output {
        Some(out) if out.as_table() == Some(expected) => {}
        Some(_) => violations.push("resume: result differs from fault-free run".into()),
        None => violations.push(format!(
            "resume: still failing: {:?}",
            resumed.first_error()
        )),
    }
}

/// Experiment 3: a panicking skill is contained to its node while wave
/// siblings complete.
fn check_panic_isolation(dag: &SkillDag, target: usize, seed: u64, violations: &mut Vec<String>) {
    // Extend the DAG: a bomb node beside the old target, joined on top,
    // so the bomb and the old target's subtree share waves.
    let mut dag = dag.clone();
    let old_target_input = target;
    let key_only = keyed(&mut dag, old_target_input);
    let bomb = dag
        .add(SkillCall::Limit { n: BOMB_LIMIT }, vec![key_only])
        .expect("add bomb");
    let new_target = dag
        .add(
            SkillCall::Join {
                other: "x".into(),
                left_on: vec!["x".into()],
                right_on: vec!["x".into()],
                how: JoinType::Inner,
            },
            vec![old_target_input, bomb],
        )
        .expect("add join");

    let mut env = fresh_env();
    let mut ex = Executor::new();
    ex.set_before_execute(|call| {
        if matches!(call, SkillCall::Limit { n: BOMB_LIMIT }) {
            panic!("chaos bomb");
        }
    });
    // The bomb's panic is caught at the node boundary; silence the
    // default hook so the driver's output stays readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = ex.run_resilient(&dag, new_target, &mut env, &fast_retry(seed));
    std::panic::set_hook(prev_hook);
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!(
                "panic: scheduler aborted instead of isolating: {e}"
            ));
            return;
        }
    };
    match report.node(bomb).map(|n| &n.outcome) {
        Some(NodeOutcome::Failed(SkillError::Panic { .. })) => {}
        other => violations.push(format!(
            "panic: bomb node should fail with a panic error, got {other:?}"
        )),
    }
    // Everything the bomb does not feed must have completed.
    for node in &report.nodes {
        if node.node == bomb || node.node == new_target {
            continue;
        }
        if matches!(
            node.outcome,
            NodeOutcome::Failed(_) | NodeOutcome::Skipped { .. }
        ) {
            violations.push(format!(
                "panic: healthy node {} did not complete: {:?}",
                node.node, node.outcome
            ));
        }
    }
}

fn main() -> ExitCode {
    let mut seed = 7u64;
    let mut n_dags = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N");
            }
            "--dags" => {
                n_dags = args.next().and_then(|v| v.parse().ok()).expect("--dags N");
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    println!("chaos_dag: seed={seed} dags={n_dags} transient_rate=0.30");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut violations: Vec<String> = Vec::new();
    let mut total_absorbed = 0u64;
    let mut total_injected = 0u64;

    for i in 0..n_dags {
        let (dag, target) = gen_dag(&mut rng);
        let mut env = fresh_env();
        let expected = Executor::new()
            .run(&dag, target, &mut env)
            .expect("fault-free run")
            .as_table()
            .expect("table output")
            .clone();

        let chaos_seed = seed.wrapping_mul(1_000_003).wrapping_add(i as u64);
        let (absorbed, injected) =
            check_recovery(&dag, target, &expected, chaos_seed, &mut violations);
        total_absorbed += absorbed;
        total_injected += injected;
        check_outage_resume(&dag, target, &expected, chaos_seed, &mut violations);
        check_panic_isolation(&dag, target, chaos_seed, &mut violations);

        println!(
            "  dag {i:>2}: {} nodes, recovery absorbed {absorbed} fault(s)",
            dag.len()
        );
    }

    println!(
        "\nsummary: dags={n_dags} faults_injected={total_injected} \
         faults_absorbed={total_absorbed} violations={}",
        violations.len()
    );
    if violations.is_empty() {
        println!("all recovery invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
