//! Regenerates **Figure 4** and the §2.2 nested-vs-flattened claim:
//! a user views a filtered table, the application inserts a Limit, and
//! the platform consolidates Load + Filter + Limit into a single SQL
//! query. Also reports the §2.2 projection-chain example with measured
//! query blocks and materialized rows for nested vs flattened execution.

use std::collections::HashMap;

use dc_engine::{Column, Expr, Table};
use dc_skills::{plan, ExecutionTask, SkillCall, SkillDag};
use dc_sql::{execute, generate_sql, ExecStats, QueryStep};

fn main() {
    // ----- Figure 4: Load + Filter + (app-inserted) Limit -----
    let mut dag = SkillDag::new();
    let load = dag
        .add(
            SkillCall::LoadTable {
                database: "MainDatabase".into(),
                table: "readings".into(),
            },
            vec![],
        )
        .expect("dag accepts load");
    let filter = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("temperature").gt(Expr::lit(30i64)),
            },
            vec![load],
        )
        .expect("dag accepts filter");
    // "The application inserts a limit how much data should be returned."
    let limit = dag
        .add(SkillCall::Limit { n: 100 }, vec![filter])
        .expect("dag accepts limit");

    println!("Figure 4: user intents + application requirements -> one execution approach\n");
    println!("  1. user requests a filtered view        (KeepRows)");
    println!("  2. application inserts a row limit      (Limit 100)");
    let tasks = plan(&dag, limit).expect("plan succeeds");
    println!(
        "  3. platform consolidates into {} execution task(s):",
        tasks.len()
    );
    for t in &tasks {
        match t {
            ExecutionTask::Sql { query, covers, .. } => println!(
                "     SQL covering {} skill calls: {}",
                covers.len(),
                query.to_sql()
            ),
            ExecutionTask::Skill { node } => println!("     engine task for node {node}"),
        }
    }
    assert_eq!(tasks.len(), 1, "three skills must become one SQL query");

    // ----- §2.2: nested vs flattened projection chain -----
    println!("\nSection 2.2: deep projection chain, nested vs flattened\n");
    let mut provider: HashMap<String, Table> = HashMap::new();
    let n = 200_000usize;
    provider.insert(
        "base_table".into(),
        Table::new(vec![
            ("a", Column::from_ints((0..n as i64).collect())),
            (
                "b",
                Column::from_ints((0..n as i64).map(|v| v * 2).collect()),
            ),
            (
                "c",
                Column::from_ints((0..n as i64).map(|v| v * 3).collect()),
            ),
            (
                "d",
                Column::from_ints((0..n as i64).map(|v| v * 5).collect()),
            ),
        ])
        .expect("table builds"),
    );
    println!(
        "{:<8} {:>14} {:>14} {:>16} {:>12} {:>12}",
        "depth", "blocks_nested", "blocks_flat", "rows_mat_nested", "rows_flat", "speedup"
    );
    for depth in [2usize, 4, 8, 16] {
        // A chain of narrowing projections, like the paper's example.
        let mut steps = vec![QueryStep::Scan {
            table: "base_table".into(),
        }];
        let cols = ["a", "b", "c", "d"];
        for i in 0..depth {
            // Monotone narrowing, like the paper's a,b,c -> a,b -> a.
            let width = (cols.len() - 1 - (i * 3) / depth).max(1);
            let keep = cols[..width].iter().map(|s| s.to_string()).collect();
            steps.push(QueryStep::SelectColumns { columns: keep });
        }
        let nested = generate_sql(&steps, false).expect("nested sql");
        let flat = generate_sql(&steps, true).expect("flat sql");

        let mut sn = ExecStats::default();
        let t0 = std::time::Instant::now();
        let rn = execute(&nested, &provider, &mut sn).expect("nested runs");
        let nested_time = t0.elapsed();
        let mut sf = ExecStats::default();
        let t1 = std::time::Instant::now();
        let rf = execute(&flat, &provider, &mut sf).expect("flat runs");
        let flat_time = t1.elapsed();
        assert_eq!(rn, rf, "same semantics either way");
        println!(
            "{:<8} {:>14} {:>14} {:>16} {:>12} {:>11.1}x",
            depth,
            sn.query_blocks,
            sf.query_blocks,
            sn.rows_materialized,
            sf.rows_materialized,
            nested_time.as_secs_f64() / flat_time.as_secs_f64().max(1e-9)
        );
    }
    println!("\nclaim check: nested queries incur significant cost vs the flattened equivalent");
}
