//! Regenerates the **§3 sampling** experiment: "a user working with a new
//! IoT dataset ... by using a 10% sample, they reduced their cloud bill
//! by 10 times because query costs are generally proportional to the
//! size of the dataset being scanned."
//!
//! A 1M-row synthetic IoT table (scaled stand-in for the paper's 6B rows)
//! lives in a consumption-priced cloud database. The bench scans it at
//! 100%, 10% and 1% block-sampling rates and reports bytes scanned and
//! the metered dollar cost, plus the data-quality check the anecdote
//! describes (missing values in the sample vs the full table). Row-level
//! Bernoulli sampling is included as the ablation: same output size,
//! full scan cost.

use dc_storage::{demo, CloudDatabase, Pricing, ScanOptions};

fn main() {
    let rows = 1_000_000usize;
    let iot = demo::iot_readings(rows, 42);
    let mut db = CloudDatabase::new(
        "cloud",
        Pricing::PerTbScanned {
            // Inflated rate so the scaled-down table still yields readable
            // dollar figures; proportionality is what matters.
            dollars_per_tb: 5_000.0,
        },
    );
    db.create_table("iot_readings", &iot).expect("create table");

    println!("Section 3: block-level sampling on a {rows}-row IoT table\n");
    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>12} {:>14}",
        "scan", "bytes", "blocks", "rows_out", "cost ($)", "cost ratio"
    );

    let (full, full_receipt) = db.scan("iot_readings", &ScanOptions::full()).expect("scan");
    let full_cost = full_receipt.cost_dollars;
    let full_missing =
        full.column("temperature").expect("col").null_count() as f64 / full.num_rows() as f64;
    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>12.4} {:>13.1}x",
        "full scan",
        full_receipt.bytes_scanned,
        full_receipt.blocks_scanned,
        full.num_rows(),
        full_cost,
        1.0
    );

    for rate in [0.10, 0.01] {
        let (sample, receipt) = db
            .scan("iot_readings", &ScanOptions::block_sampled(rate, 7))
            .expect("scan");
        let ratio = full_cost / receipt.cost_dollars.max(1e-12);
        println!(
            "{:<22} {:>14} {:>10} {:>12} {:>12.4} {:>13.1}x",
            format!("{:.0}% block sample", rate * 100.0),
            receipt.bytes_scanned,
            receipt.blocks_scanned,
            sample.num_rows(),
            receipt.cost_dollars,
            ratio
        );
        if rate == 0.10 {
            assert!(
                (6.0..16.0).contains(&ratio),
                "10% sample must cut cost ~10x, got {ratio:.1}x"
            );
            // The anecdote's data-quality check: missing values in the
            // sample are within the expected range.
            let sample_missing = sample.column("temperature").expect("col").null_count() as f64
                / sample.num_rows() as f64;
            println!(
                "{:<22} sample missing rate {:.2}% vs full {:.2}% (within expected range: {})",
                "  quality check",
                sample_missing * 100.0,
                full_missing * 100.0,
                (sample_missing - full_missing).abs() < 0.01
            );
        }
    }

    // Ablation: row-level sampling returns the same amount of data but
    // scans every block — no cost reduction.
    let (rowsample, receipt) = db
        .scan("iot_readings", &ScanOptions::row_sampled(0.10, 7))
        .expect("scan");
    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>12.4} {:>13.1}x",
        "10% row sample",
        receipt.bytes_scanned,
        receipt.blocks_scanned,
        rowsample.num_rows(),
        receipt.cost_dollars,
        full_cost / receipt.cost_dollars.max(1e-12)
    );
    assert_eq!(
        receipt.blocks_scanned, full_receipt.blocks_scanned,
        "row sampling scans everything — that's the point of the ablation"
    );

    println!("\nclaim check: 10% block sample -> ~10x lower scan cost: OK");
}
